//! Shared helpers for the runnable examples.
//!
//! Each example is a binary under `src/bin/`; run them with
//! `cargo run --release -p exactsim-examples --bin <name>`:
//!
//! * `quickstart` — build a graph, answer one exact single-source query,
//!   print the top-10 most similar nodes.
//! * `ground_truth_generation` — the paper's motivating use case: produce
//!   ground-truth single-source vectors for a dataset stand-in and save them
//!   as CSV for evaluating other (approximate) SimRank implementations.
//! * `topk_recommendation` — use top-k SimRank on a community-structured
//!   collaboration graph as an item-to-item recommender and check that the
//!   recommendations respect community boundaries.
//! * `algorithm_comparison` — run all five single-source algorithms on the
//!   same small graph and compare them against the Power-Method ground truth
//!   (a miniature of the paper's Figure 1).

/// Formats a byte count for human-readable example output.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0usize;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Formats a duration in seconds with sensible precision for example output.
pub fn human_seconds(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats_each_magnitude() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert!(human_bytes(5 * 1024 * 1024).contains("MiB"));
    }

    #[test]
    fn human_seconds_picks_a_unit() {
        assert!(human_seconds(0.0000005).contains("µs"));
        assert!(human_seconds(0.25).contains("ms"));
        assert!(human_seconds(3.5).contains('s'));
    }
}
