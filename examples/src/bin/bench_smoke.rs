//! Bench smoke: a small serving sweep that emits `BENCH_serving.json`.
//!
//! ```text
//! cargo run --release -p exactsim-examples --bin bench_smoke [OUT.json]
//! ```
//!
//! Runs a cold single-source sweep followed by a hot repeated-source batch on
//! a [`exactsim_service::SimRankService`] and writes one JSON object with
//! queries/sec, cache hit rate, and p50/p99 serve latency — the serving-side
//! benchmark trajectory CI uploads as an artifact on every run. The numbers
//! are smoke-sized (seconds, not minutes): the point is a continuous record
//! with a stable schema, not a rigorous benchmark.
//!
//! The reported p50/p99 are power-of-two **bucket upper bounds** (within 2×
//! of the true quantile; see `exactsim_service::stats::LatencyHistogram` for
//! the exact bucket bounds and the saturation rule past the top bucket).

use std::sync::Arc;
use std::time::Instant;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_service::{AlgorithmKind, BatchRequest, ServiceConfig, SimRankService};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let n = 1_500;
    let graph = Arc::new(barabasi_albert(n, 4, true, 42).expect("valid generator parameters"));
    let config = ServiceConfig {
        workers: 4,
        cache_capacity: 512,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(100_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = SimRankService::new(Arc::clone(&graph), config).expect("valid service config");

    // Phase 1 (cold): 40 distinct sources — every query computes.
    let cold: Vec<BatchRequest> = (0..40)
        .map(|i| BatchRequest {
            algorithm: AlgorithmKind::ExactSim,
            source: i,
            top_k: None,
        })
        .collect();
    let cold_n = cold.len();
    let cold_start = Instant::now();
    let cold_items = service.run_batch(cold);
    let cold_elapsed = cold_start.elapsed();
    assert!(cold_items.iter().all(|i| i.outcome.is_ok()));

    // Phase 2 (hot): 400 top-10 queries over 20 hot sources — the cache and
    // in-flight dedup should absorb almost everything.
    let hot: Vec<BatchRequest> = (0..400)
        .map(|i| BatchRequest {
            algorithm: AlgorithmKind::ExactSim,
            source: i % 20,
            top_k: Some(10),
        })
        .collect();
    let hot_n = hot.len();
    let hot_start = Instant::now();
    let hot_items = service.run_batch(hot);
    let hot_elapsed = hot_start.elapsed();
    assert!(hot_items.iter().all(|i| i.outcome.is_ok()));

    let snap = service.stats();
    let total = (cold_n + hot_n) as f64;
    let elapsed = cold_elapsed + hot_elapsed;
    let qps = total / elapsed.as_secs_f64();
    let hot_qps = hot_n as f64 / hot_elapsed.as_secs_f64();
    let us = |d: Option<std::time::Duration>| {
        d.map_or("null".to_string(), |d| d.as_micros().to_string())
    };

    let json = format!(
        concat!(
            "{{\"bench\":\"serving\",\"schema_version\":1,",
            "\"graph\":{{\"model\":\"barabasi_albert\",\"nodes\":{},\"edges\":{},\"seed\":42}},",
            "\"workers\":{},\"algorithm\":\"exactsim\",\"epsilon\":1e-2,",
            "\"queries\":{},\"elapsed_ms\":{:.3},\"queries_per_sec\":{:.1},",
            "\"hot_queries_per_sec\":{:.1},",
            "\"hit_rate\":{:.4},\"computations\":{},\"dedup_joins\":{},",
            "\"p50_us\":{},\"p99_us\":{}}}"
        ),
        graph.num_nodes(),
        graph.num_edges(),
        service.workers(),
        snap.queries,
        elapsed.as_secs_f64() * 1e3,
        qps,
        hot_qps,
        snap.hit_rate,
        snap.computations,
        snap.dedup_joins,
        us(snap.p50),
        us(snap.p99),
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench artifact");
    println!("{json}");
    eprintln!("bench_smoke: wrote {out_path}");

    // Smoke-level sanity: the serving layer must actually have absorbed the
    // hot phase, or the numbers are meaningless.
    assert!(
        snap.computations <= 60,
        "cold sweep (40) + hot sources (20) bound computations, got {}",
        snap.computations
    );
    assert!(
        snap.hit_rate > 0.8,
        "hot phase must hit, got {}",
        snap.hit_rate
    );
}
