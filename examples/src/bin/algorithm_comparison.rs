//! All five single-source algorithms, head to head, on one small graph.
//!
//! A miniature of the paper's Figure 1: run MC, ParSim, Linearization, PRSim
//! and ExactSim on the ca-GrQc stand-in, score each against the Power-Method
//! ground truth, and print a comparison table.

use exactsim::exactsim::{ExactSimConfig, ExactSimVariant};
use exactsim::linearization::LinearizationConfig;
use exactsim::mc::MonteCarloConfig;
use exactsim::metrics::{max_error, precision_at_k};
use exactsim::parsim::ParSimConfig;
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::prsim::PrSimConfig;
use exactsim::suite::{
    ExactSimAlgorithm, LinearizationAlgorithm, MonteCarloAlgorithm, ParSimAlgorithm,
    PrSimAlgorithm, SingleSourceAlgorithm,
};
use exactsim_datasets::{dataset_by_key, query_sources};
use exactsim_examples::{human_bytes, human_seconds};

fn main() {
    let spec = dataset_by_key("GQ").expect("GQ is in the registry");
    let dataset = spec
        .generate_scaled(0.15)
        .expect("stand-in generation succeeds");
    let graph = &dataset.graph;
    println!(
        "dataset {} stand-in: {} nodes, {} edges",
        spec.name,
        graph.num_nodes(),
        graph.num_edges()
    );

    println!("computing the Power-Method ground truth …");
    let truth = PowerMethod::compute(graph, PowerMethodConfig::default())
        .expect("the stand-in is small enough for the power method");
    let sources = query_sources(graph, 3, 7);

    // One representative configuration per algorithm.
    let exactsim = ExactSimAlgorithm::new(
        graph,
        ExactSimConfig {
            epsilon: 1e-4,
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(2_000_000),
            ..Default::default()
        },
    )
    .expect("valid config");
    let parsim = ParSimAlgorithm::new(
        graph,
        ParSimConfig {
            iterations: 50,
            ..Default::default()
        },
    )
    .expect("valid config");
    let mc = MonteCarloAlgorithm::build(
        graph,
        MonteCarloConfig {
            walks_per_node: 800,
            walk_length: 15,
            ..Default::default()
        },
    )
    .expect("valid config");
    let lin = LinearizationAlgorithm::build(
        graph,
        LinearizationConfig {
            epsilon: 0.01,
            walk_budget: Some(2_000_000),
            ..Default::default()
        },
    )
    .expect("valid config");
    let prsim = PrSimAlgorithm::build(
        graph,
        PrSimConfig {
            epsilon: 0.01,
            ..Default::default()
        },
    )
    .expect("valid config");

    let algorithms: Vec<&dyn SingleSourceAlgorithm> = vec![&exactsim, &parsim, &mc, &lin, &prsim];

    println!(
        "\n{:<14} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "algorithm", "preproc", "index", "query", "max error", "P@50"
    );
    for algo in algorithms {
        let mut query_time = 0.0;
        let mut err = 0.0;
        let mut precision = 0.0;
        for &source in &sources {
            let output = algo.query(source).expect("query succeeds");
            query_time += output.query_time.as_secs_f64();
            let exact = truth.single_source(source);
            err = f64::max(err, max_error(&output.scores, &exact));
            precision += precision_at_k(&output.scores, &exact, source, 50);
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12.3e} {:>8.3}",
            algo.name(),
            human_seconds(algo.preprocessing_time().as_secs_f64()),
            human_bytes(algo.index_bytes()),
            human_seconds(query_time / sources.len() as f64),
            err,
            precision / sources.len() as f64
        );
    }
    println!(
        "\nExactSim is the only method whose error keeps shrinking as ε does — rerun with a\n\
         smaller ε (and a larger walk budget) to watch the others hit their accuracy floor."
    );
}
