//! Serving-layer demo: spin up a [`SimRankService`] on a generated
//! Barabási–Albert graph, fire a mixed batch of repeated top-k queries from
//! several threads, and print throughput plus the cache hit rate.
//!
//! ```text
//! cargo run --release -p exactsim-examples --bin serving_demo
//! ```

use std::sync::Arc;
use std::time::Instant;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::NeighborAccess;
use exactsim_service::{AlgorithmKind, BatchRequest, ServiceConfig, SimRankService};

fn main() {
    let n = 2_000;
    let graph = Arc::new(barabasi_albert(n, 4, true, 42).expect("valid generator parameters"));
    println!(
        "graph: Barabási–Albert, {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = ServiceConfig {
        workers: 8,
        cache_capacity: 256,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(200_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = SimRankService::new(graph, config).expect("valid service config");
    println!(
        "service: {} workers, ExactSim ε = 1e-2\n",
        service.workers()
    );

    // A production-shaped workload: 400 top-k queries concentrated on 25 hot
    // sources (popular nodes dominate real SimRank traffic), interleaved so
    // duplicates race while the cache is still cold.
    let hot_sources = 25u32;
    let requests: Vec<BatchRequest> = (0..400)
        .map(|i| BatchRequest {
            algorithm: AlgorithmKind::ExactSim,
            source: i % hot_sources,
            top_k: Some(10),
        })
        .collect();
    let total = requests.len();

    let start = Instant::now();
    let items = service.run_batch(requests);
    let elapsed = start.elapsed();

    let failures = items.iter().filter(|i| i.outcome.is_err()).count();
    let snap = service.stats();
    println!("batch: {total} top-10 queries over {hot_sources} hot sources");
    println!(
        "time:  {elapsed:?} total, {:.0} queries/s",
        total as f64 / elapsed.as_secs_f64()
    );
    println!("failures: {failures}\n");
    println!("{snap}");
    assert_eq!(failures, 0);
    assert!(
        snap.computations <= u64::from(hot_sources),
        "dedup + cache should cap computations at one per distinct source"
    );

    // --- Online updates: rewire the hottest source and republish ----------
    // The serving loop never stops: the commit bumps the epoch, the stale
    // cached columns become unreachable, and the next query recomputes on
    // the new snapshot.
    println!("\n--- online update ---");
    let before = service.query(AlgorithmKind::ExactSim, 0).expect("serve");
    let far = (n - 1) as u32;
    let existing = *service
        .graph()
        .out_neighbors(0)
        .first()
        .expect("BA node 0 has out-edges");
    service.store().stage_insert(0, far).expect("valid edge");
    service
        .store()
        .stage_delete(0, existing)
        .expect("valid edge");
    let report = service.commit().expect("commit persists");
    println!(
        "commit: epoch {} ({} inserted, {} deleted, {} edges now, built in {:?})",
        report.epoch,
        report.edges_inserted,
        report.edges_deleted,
        report.num_edges,
        report.build_time
    );
    let after = service.query(AlgorithmKind::ExactSim, 0).expect("serve");
    assert_eq!(report.epoch, 1);
    assert_ne!(
        before.scores, after.scores,
        "rewiring node 0 must change its similarity column"
    );
    let snap = service.stats();
    println!(
        "epoch {} serving; {} cached entries invalidated by the commit",
        snap.epoch, snap.invalidations
    );
    assert_eq!(snap.epoch, 1);
    assert!(snap.invalidations > 0, "the epoch-0 generation was swept");
}
