//! Serving-layer demo: spin up a [`SimRankService`] on a generated
//! Barabási–Albert graph, fire a mixed batch of repeated top-k queries from
//! several threads, and print throughput plus the cache hit rate.
//!
//! ```text
//! cargo run --release -p exactsim-examples --bin serving_demo
//! ```

use std::sync::Arc;
use std::time::Instant;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_service::{AlgorithmKind, BatchRequest, ServiceConfig, SimRankService};

fn main() {
    let n = 2_000;
    let graph = Arc::new(barabasi_albert(n, 4, true, 42).expect("valid generator parameters"));
    println!(
        "graph: Barabási–Albert, {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = ServiceConfig {
        workers: 8,
        cache_capacity: 256,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(200_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = SimRankService::new(graph, config).expect("valid service config");
    println!(
        "service: {} workers, ExactSim ε = 1e-2\n",
        service.workers()
    );

    // A production-shaped workload: 400 top-k queries concentrated on 25 hot
    // sources (popular nodes dominate real SimRank traffic), interleaved so
    // duplicates race while the cache is still cold.
    let hot_sources = 25u32;
    let requests: Vec<BatchRequest> = (0..400)
        .map(|i| BatchRequest {
            algorithm: AlgorithmKind::ExactSim,
            source: i % hot_sources,
            top_k: Some(10),
        })
        .collect();
    let total = requests.len();

    let start = Instant::now();
    let items = service.run_batch(requests);
    let elapsed = start.elapsed();

    let failures = items.iter().filter(|i| i.outcome.is_err()).count();
    let snap = service.stats();
    println!("batch: {total} top-10 queries over {hot_sources} hot sources");
    println!(
        "time:  {elapsed:?} total, {:.0} queries/s",
        total as f64 / elapsed.as_secs_f64()
    );
    println!("failures: {failures}\n");
    println!("{snap}");
    assert_eq!(failures, 0);
    assert!(
        snap.computations <= u64::from(hot_sources),
        "dedup + cache should cap computations at one per distinct source"
    );
}
