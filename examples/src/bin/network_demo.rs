//! Network demo: the serving stack end-to-end over real TCP sockets.
//!
//! ```text
//! cargo run --release -p exactsim-examples --bin network_demo
//! ```
//!
//! Boots an in-process `exactsim_service::net` listener on an ephemeral
//! port, then drives it the way remote clients would: three concurrent
//! query connections, one updater connection staging and committing an edge
//! delta mid-traffic, a `stats` readout, and a graceful `shutdown` drain.
//! Exits nonzero if any reply is a protocol error, any answer mixes epochs,
//! or the drain fails — CI runs this on every push.

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_service::net::{self, LineClient, NetOptions};
use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};

fn connect(addr: SocketAddr) -> LineClient {
    LineClient::connect(addr).expect("connect")
}

/// One request-reply exchange; the demo treats any protocol error as fatal.
fn round_trip(client: &mut LineClient, request: &str) -> String {
    let reply = client
        .round_trip(request)
        .unwrap_or_else(|e| panic!("`{request}`: {e}"));
    assert!(!reply.contains("\"error\""), "`{request}` failed: {reply}");
    reply
}

fn epoch_of(json: &str) -> u64 {
    let start = json.find("\"epoch\":").expect("epoch field") + "\"epoch\":".len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric epoch")
}

fn main() {
    let n = 1_200;
    let graph = Arc::new(barabasi_albert(n, 4, true, 42).expect("valid generator parameters"));
    let service = SimRankService::new(
        Arc::clone(&graph),
        ServiceConfig {
            workers: 4,
            exactsim: ExactSimConfig {
                epsilon: 1e-2,
                walk_budget: Some(100_000),
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
    .expect("valid service config");

    let handle = net::serve(
        service,
        "127.0.0.1:0",
        NetOptions {
            max_conns: 8,
            default_algo: AlgorithmKind::ExactSim,
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.local_addr();
    println!("network_demo: listening on {addr}");

    // Three query clients hammer ten hot sources while the updater commits
    // an edge delta mid-traffic over its own socket.
    let started = Instant::now();
    let barrier = Arc::new(Barrier::new(4));
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = connect(addr);
                let mut epochs = [0u64; 2];
                barrier.wait();
                for i in 0..30u32 {
                    let source = (7 * c + i) % 10;
                    let reply = if i % 3 == 0 {
                        round_trip(&mut client, &format!("topk {source} 5"))
                    } else {
                        round_trip(&mut client, &format!("query {source}"))
                    };
                    let epoch = epoch_of(&reply);
                    assert!(epoch <= 1, "unexpected epoch {epoch}");
                    epochs[epoch as usize] += 1;
                }
                epochs
            })
        })
        .collect();

    let mut updater = connect(addr);
    barrier.wait();
    round_trip(&mut updater, &format!("addedge 0 {}", n - 1));
    round_trip(&mut updater, &format!("deledge 0 {}", 1));
    let commit = round_trip(&mut updater, "commit");
    assert_eq!(epoch_of(&commit), 1, "commit publishes epoch 1: {commit}");
    println!("network_demo: {commit}");

    let mut served = [0u64; 2];
    for client in clients {
        let epochs = client.join().expect("query client");
        served[0] += epochs[0];
        served[1] += epochs[1];
    }
    println!(
        "network_demo: 90 queries over 3 sockets in {:.0?} ({} pre-commit, {} post-commit), zero errors",
        started.elapsed(),
        served[0],
        served[1]
    );

    let stats = round_trip(&mut updater, "stats");
    println!("network_demo: stats {stats}");
    assert!(stats.contains("\"connections_accepted\":4"), "{stats}");
    assert!(stats.contains("\"connections_rejected\":0"), "{stats}");

    // The Prometheus scrape is the protocol's one multi-line reply; it must
    // frame on the `# EOF` sentinel and carry the traffic just generated.
    let scrape = updater
        .round_trip_multi("metrics", "# EOF")
        .expect("metrics scrape");
    assert!(scrape.ends_with("# EOF\n"), "scrape framing");
    for series in [
        "simrank_queries_total{algo=\"exactsim\",outcome=\"miss\"}",
        "simrank_query_latency_us_bucket{algo=\"exactsim\"",
        "simrank_query_stage_us_count{stage=\"kernel\"}",
        "simrank_connections_accepted_total 4",
        "simrank_net_bytes_total{direction=\"out\"}",
        "simrank_commits_total 1",
    ] {
        assert!(scrape.contains(series), "scrape missing `{series}`");
    }
    println!(
        "network_demo: metrics scrape ok ({} lines, {} bytes)",
        scrape.lines().count(),
        scrape.len()
    );

    let ack = round_trip(&mut updater, "shutdown");
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed after drain"
    );
    println!("network_demo: graceful drain complete");
}
