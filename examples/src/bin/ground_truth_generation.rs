//! Ground-truth generation: the paper's motivating use case.
//!
//! Evaluating an approximate SimRank algorithm requires exact single-source
//! answers — which is exactly what ExactSim provides on graphs far beyond the
//! Power Method's reach. This example generates the ground truth for a batch
//! of query nodes on the DBLP-Author stand-in and writes it to a CSV file
//! that any other SimRank implementation can be scored against.

use std::io::Write;

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::topk::top_k;
use exactsim_datasets::{dataset_by_key, query_sources};
use exactsim_examples::{human_bytes, human_seconds};

fn main() {
    // A scaled-down DBLP stand-in (use EXACTSIM data files or a larger scale
    // for the real thing; the workflow is identical).
    let spec = dataset_by_key("DB").expect("DB is in the registry");
    let dataset = spec
        .generate_scaled(0.005)
        .expect("stand-in generation succeeds");
    let graph = &dataset.graph;
    println!(
        "dataset {} stand-in: {} nodes, {} edges ({})",
        spec.name,
        graph.num_nodes(),
        graph.num_edges(),
        human_bytes(graph.memory_bytes())
    );

    // Ground-truth configuration: the paper's ε = 1e-7 with a walk budget
    // suitable for a laptop demo (raise or remove the budget for real use).
    let config = ExactSimConfig {
        epsilon: 1e-7,
        variant: ExactSimVariant::Optimized,
        walk_budget: Some(2_000_000),
        ..Default::default()
    };
    let solver = ExactSim::new(graph, config).expect("configuration is valid");

    let sources = query_sources(graph, 5, 2020);
    let out_path = std::env::temp_dir().join("exactsim_ground_truth.csv");
    let mut file = std::fs::File::create(&out_path).expect("can create the output file");
    writeln!(file, "source,node,simrank").expect("write header");

    for &source in &sources {
        let started = std::time::Instant::now();
        let result = solver.query(source).expect("query succeeds");
        let elapsed = started.elapsed().as_secs_f64();
        // Persist only the non-negligible entries — everything else is 0 to
        // the precision ExactSim guarantees.
        let mut persisted = 0usize;
        for (node, &score) in result.scores.iter().enumerate() {
            if score > 1e-7 {
                writeln!(file, "{source},{node},{score:.9}").expect("write row");
                persisted += 1;
            }
        }
        let top = top_k(&result.scores, source, 3);
        let summary = format!(
            "{} levels, ‖π‖²={:.2e}",
            result.stats.levels, result.stats.ppr_norm_sq
        );
        println!(
            "source {:>6}: {} in {} — {} entries above 1e-7, top-3: {:?}",
            source,
            summary,
            human_seconds(elapsed),
            persisted,
            top.iter()
                .map(|e| (e.node, (e.score * 1e6).round() / 1e6))
                .collect::<Vec<_>>()
        );
    }
    println!("ground truth written to {}", out_path.display());
}
