//! Crash-recovery demo: commit edge deltas into a durable store, "kill" the
//! process state, reopen the data directory, and prove the restarted service
//! answers **bit-identically** at the same epoch.
//!
//! ```text
//! cargo run --release -p exactsim-examples --bin persistence_demo
//! ```
//!
//! This is also the CI crash-recovery gate: every assertion here is a hard
//! failure, and the final line is machine-readable.

use std::sync::Arc;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_service::{AlgorithmKind, GraphStore, ServiceConfig, SimRankService};

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(100_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// The query mix both processes must agree on: a few ExactSim and MonteCarlo
/// single-source columns (both derive randomness deterministically from
/// `(seed, source)`, so equality is exact, not approximate).
fn answer_all(service: &SimRankService) -> Vec<(AlgorithmKind, u32, Vec<f64>)> {
    let mut answers = Vec::new();
    for algo in [AlgorithmKind::ExactSim, AlgorithmKind::MonteCarlo] {
        for source in [0u32, 7, 42, 199] {
            let response = service.query(algo, source).expect("query");
            answers.push((algo, source, response.scores.clone()));
        }
    }
    answers
}

fn main() {
    let dir =
        std::env::temp_dir().join(format!("exactsim-persistence-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Process 1: build, serve, commit a stream of deltas ---------------
    let graph = Arc::new(barabasi_albert(400, 3, true, 42).expect("valid generator"));
    println!(
        "graph: Barabási–Albert, {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let store = Arc::new(GraphStore::create(&dir, graph).expect("create durable store"));
    let service = SimRankService::with_store(Arc::clone(&store), config()).expect("service");
    println!("store: durable, data dir {}", dir.display());

    // Commit 5 epochs: inserts and deletes, with a mid-stream `save` so
    // recovery exercises snapshot + WAL together.
    let deltas: [(&str, u32, u32); 5] = [
        ("ins", 0, 399),
        ("ins", 7, 300),
        ("del", 0, 399),
        ("ins", 42, 7),
        ("ins", 199, 0),
    ];
    for (i, &(op, u, v)) in deltas.iter().enumerate() {
        let staged = if op == "ins" {
            store.stage_insert(u, v)
        } else {
            store.stage_delete(u, v)
        }
        .expect("stage");
        assert!(staged.changed(), "delta {i} must not be a no-op");
        let report = service.commit().expect("durable commit");
        println!(
            "commit {}: epoch {} ({op} {u}->{v}), {} edges, WAL {} records",
            i + 1,
            report.epoch,
            report.num_edges,
            store.durability().expect("durable").wal_records,
        );
        if i == 2 {
            let epoch = store.save().expect("compaction");
            println!("save: WAL folded into snapshot-{epoch}.snap");
        }
    }

    let epoch_before = service.epoch();
    let answers_before = answer_all(&service);
    let stats = service.stats();
    assert_eq!(stats.last_snapshot_epoch, Some(3));
    assert_eq!(stats.wal_len, Some(2), "two commits after the save");
    println!(
        "process 1: epoch {epoch_before}, {} answered columns, stats {}",
        answers_before.len(),
        stats.to_json()
    );

    // --- Kill ---------------------------------------------------------------
    // Dropping everything discards all in-memory state; only what commit()
    // fsynced before publishing survives, exactly like a SIGKILL between
    // requests.
    drop(service);
    drop(store);
    println!("process 1 killed (all in-memory state gone)\n");

    // --- Process 2: recover and re-answer -----------------------------------
    let recovered = Arc::new(GraphStore::open(&dir).expect("recover data dir"));
    assert_eq!(recovered.epoch(), epoch_before, "recovered the last epoch");
    let service2 = SimRankService::with_store(Arc::clone(&recovered), config()).expect("service");
    let answers_after = answer_all(&service2);

    assert_eq!(answers_before.len(), answers_after.len());
    for ((algo, source, before), (_, _, after)) in answers_before.iter().zip(&answers_after) {
        assert_eq!(
            before, after,
            "{algo} column of source {source} must be bit-identical after restart"
        );
    }
    println!(
        "process 2: epoch {}, all {} columns bit-identical to pre-restart",
        recovered.epoch(),
        answers_after.len()
    );

    // The recovered store keeps committing durably.
    recovered.stage_insert(300, 7).expect("stage");
    let report = service2.commit().expect("durable commit after recovery");
    assert_eq!(report.epoch, epoch_before + 1);
    println!("post-recovery commit: epoch {}", report.epoch);

    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!(
        "\nPERSISTENCE_DEMO_OK epoch={} columns={} recovered_identical=true",
        report.epoch,
        answers_after.len()
    );
}
