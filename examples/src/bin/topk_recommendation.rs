//! Top-k SimRank as an item-to-item recommender.
//!
//! SimRank's founding intuition — "two objects are similar if they are
//! related to similar objects" — makes top-k SimRank a natural collaborative
//! recommender. This example builds a community-structured collaboration
//! graph (stochastic block model), asks for the top-k most similar nodes of a
//! few query nodes, and verifies that the recommendations overwhelmingly come
//! from the query node's own community.

use exactsim::exactsim::{ExactSim, ExactSimConfig};
use exactsim::topk::top_k;
use exactsim_graph::generators::{stochastic_block_model, SbmConfig};

fn main() {
    let sbm = stochastic_block_model(SbmConfig {
        block_sizes: vec![120, 120, 120],
        p_within: 0.08,
        p_between: 0.004,
        seed: 11,
    })
    .expect("SBM parameters are valid");
    let graph = &sbm.graph;
    println!(
        "collaboration graph: {} nodes in 3 communities, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = ExactSimConfig {
        epsilon: 1e-3,
        walk_budget: Some(500_000),
        ..Default::default()
    };
    let solver = ExactSim::new(graph, config).expect("configuration is valid");

    let k = 10;
    let queries = [5u32, 130, 250];
    let mut total_same_community = 0usize;
    for &query in &queries {
        let community = sbm.community[query as usize];
        let result = solver.query(query).expect("query succeeds");
        let recommendations = top_k(&result.scores, query, k);
        let same = recommendations
            .iter()
            .filter(|e| sbm.community[e.node as usize] == community)
            .count();
        total_same_community += same;
        println!(
            "node {query:>3} (community {community}): {same}/{k} recommendations from its own community"
        );
        for entry in recommendations.iter().take(5) {
            println!(
                "    node {:>3} (community {})  SimRank {:.5}",
                entry.node, sbm.community[entry.node as usize], entry.score
            );
        }
    }
    let fraction = total_same_community as f64 / (queries.len() * k) as f64;
    println!(
        "overall: {:.0}% of recommendations stay within the query's community",
        fraction * 100.0
    );
    assert!(
        fraction > 0.5,
        "SimRank recommendations should respect community structure"
    );
}
