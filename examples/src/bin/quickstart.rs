//! Quickstart: exact single-source SimRank in a dozen lines.
//!
//! Builds a small scale-free graph, runs an ExactSim single-source query, and
//! prints the ten nodes most similar to the query node.

use exactsim::prelude::*;
use exactsim_examples::human_seconds;
use exactsim_graph::generators::barabasi_albert;

fn main() {
    // 1. A graph. Any `exactsim_graph::DiGraph` works — here a 2 000-node
    //    scale-free collaboration-style network.
    let graph = barabasi_albert(2_000, 3, true, 42).expect("generator parameters are valid");
    println!(
        "graph: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. An ExactSim solver. ε is the additive error guarantee; 1e-4 is far
    //    beyond what sampling-based methods reach at interactive speed.
    let config = ExactSimConfig {
        epsilon: 1e-4,
        ..ExactSimConfig::default()
    };
    let solver = ExactSim::new(&graph, config).expect("configuration is valid");

    // 3. One single-source query.
    let source = 7;
    let started = std::time::Instant::now();
    let result = solver.query(source).expect("source node exists");
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "single-source query for node {source} took {} ({} levels, {} walk pairs simulated)",
        human_seconds(elapsed),
        result.stats.levels,
        result.stats.simulated_walk_pairs
    );
    println!(
        "S({source}, {source}) = {:.6}",
        result.scores[source as usize]
    );

    // 4. Top-10 most similar nodes.
    println!("top-10 nodes most similar to node {source}:");
    for entry in top_k(&result.scores, source, 10) {
        println!("  node {:>5}  SimRank {:.6}", entry.node, entry.score);
    }
}
