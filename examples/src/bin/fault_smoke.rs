//! Crash-consistency gate: commit → injected WAL failure → kill → reopen.
//!
//! ```text
//! cargo run --release -p exactsim-examples --bin fault_smoke [OUT.json] [ITERATIONS]
//! ```
//!
//! Drives a durable [`GraphStore`] through `ITERATIONS` (default 50) commit
//! cycles while a [`exactsim_obs::fault`] plan deterministically fails the
//! WAL append — both as a clean fsync error and as a *torn* frame (power
//! loss mid-write). Every injected failure is followed by a simulated crash
//! (the store is dropped with its staged delta, losing all in-memory state)
//! and a recovery via [`GraphStore::open`]. After every recovery *and* every
//! successful commit, the durable store must be **bit-identical** — same
//! epoch, same node count, same edge sequence — to a never-faulted
//! in-memory control store that applied exactly the committed deltas. Any
//! divergence is a crash-consistency bug and the gate exits non-zero.
//!
//! The fault plan comes from the `FAULT_SPEC` environment variable when set
//! (the CI gate sets it explicitly); the built-in default interleaves
//! `error` and `torn` failures on `wal.fsync`. Results land in
//! `BENCH_faults.json` with counts of injections, recoveries, and retries.

use std::sync::Arc;

use exactsim_graph::{DiGraph, NodeId};
use exactsim_obs::fault;
use exactsim_store::GraphStore;

/// Deterministic default plan: every 3rd WAL append fails with a clean
/// fsync error, every 5th with a torn half-written frame. Rule counters are
/// independent, so retries themselves can fail again (hit 5 torn → retry
/// hit 6 errors → retry hit 7 lands), which is exactly the point.
const DEFAULT_SPEC: &str = "wal.fsync=every:3;wal.fsync=every:5:torn";

/// Retries per iteration before declaring the spec unrecoverable (a spec
/// like `wal.fsync=always` can never converge; fail loudly, not forever).
const MAX_RETRIES: u32 = 16;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One deterministic batch of distinct-endpoint edges for iteration `iter`.
fn edge_batch(rng: &mut u64, num_nodes: u64, iter: u64) -> Vec<(NodeId, NodeId)> {
    let count = 3 + (iter % 5) as usize;
    let mut edges = Vec::with_capacity(count);
    while edges.len() < count {
        let u = (splitmix64(rng) % num_nodes) as NodeId;
        let v = (splitmix64(rng) % num_nodes) as NodeId;
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

fn stage_all(store: &GraphStore, batch: &[(NodeId, NodeId)]) {
    for &(u, v) in batch {
        store
            .stage_insert(u, v)
            .expect("staging a validated edge cannot fail");
    }
}

/// The gate itself: epoch, node count, and the exact edge sequence must
/// match. Both graphs are CSR-built from the same delta sequence, so any
/// difference means recovery diverged from the never-faulted history.
fn assert_identical(label: &str, faulted: &GraphStore, control: &GraphStore) {
    let f = faulted.snapshot();
    let c = control.snapshot();
    assert_eq!(f.epoch, c.epoch, "{label}: epoch diverged");
    let fg = f.graph.materialize().expect("materialize faulted graph");
    let cg = c.graph.materialize().expect("materialize control graph");
    assert_eq!(
        fg.num_nodes(),
        cg.num_nodes(),
        "{label}: node count diverged"
    );
    assert_eq!(
        fg.num_edges(),
        cg.num_edges(),
        "{label}: edge count diverged"
    );
    assert!(
        fg.iter_edges().eq(cg.iter_edges()),
        "{label}: edge sequences diverged at epoch {}",
        f.epoch
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_faults.json".to_string());
    let iterations: u64 = args
        .next()
        .map(|s| s.parse().expect("ITERATIONS must be an integer"))
        .unwrap_or(50);

    let spec = std::env::var("FAULT_SPEC").unwrap_or_else(|_| DEFAULT_SPEC.to_string());
    fault::configure(&spec).expect("fault spec must parse");
    assert!(
        fault::enabled(),
        "fault_smoke needs a non-empty fault plan (got '{spec}')"
    );

    let dir = std::env::temp_dir().join(format!("fault_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let num_nodes: u64 = 64;
    let seed_graph = Arc::new(DiGraph::from_edges(
        num_nodes as usize,
        &[(0, 1), (1, 2), (2, 3), (3, 0)],
    ));
    let mut faulted =
        Some(GraphStore::create(&dir, Arc::clone(&seed_graph)).expect("create durable store"));
    // The control is in-memory on purpose: it has no WAL, so the process-
    // global `wal.fsync` rules can never touch it — a genuinely never-
    // faulted twin applying exactly the committed deltas.
    let control = GraphStore::new(seed_graph);

    let mut rng = 0x5eed_f417u64;
    let mut injected = 0u64;
    let mut recoveries = 0u64;
    let mut retried_commits = 0u64;

    for iter in 0..iterations {
        let batch = edge_batch(&mut rng, num_nodes, iter);
        let mut attempts = 0u32;
        loop {
            let store = faulted.as_ref().expect("store is open");
            stage_all(store, &batch);
            match store.commit() {
                Ok(report) => {
                    stage_all(&control, &batch);
                    let control_report = control.commit().expect("in-memory commit cannot fail");
                    assert_eq!(
                        report.epoch, control_report.epoch,
                        "iteration {iter}: commit epochs diverged"
                    );
                    assert_identical(&format!("iteration {iter} post-commit"), store, &control);
                    break;
                }
                Err(e) => {
                    let message = e.to_string();
                    assert!(
                        message.contains("injected fault"),
                        "iteration {iter}: real (non-injected) failure: {message}"
                    );
                    injected += 1;
                    // Satellite check: a failed WAL append must leave the
                    // delta staged — nothing published, safe to retry.
                    let (pending_ins, _) = store.pending_counts();
                    assert!(
                        pending_ins > 0,
                        "iteration {iter}: failed commit drained the staged delta"
                    );
                    // Crash: drop the store (staged delta and all in-memory
                    // state die with the process) and recover from disk.
                    drop(faulted.take());
                    let reopened = GraphStore::open(&dir).expect("recovery must succeed");
                    recoveries += 1;
                    assert_identical(
                        &format!("iteration {iter} post-recovery"),
                        &reopened,
                        &control,
                    );
                    faulted = Some(reopened);
                    attempts += 1;
                    retried_commits += 1;
                    assert!(
                        attempts <= MAX_RETRIES,
                        "iteration {iter}: spec '{spec}' never lets a commit land"
                    );
                }
            }
        }
    }

    // One final full crash/recovery, then compare once more.
    drop(faulted.take());
    let reopened = GraphStore::open(&dir).expect("final recovery must succeed");
    recoveries += 1;
    assert_identical("final reopen", &reopened, &control);
    let final_epoch = reopened.epoch();
    let final_edges = reopened.snapshot().graph.num_edges();
    drop(reopened);

    let wal_hits = fault::hits(fault::sites::WAL_FSYNC);
    fault::reset();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        injected > 0,
        "the plan never fired — the gate exercised nothing"
    );

    let json = format!(
        concat!(
            "{{\"bench\":\"fault_smoke\",\"schema_version\":1,",
            "\"iterations\":{},\"fault_spec\":{:?},",
            "\"injected_failures\":{},\"recoveries\":{},\"retried_commits\":{},",
            "\"wal_fsync_hits\":{},\"final_epoch\":{},\"final_edges\":{},\"ok\":true}}"
        ),
        iterations, spec, injected, recoveries, retried_commits, wal_hits, final_epoch, final_edges,
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench artifact");
    println!("{json}");
    eprintln!(
        "fault_smoke: {iterations} iterations, {injected} injected failures, \
         {recoveries} recoveries, all bit-identical; wrote {out_path}"
    );
}
