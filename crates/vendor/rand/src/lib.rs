//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! deterministic, seedable PRNGs behind the same names and method signatures
//! the real crate exposes (`Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::{StdRng, SmallRng}`). The generator
//! is xoshiro256++ with SplitMix64 seeding — high quality for simulation use,
//! but the streams are *not* bit-compatible with the real `rand` crate.
//! Nothing in the workspace depends on the exact streams: all randomized code
//! is seeded and asserts only statistical properties.

#![deny(missing_docs)]

/// Low-level source of uniform 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a PRNG from a seed (the only constructor the workspace
/// uses is [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the stand-in for `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

/// Ranges that [`Rng::gen_range`] accepts (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Wrapping subtraction in the unsigned domain handles spans
                // that overflow the signed type (e.g. i64::MIN..i64::MAX).
                let span = self.end.wrapping_sub(self.start) as $unsigned as u64;
                // Unbiased-enough multiply-shift reduction of a 64-bit draw.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span_minus_one = end.wrapping_sub(start) as $unsigned as u64;
                if span_minus_one == u64::MAX {
                    // Full-width inclusive range: every draw is valid.
                    return rng.next_u64() as $t;
                }
                let off =
                    ((rng.next_u64() as u128 * (span_minus_one as u128 + 1)) >> 64) as u64;
                start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i32 => u32, i64 => u64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard the (measure-zero) rounding case v == end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the type's standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ (Blackman & Vigna, public domain reference implementation).
#[derive(Clone, Debug)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256pp};

    /// Stand-in for `rand::rngs::StdRng` (same generator as [`SmallRng`]
    /// here; the distinction only matters for cryptographic strength, which
    /// nothing in this workspace relies on).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256pp);

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256pp);

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256pp::from_u64(seed))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256pp::from_u64(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_are_respected_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} implausible");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        // Regression: RangeInclusive once computed `span + 1` before its
        // full-width guard, overflowing in debug builds for 0..=u64::MAX.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..=u64::MAX);
            let _ = rng.gen_range(u64::MAX - 1..=u64::MAX);
            let v = rng.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w;
            let x = rng.gen_range(i32::MIN..=i32::MIN + 1);
            assert!((i32::MIN..=i32::MIN + 1).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits} hits for p=0.25");
    }
}
