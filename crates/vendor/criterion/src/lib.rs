//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use. Measurement is honest wall-clock timing (median of several
//! batches) but without criterion's statistics, plots, or baselines.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` if they wish.
pub use std::hint::black_box;

/// Target time per benchmark; batches are sized to fit several into it.
const TARGET: Duration = Duration::from_millis(300);

/// Top-level harness handle (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), 10, f);
    }
}

/// A named benchmark id (stand-in for `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one display label.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lowers/raises the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, label: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, label), self.sample_size, f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
    }

    /// Ends the group (all output is emitted eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing driver passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count, timing the whole batch.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: run single iterations until we know roughly how long one
    // takes, then size batches so `samples` of them fit in TARGET.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = TARGET / samples as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter_times.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_times[per_iter_times.len() / 2];
    println!(
        "bench: {label:<55} {:>12} /iter  ({iters} iters x {samples} samples)",
        fmt_time(median)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Stand-in for `criterion::criterion_group!` (simple positional form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stand-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
