//! Minimal scoped-thread helpers for the embarrassingly parallel stages.
//!
//! The paper notes (§3.2, "Parallelization") that ExactSim only uses two
//! primitive operations — random-walk simulation and (sparse) matrix-vector
//! multiplication — both of which parallelise trivially. This module provides
//! a deterministic map-reduce over index ranges built on `std::thread::scope`,
//! so results are bit-identical regardless of the number of worker threads
//! (every chunk derives its own RNG seed from the chunk index, never from the
//! thread id).

/// Splits `0..len` into at most `chunks` contiguous ranges of near-equal size.
pub fn split_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Applies `work` to every range of `0..len` split into `threads` chunks,
/// merging the per-chunk outputs with `merge` in chunk order (so the result is
/// deterministic). With `threads == 1` everything runs on the caller's thread.
///
/// `work` receives `(chunk_index, range)` and must be `Send + Sync`; the
/// chunk index is what deterministic seeding should be based on.
pub fn parallel_map_reduce<T, W, M, R>(
    len: usize,
    threads: usize,
    work: W,
    mut init: R,
    mut merge: M,
) -> R
where
    T: Send,
    W: Fn(usize, std::ops::Range<usize>) -> T + Sync,
    M: FnMut(R, T) -> R,
    R: Send,
{
    let ranges = split_ranges(len, threads.max(1));
    if ranges.is_empty() {
        return init;
    }
    if ranges.len() == 1 {
        let out = work(0, ranges.into_iter().next().expect("one range"));
        return merge(init, out);
    }
    let mut outputs: Vec<Option<T>> = Vec::new();
    outputs.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let work = &work;
        let mut handles = Vec::with_capacity(ranges.len());
        for (chunk_index, range) in ranges.into_iter().enumerate() {
            handles.push(scope.spawn(move || (chunk_index, work(chunk_index, range))));
        }
        for handle in handles {
            let (chunk_index, out) = handle.join().expect("worker thread panicked");
            outputs[chunk_index] = Some(out);
        }
    });
    for out in outputs.into_iter().flatten() {
        init = merge(init, out);
    }
    init
}

/// Below this many edges a dense multiply is cheaper than the spawn/join of
/// a scoped thread shard (tens of µs per scope vs a fraction of a ns per
/// edge), so small multiplies run sequentially even when `threads > 1`. The
/// fallback is safe because the gather-form row kernels are bit-identical to
/// the sequential scatter/gather kernels — the threshold changes only
/// wall-clock, never a single output bit.
pub(crate) const MIN_PARALLEL_EDGES: usize = 200_000;

/// Dense `y ← P·x` across `threads` workers: the output rows are split into
/// contiguous shards and each shard is computed independently with the
/// gather-form row kernel. Because each output slot is written by exactly one
/// shard, accumulating its terms in the same ascending order as the
/// sequential kernel, the result is **bit-identical for any thread count**.
/// Graphs under `MIN_PARALLEL_EDGES` (200k edges) stay sequential (spawn cost would
/// exceed the multiply).
pub fn p_multiply_threaded<G: exactsim_graph::NeighborAccess>(
    graph: &G,
    x: &[f64],
    y: &mut [f64],
    threads: usize,
) {
    use exactsim_graph::linalg::{p_multiply, p_multiply_rows};
    if threads <= 1 || graph.num_edges() < MIN_PARALLEL_EDGES {
        p_multiply(graph, x, y);
        return;
    }
    shard_rows(y, graph.num_nodes(), threads, |range, out| {
        p_multiply_rows(graph, x, range, out)
    });
}

/// Dense `y ← Pᵀ·x` across `threads` workers; same determinism contract and
/// small-graph fallback as [`p_multiply_threaded`].
pub fn pt_multiply_threaded<G: exactsim_graph::NeighborAccess>(
    graph: &G,
    x: &[f64],
    y: &mut [f64],
    threads: usize,
) {
    use exactsim_graph::linalg::{pt_multiply, pt_multiply_rows};
    if threads <= 1 || graph.num_edges() < MIN_PARALLEL_EDGES {
        pt_multiply(graph, x, y);
        return;
    }
    shard_rows(y, graph.num_nodes(), threads, |range, out| {
        pt_multiply_rows(graph, x, range, out)
    });
}

/// Splits `y` (length `len`) into per-thread row shards and runs `work` on
/// each disjoint shard from a scoped thread.
fn shard_rows(
    y: &mut [f64],
    len: usize,
    threads: usize,
    work: impl Fn(std::ops::Range<usize>, &mut [f64]) + Sync,
) {
    assert_eq!(y.len(), len, "output vector length must equal num_nodes");
    let ranges = split_ranges(len, threads.max(1));
    let mut units = vec![(); ranges.len()];
    shard_slices(y, &ranges, &mut units, |range, (), out| work(range, out));
}

/// The one audited implementation of deterministic output sharding: every
/// range of `ranges` owns the matching disjoint slice of `out` plus its own
/// mutable per-shard context (`contexts[i]`, e.g. a scratch workspace), and
/// the per-shard results come back **in shard order**, so both the writes
/// and the merge are independent of thread scheduling. One shard (or an
/// empty `ranges`) runs inline on the caller's thread.
pub(crate) fn shard_slices<C: Send, T: Send>(
    out: &mut [f64],
    ranges: &[std::ops::Range<usize>],
    contexts: &mut [C],
    work: impl Fn(std::ops::Range<usize>, &mut C, &mut [f64]) -> T + Sync,
) -> Vec<T> {
    assert_eq!(ranges.len(), contexts.len(), "one context per shard");
    if ranges.len() <= 1 {
        return match ranges.first() {
            Some(range) => vec![work(
                range.clone(),
                &mut contexts[0],
                &mut out[range.clone()],
            )],
            None => Vec::new(),
        };
    }
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let work = &work;
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest: &mut [f64] = out;
        for (range, context) in ranges.iter().zip(contexts.iter_mut()) {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            handles.push(scope.spawn(move || work(range, context, head)));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("shard worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Element-wise sum of per-chunk dense vectors — the common reduction for
/// parallel walk sampling, where each chunk accumulates into its own buffer.
pub fn merge_sum(mut acc: Vec<f64>, part: Vec<f64>) -> Vec<f64> {
    if acc.is_empty() {
        return part;
    }
    assert_eq!(acc.len(), part.len(), "mismatched partial result lengths");
    for (a, p) in acc.iter_mut().zip(part) {
        *a += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_everything_without_overlap() {
        for len in [0usize, 1, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, chunks);
                let mut covered = vec![false; len];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "gap for len={len} chunks={chunks}"
                );
                if len > 0 {
                    assert!(ranges.len() <= chunks.min(len));
                }
            }
        }
    }

    #[test]
    fn map_reduce_sums_identically_for_any_thread_count() {
        let work = |_chunk: usize, range: std::ops::Range<usize>| -> u64 {
            range.map(|i| i as u64).sum::<u64>()
        };
        let expected: u64 = (0..1000u64).sum();
        for threads in [1usize, 2, 3, 7] {
            let total = parallel_map_reduce(1000, threads, work, 0u64, |acc, x| acc + x);
            assert_eq!(total, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_on_empty_input_returns_init() {
        let out = parallel_map_reduce(0, 4, |_, _| 1u32, 7u32, |a, b| a + b);
        assert_eq!(out, 7);
    }

    #[test]
    fn merge_sum_adds_elementwise_and_accepts_empty_acc() {
        let a = merge_sum(Vec::new(), vec![1.0, 2.0]);
        assert_eq!(a, vec![1.0, 2.0]);
        let b = merge_sum(a, vec![0.5, 0.5]);
        assert_eq!(b, vec![1.5, 2.5]);
    }

    #[test]
    fn threaded_dense_multiplies_are_bit_identical_to_sequential() {
        use exactsim_graph::generators::barabasi_albert;
        use exactsim_graph::linalg::{p_multiply, pt_multiply};
        // Large enough to clear MIN_PARALLEL_EDGES so the sharded path (not
        // the sequential fallback) is what gets exercised.
        let g = barabasi_albert(25_000, 5, true, 5).unwrap();
        assert!(g.num_edges() >= MIN_PARALLEL_EDGES);
        let n = g.num_nodes();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let mut seq = vec![0.0; n];
        let mut par = vec![0.0; n];
        p_multiply(&g, &x, &mut seq);
        for threads in [1usize, 2, 3, 7] {
            p_multiply_threaded(&g, &x, &mut par, threads);
            assert_eq!(seq, par, "P·x threads={threads}");
        }
        pt_multiply(&g, &x, &mut seq);
        for threads in [1usize, 2, 3, 7] {
            pt_multiply_threaded(&g, &x, &mut par, threads);
            assert_eq!(seq, par, "Pᵀ·x threads={threads}");
        }
    }

    #[test]
    fn chunk_order_is_preserved_in_merge() {
        let parts = parallel_map_reduce(
            10,
            4,
            |chunk, _range| vec![chunk],
            Vec::new(),
            |mut acc: Vec<usize>, part| {
                acc.extend(part);
                acc
            },
        );
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }
}
