//! Minimal scoped-thread helpers for the embarrassingly parallel stages.
//!
//! The paper notes (§3.2, "Parallelization") that ExactSim only uses two
//! primitive operations — random-walk simulation and (sparse) matrix-vector
//! multiplication — both of which parallelise trivially. This module provides
//! a deterministic map-reduce over index ranges built on `std::thread::scope`,
//! so results are bit-identical regardless of the number of worker threads
//! (every chunk derives its own RNG seed from the chunk index, never from the
//! thread id).

/// Splits `0..len` into at most `chunks` contiguous ranges of near-equal size.
pub fn split_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Applies `work` to every range of `0..len` split into `threads` chunks,
/// merging the per-chunk outputs with `merge` in chunk order (so the result is
/// deterministic). With `threads == 1` everything runs on the caller's thread.
///
/// `work` receives `(chunk_index, range)` and must be `Send + Sync`; the
/// chunk index is what deterministic seeding should be based on.
pub fn parallel_map_reduce<T, W, M, R>(
    len: usize,
    threads: usize,
    work: W,
    mut init: R,
    mut merge: M,
) -> R
where
    T: Send,
    W: Fn(usize, std::ops::Range<usize>) -> T + Sync,
    M: FnMut(R, T) -> R,
    R: Send,
{
    let ranges = split_ranges(len, threads.max(1));
    if ranges.is_empty() {
        return init;
    }
    if ranges.len() == 1 {
        let out = work(0, ranges.into_iter().next().expect("one range"));
        return merge(init, out);
    }
    let mut outputs: Vec<Option<T>> = Vec::new();
    outputs.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let work = &work;
        let mut handles = Vec::with_capacity(ranges.len());
        for (chunk_index, range) in ranges.into_iter().enumerate() {
            handles.push(scope.spawn(move || (chunk_index, work(chunk_index, range))));
        }
        for handle in handles {
            let (chunk_index, out) = handle.join().expect("worker thread panicked");
            outputs[chunk_index] = Some(out);
        }
    });
    for out in outputs.into_iter().flatten() {
        init = merge(init, out);
    }
    init
}

/// Element-wise sum of per-chunk dense vectors — the common reduction for
/// parallel walk sampling, where each chunk accumulates into its own buffer.
pub fn merge_sum(mut acc: Vec<f64>, part: Vec<f64>) -> Vec<f64> {
    if acc.is_empty() {
        return part;
    }
    assert_eq!(acc.len(), part.len(), "mismatched partial result lengths");
    for (a, p) in acc.iter_mut().zip(part) {
        *a += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_everything_without_overlap() {
        for len in [0usize, 1, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, chunks);
                let mut covered = vec![false; len];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "gap for len={len} chunks={chunks}"
                );
                if len > 0 {
                    assert!(ranges.len() <= chunks.min(len));
                }
            }
        }
    }

    #[test]
    fn map_reduce_sums_identically_for_any_thread_count() {
        let work = |_chunk: usize, range: std::ops::Range<usize>| -> u64 {
            range.map(|i| i as u64).sum::<u64>()
        };
        let expected: u64 = (0..1000u64).sum();
        for threads in [1usize, 2, 3, 7] {
            let total = parallel_map_reduce(1000, threads, work, 0u64, |acc, x| acc + x);
            assert_eq!(total, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_on_empty_input_returns_init() {
        let out = parallel_map_reduce(0, 4, |_, _| 1u32, 7u32, |a, b| a + b);
        assert_eq!(out, 7);
    }

    #[test]
    fn merge_sum_adds_elementwise_and_accepts_empty_acc() {
        let a = merge_sum(Vec::new(), vec![1.0, 2.0]);
        assert_eq!(a, vec![1.0, 2.0]);
        let b = merge_sum(a, vec![0.5, 0.5]);
        assert_eq!(b, vec![1.5, 2.5]);
    }

    #[test]
    fn chunk_order_is_preserved_in_merge() {
        let parts = parallel_map_reduce(
            10,
            4,
            |chunk, _range| vec![chunk],
            Vec::new(),
            |mut acc: Vec<usize>, part| {
                acc.extend(part);
                acc
            },
        );
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }
}
