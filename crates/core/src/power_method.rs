//! The Power Method: exact all-pairs SimRank on small graphs.
//!
//! This is the paper's reference point: the only previously known way to
//! obtain exact SimRank values, with `O(n²)` space and `O(L·n·m)` time, which
//! is what makes it infeasible beyond ~10⁵–10⁶ nodes and motivates ExactSim.
//! We use it (a) as ground truth for the small-graph experiments (Figures
//! 1–4) and (b) to extract the *exact* diagonal correction matrix `D` for
//! validating the estimators of Algorithms 2 and 3.
//!
//! The iteration is `S_{t+1} = (c · Pᵀ · S_t · P) ∨ I` with `S_0 = I`, where
//! `∨ I` pins the diagonal to 1 (Kusumoto et al.'s formulation, cited by the
//! paper). After `L` iterations the truncation error is at most `c^L`.

use exactsim_graph::{DiGraph, NodeId};

use crate::config::SimRankConfig;
use crate::error::SimRankError;

/// Configuration for [`PowerMethod`].
#[derive(Clone, Copy, Debug)]
pub struct PowerMethodConfig {
    /// Shared SimRank parameters (decay factor; seed/threads are unused —
    /// the Power Method is deterministic).
    pub simrank: SimRankConfig,
    /// Target additive error; the iteration count is `⌈log_{1/c}(1/tolerance)⌉`.
    pub tolerance: f64,
    /// Upper bound on `n²·8` bytes the dense matrix may occupy. Guards against
    /// accidentally running the `O(n²)` method on a large graph (the very
    /// mistake the paper is about). Default: 2 GiB.
    pub max_matrix_bytes: usize,
}

impl Default for PowerMethodConfig {
    fn default() -> Self {
        PowerMethodConfig {
            simrank: SimRankConfig::default(),
            tolerance: 1e-10,
            max_matrix_bytes: 2 << 30,
        }
    }
}

/// Exact all-pairs SimRank via the power iteration.
#[derive(Clone, Debug)]
pub struct PowerMethod {
    n: usize,
    decay: f64,
    /// Row-major `n × n` SimRank matrix.
    matrix: Vec<f64>,
    iterations_run: usize,
}

impl PowerMethod {
    /// Runs the power iteration to convergence (`tolerance`) and stores the
    /// full SimRank matrix.
    pub fn compute(graph: &DiGraph, config: PowerMethodConfig) -> Result<Self, SimRankError> {
        config.simrank.validate()?;
        if config.tolerance <= 0.0 {
            return Err(SimRankError::InvalidParameter {
                name: "tolerance",
                message: "tolerance must be positive".into(),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Err(SimRankError::EmptyGraph);
        }
        let bytes = n
            .checked_mul(n)
            .and_then(|sq| sq.checked_mul(std::mem::size_of::<f64>()))
            .unwrap_or(usize::MAX);
        if bytes > config.max_matrix_bytes {
            return Err(SimRankError::GraphTooLarge {
                algorithm: "PowerMethod",
                message: format!(
                    "dense matrix would need {bytes} bytes (> limit {}); use ExactSim instead",
                    config.max_matrix_bytes
                ),
            });
        }

        let c = config.simrank.decay;
        let iterations = ((1.0 / config.tolerance).ln() / (1.0 / c).ln())
            .ceil()
            .max(1.0) as usize;

        let mut current = identity(n);
        let mut scratch_sp = vec![0.0; n * n];
        let mut next = vec![0.0; n * n];
        for _ in 0..iterations {
            // scratch_sp = S · P  (column j of S·P averages S's columns over I(j)).
            compute_s_times_p(graph, &current, &mut scratch_sp);
            // next = c · Pᵀ · (S · P), then pin the diagonal to 1.
            compute_pt_times(graph, &scratch_sp, &mut next, c);
            for d in 0..n {
                next[d * n + d] = 1.0;
            }
            std::mem::swap(&mut current, &mut next);
        }
        crate::counters::add(&crate::counters::SOLVER_ITERATIONS, iterations as u64);
        Ok(PowerMethod {
            n,
            decay: c,
            matrix: current,
            iterations_run: iterations,
        })
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of power iterations that were run.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// The SimRank similarity `S(i, j)`.
    pub fn similarity(&self, i: NodeId, j: NodeId) -> f64 {
        self.matrix[i as usize * self.n + j as usize]
    }

    /// The single-source vector `S(·, source)` as a dense vector of length `n`.
    pub fn single_source(&self, source: NodeId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.n {
            out.push(self.matrix[i * self.n + source as usize]);
        }
        out
    }

    /// The exact diagonal correction matrix `D`: `D(k,k) = 1 − c·(PᵀSP)(k,k)`,
    /// i.e. one minus the probability that two √c-walks from `k` ever meet.
    /// Nodes with `din(k) = 0` get `D(k,k) = 1`.
    pub fn exact_diagonal(&self, graph: &DiGraph) -> Vec<f64> {
        let n = self.n;
        let mut d = vec![1.0; n];
        for k in 0..n as NodeId {
            let in_nbrs = graph.in_neighbors(k);
            let din = in_nbrs.len();
            if din == 0 {
                continue;
            }
            let mut acc = 0.0;
            for &a in in_nbrs {
                for &b in in_nbrs {
                    acc += self.similarity(a, b);
                }
            }
            d[k as usize] = 1.0 - self.decay * acc / (din * din) as f64;
        }
        d
    }

    /// Raw row-major matrix access (row `i` holds `S(i, ·)`).
    pub fn matrix(&self) -> &[f64] {
        &self.matrix
    }
}

fn identity(n: usize) -> Vec<f64> {
    let mut m = vec![0.0; n * n];
    for d in 0..n {
        m[d * n + d] = 1.0;
    }
    m
}

/// `out = S · P`, i.e. `out(i, j) = (1/din(j)) Σ_{k ∈ I(j)} S(i, k)`.
fn compute_s_times_p(graph: &DiGraph, s: &[f64], out: &mut [f64]) {
    let n = graph.num_nodes();
    out.iter_mut().for_each(|v| *v = 0.0);
    for j in 0..n as NodeId {
        let in_nbrs = graph.in_neighbors(j);
        if in_nbrs.is_empty() {
            continue;
        }
        let inv = 1.0 / in_nbrs.len() as f64;
        for i in 0..n {
            let row = &s[i * n..(i + 1) * n];
            let mut acc = 0.0;
            for &k in in_nbrs {
                acc += row[k as usize];
            }
            out[i * n + j as usize] = acc * inv;
        }
    }
}

/// `out = c · Pᵀ · M`, i.e. `out(i, j) = c·(1/din(i)) Σ_{k ∈ I(i)} M(k, j)`.
fn compute_pt_times(graph: &DiGraph, m: &[f64], out: &mut [f64], c: f64) {
    let n = graph.num_nodes();
    out.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..n as NodeId {
        let in_nbrs = graph.in_neighbors(i);
        if in_nbrs.is_empty() {
            continue;
        }
        let scale = c / in_nbrs.len() as f64;
        let out_row = &mut out[i as usize * n..(i as usize + 1) * n];
        for &k in in_nbrs {
            let m_row = &m[k as usize * n..(k as usize + 1) * n];
            for (o, v) in out_row.iter_mut().zip(m_row.iter()) {
                *o += v;
            }
        }
        for o in out_row.iter_mut() {
            *o *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::{complete, cycle, star};
    use exactsim_graph::DiGraph;

    fn compute(graph: &DiGraph) -> PowerMethod {
        PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap()
    }

    #[test]
    fn diagonal_is_one_and_values_in_range() {
        let g = complete(6);
        let pm = compute(&g);
        for i in 0..6u32 {
            assert_eq!(pm.similarity(i, i), 1.0);
            for j in 0..6u32 {
                let s = pm.similarity(i, j);
                assert!((0.0..=1.0 + 1e-12).contains(&s), "S({i},{j}) = {s}");
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = complete(5);
        let pm = compute(&g);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert!(
                    (pm.similarity(i, j) - pm.similarity(j, i)).abs() < 1e-12,
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn bidirectional_star_leaves_have_similarity_c() {
        // In a bidirectional star every leaf's only in-neighbor is the hub, so
        // for distinct leaves S(a, b) = c·S(hub, hub) = c exactly.
        let g = star(6, true);
        let pm = compute(&g);
        let c = 0.6;
        for a in 1..6u32 {
            for b in 1..6u32 {
                if a != b {
                    assert!(
                        (pm.similarity(a, b) - c).abs() < 1e-9,
                        "S({a},{b}) = {} != c",
                        pm.similarity(a, b)
                    );
                }
            }
        }
        // S(hub, leaf) solves t = c·t (the hub's in-neighbors are leaves, the
        // leaf's in-neighbor is the hub), hence t = 0.
        for leaf in 1..6u32 {
            assert!(pm.similarity(0, leaf).abs() < 1e-12);
        }
    }

    #[test]
    fn directed_star_leaves_are_dissimilar() {
        // In the directed star nothing points at a leaf, so leaves have empty
        // in-neighborhoods and zero similarity to everything else.
        let g = star(6, false);
        let pm = compute(&g);
        for a in 1..6u32 {
            for b in 0..6u32 {
                if a != b {
                    assert!(pm.similarity(a, b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn disconnected_nodes_have_zero_similarity() {
        let g = DiGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let pm = compute(&g);
        assert_eq!(pm.similarity(1, 3), 0.0);
        assert_eq!(pm.similarity(0, 2), 0.0);
    }

    #[test]
    fn complete_graph_matches_closed_form() {
        // On the complete graph K_n (directed, no self-loops) symmetry forces
        // all off-diagonal similarities to a common value s solving
        //   s = c * [ (n-2)(n-3) s + (n-2)·1 + ... ] / (n-1)^2
        // Derive directly: for i≠j, neighbors are V\{i}, V\{j}.
        // Σ_{i'∈I(i), j'∈I(j)} S(i',j') = Σ over pairs; count pairs with i'=j':
        // |I(i) ∩ I(j)| = n-2 pairs contributing 1 each; remaining
        // (n-1)^2 - (n-2) pairs contribute s each.
        // s = c [ (n-2) + ((n-1)^2 - (n-2)) s ] / (n-1)^2.
        let n = 7usize;
        let c = 0.6;
        let g = complete(n);
        let pm = compute(&g);
        let pairs = ((n - 1) * (n - 1)) as f64;
        let same = (n - 2) as f64;
        let s_closed = c * same / (pairs - c * (pairs - same));
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    assert!(
                        (pm.similarity(i, j) - s_closed).abs() < 1e-9,
                        "S({i},{j}) = {} vs closed form {s_closed}",
                        pm.similarity(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_nodes_are_dissimilar() {
        // On a directed cycle every node has exactly one in-neighbor and the
        // walks from distinct nodes always stay the same distance apart, so
        // they never meet: S(i, j) = 0 for i ≠ j.
        let g = cycle(5);
        let pm = compute(&g);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    assert!(pm.similarity(i, j).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn single_source_extracts_a_column() {
        let g = star(5, false);
        let pm = compute(&g);
        let col = pm.single_source(2);
        assert_eq!(col.len(), 5);
        for i in 0..5u32 {
            assert_eq!(col[i as usize], pm.similarity(i, 2));
        }
    }

    #[test]
    fn exact_diagonal_matches_hand_computed_values() {
        let g = star(6, false);
        let pm = compute(&g);
        let d = pm.exact_diagonal(&g);
        // Leaves have din = 0 → D = 1. The hub has the 5 leaves as
        // in-neighbors; distinct leaves have S = 0 (nothing points at them),
        // identical leaves S = 1, so D(hub) = 1 - c·5/25 = 1 - c/5.
        // (Walk view: two √c-walks from the hub meet iff both continue and
        // pick the same leaf: probability c·(1/5).)
        let c: f64 = 0.6;
        let expected_hub = 1.0 - c / 5.0;
        assert!((d[0] - expected_hub).abs() < 1e-9);
        for leaf in &d[1..6] {
            assert_eq!(*leaf, 1.0);
        }
    }

    #[test]
    fn exact_diagonal_is_within_bounds() {
        // D(k,k) ∈ [1-c, 1] always.
        let g = complete(8);
        let pm = compute(&g);
        for &dk in &pm.exact_diagonal(&g) {
            assert!((1.0 - 0.6 - 1e-9..=1.0 + 1e-12).contains(&dk), "D = {dk}");
        }
    }

    #[test]
    fn refuses_oversized_graphs() {
        let g = complete(100);
        let config = PowerMethodConfig {
            max_matrix_bytes: 1024,
            ..Default::default()
        };
        assert!(matches!(
            PowerMethod::compute(&g, config),
            Err(SimRankError::GraphTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_empty_graph_and_bad_tolerance() {
        let empty = DiGraph::from_edges(0, &[]);
        assert!(matches!(
            PowerMethod::compute(&empty, PowerMethodConfig::default()),
            Err(SimRankError::EmptyGraph)
        ));
        let g = complete(3);
        let config = PowerMethodConfig {
            tolerance: 0.0,
            ..Default::default()
        };
        assert!(PowerMethod::compute(&g, config).is_err());
    }

    #[test]
    fn tolerance_controls_iteration_count() {
        let g = complete(4);
        let loose = PowerMethod::compute(
            &g,
            PowerMethodConfig {
                tolerance: 1e-2,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = PowerMethod::compute(
            &g,
            PowerMethodConfig {
                tolerance: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.iterations_run() > loose.iterations_run());
        // Both should agree to within the looser tolerance.
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert!((loose.similarity(i, j) - tight.similarity(i, j)).abs() < 1e-2);
            }
        }
    }
}
