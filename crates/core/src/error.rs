//! Error types for the SimRank algorithms.

use std::fmt;

/// Errors produced by SimRank computations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimRankError {
    /// A configuration parameter is outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The requested source node does not exist in the graph.
    SourceOutOfRange {
        /// The requested node id.
        source: u32,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// The operation needs a non-empty graph.
    EmptyGraph,
    /// The graph is too large for this algorithm (e.g. the `O(n²)` Power
    /// Method asked to allocate more than its configured memory limit).
    GraphTooLarge {
        /// Name of the algorithm that refused to run.
        algorithm: &'static str,
        /// Explanation of the limit that would be exceeded.
        message: String,
    },
}

impl fmt::Display for SimRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimRankError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            SimRankError::SourceOutOfRange { source, num_nodes } => write!(
                f,
                "source node {source} out of range for graph with {num_nodes} nodes"
            ),
            SimRankError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            SimRankError::GraphTooLarge { algorithm, message } => {
                write!(f, "{algorithm}: graph too large: {message}")
            }
        }
    }
}

impl std::error::Error for SimRankError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimRankError::InvalidParameter {
            name: "epsilon",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("epsilon"));

        let e = SimRankError::SourceOutOfRange {
            source: 9,
            num_nodes: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));

        assert!(SimRankError::EmptyGraph.to_string().contains("non-empty"));

        let e = SimRankError::GraphTooLarge {
            algorithm: "PowerMethod",
            message: "needs 4TB".into(),
        };
        assert!(e.to_string().contains("PowerMethod"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SimRankError::EmptyGraph, SimRankError::EmptyGraph);
        assert_ne!(
            SimRankError::EmptyGraph,
            SimRankError::SourceOutOfRange {
                source: 0,
                num_nodes: 0
            }
        );
    }
}
