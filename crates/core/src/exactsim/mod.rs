//! ExactSim: probabilistic-exact single-source SimRank (the paper's §3).
//!
//! Both variants follow the same outline (Algorithm 1):
//!
//! 1. compute the ℓ-hop Personalized PageRank vectors `π^ℓ_i` of the source
//!    for `ℓ = 0..L` with `L = ⌈log_{1/c}(2/ε)⌉`;
//! 2. allocate a total budget of `R = 6·ln n / ((1−√c)⁴·ε²)` pairs of √c-walks
//!    across nodes — `R(k) = ⌈R·π_i(k)⌉` for the basic variant — and estimate
//!    the diagonal correction matrix `D̂` with them (Algorithm 2);
//! 3. run the Linearization recurrence
//!    `s^ℓ = √c·Pᵀ·s^{ℓ-1} + D̂·π^{L-ℓ}_i/(1−√c)` and return `s^L`.
//!
//! The optimized variant ([`ExactSimVariant::Optimized`]) adds the three §3.2
//! techniques: *sparse Linearization* (hop vectors pruned at `(1−√c)²·ε/2`,
//! Lemma 2), *sampling ∝ π_i(k)²* (`R` scaled down by `‖π_i‖²`, Lemma 3) and
//! the *local deterministic exploitation* of `D` (Algorithm 3).
//!
//! ## Practical deviations (also recorded in DESIGN.md)
//!
//! The theoretical sample count at `ε = 1e-7` is astronomically large; the
//! guarantee is what makes the output a ground truth, but most of those
//! samples are redundant once the deterministic exploration has resolved the
//! bulk of each `D(k,k)`. This implementation therefore supports
//!
//! * an optional **walk budget** ([`ExactSimConfig::walk_budget`]) that caps
//!   the total number of walk pairs and scales every `R(k)` proportionally
//!   (the benchmark harness uses it to trace out time/error curves), and
//! * the **equivalent-variance tail-sample reduction** inside Algorithm 3
//!   (see [`crate::diagonal`]).
//!
//! With the budget left at `None` the implementation is the paper's algorithm
//! verbatim.

mod result;

pub use result::{ExactSimResult, ExactSimStats};

use exactsim_graph::linalg::SparseVec;
use exactsim_graph::{NeighborAccess, NodeId};

use crate::config::SimRankConfig;
use crate::diagonal::{estimate_diagonal_with, DiagonalEstimator, LocalExploreCaps};
use crate::error::SimRankError;
use crate::parallel::pt_multiply_threaded;
use crate::ppr::{dense_hop_vectors_into, sparse_hop_vectors_into};
use crate::scratch::{Scratch, ScratchPool};

/// Which ExactSim variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExactSimVariant {
    /// Algorithm 1 + Algorithm 2: dense hop vectors, `R(k) ∝ π_i(k)`,
    /// Bernoulli estimation of `D`.
    Basic,
    /// §3.2: sparse hop vectors, `R(k) ∝ π_i(k)²`, Algorithm 3 for `D`.
    #[default]
    Optimized,
}

/// How ExactSim obtains the diagonal correction matrix.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum DiagonalMode {
    /// Estimate `D̂` with the variant's estimator (the paper's algorithm).
    #[default]
    Estimated,
    /// Use an externally supplied exact `D` (ablation / validation): the
    /// query then reduces to pure (sparse) Linearization.
    Exact(Vec<f64>),
    /// Use the ParSim approximation `D = (1−c)·I` (ablation).
    ParSimApprox,
}

/// Configuration of an [`ExactSim`] instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactSimConfig {
    /// Shared SimRank parameters (decay factor `c`, seed, threads).
    pub simrank: SimRankConfig,
    /// Target additive error ε. The paper's "probabilistic exactness" is
    /// ε = 1e-7 (`float`-level precision).
    pub epsilon: f64,
    /// Basic (Algorithm 1/2) or Optimized (§3.2).
    pub variant: ExactSimVariant,
    /// Source of the diagonal correction matrix.
    pub diagonal: DiagonalMode,
    /// Optional cap on the total number of walk pairs. `None` reproduces the
    /// paper's sample counts exactly; `Some(budget)` scales every `R(k)`
    /// down proportionally once the total exceeds the budget.
    pub walk_budget: Option<u64>,
    /// Engineering caps for Algorithm 3 (optimized variant only).
    pub explore_caps: LocalExploreCaps,
    /// Overrides the sparse-Linearization pruning threshold of the optimized
    /// variant (default `(1−√c)²·ε/2`). Used by the ablation benches to study
    /// the space/accuracy trade-off of Lemma 2 in isolation.
    pub prune_threshold_override: Option<f64>,
}

impl Default for ExactSimConfig {
    fn default() -> Self {
        ExactSimConfig {
            simrank: SimRankConfig::default(),
            epsilon: 1e-7,
            variant: ExactSimVariant::Optimized,
            diagonal: DiagonalMode::Estimated,
            walk_budget: None,
            explore_caps: LocalExploreCaps::default(),
            prune_threshold_override: None,
        }
    }
}

impl ExactSimConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimRankError> {
        self.simrank.validate()?;
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(SimRankError::InvalidParameter {
                name: "epsilon",
                message: format!("epsilon must be in (0, 1), got {}", self.epsilon),
            });
        }
        if let Some(0) = self.walk_budget {
            return Err(SimRankError::InvalidParameter {
                name: "walk_budget",
                message: "walk budget must be positive when set".into(),
            });
        }
        if let Some(t) = self.prune_threshold_override {
            if !(t >= 0.0 && t.is_finite()) {
                return Err(SimRankError::InvalidParameter {
                    name: "prune_threshold_override",
                    message: format!("pruning threshold must be finite and >= 0, got {t}"),
                });
            }
        }
        if let DiagonalMode::Exact(values) = &self.diagonal {
            if values.iter().any(|v| !v.is_finite()) {
                return Err(SimRankError::InvalidParameter {
                    name: "diagonal",
                    message: "exact diagonal contains non-finite entries".into(),
                });
            }
        }
        Ok(())
    }
}

/// The ExactSim single-source SimRank solver.
///
/// Construction validates the configuration against the graph; every
/// [`ExactSim::query`] call is independent (ExactSim is index-free — the
/// paper classifies it, like ParSim, as requiring no preprocessing).
///
/// Generic over the graph backend `G: NeighborAccess`, so the solver can
/// borrow an in-memory graph (`ExactSim<&DiGraph>`, the usual library
/// usage), share ownership of one (`ExactSim<Arc<DiGraph>>`, `'static +
/// Send + Sync`, what the `exactsim-service` query engine holds behind
/// trait objects), or stream adjacency from a buffer-managed page store
/// (`exactsim-store`'s `GraphHandle`).
///
/// The solver owns a [`ScratchPool`]: concurrent queries each check out a
/// reusable [`Scratch`] workspace, so steady-state query traffic performs no
/// accumulator allocation. Callers that manage their own workspaces (the
/// benchmark harness, batch drivers) can use [`ExactSim::query_with`].
#[derive(Clone, Debug)]
pub struct ExactSim<G: NeighborAccess> {
    graph: G,
    config: ExactSimConfig,
    pool: ScratchPool,
}

impl<G: NeighborAccess> ExactSim<G> {
    /// Creates a solver for `graph` with the given configuration.
    pub fn new(graph: G, config: ExactSimConfig) -> Result<Self, SimRankError> {
        config.validate()?;
        let n = graph.num_nodes();
        if n == 0 {
            return Err(SimRankError::EmptyGraph);
        }
        if let DiagonalMode::Exact(values) = &config.diagonal {
            if values.len() != n {
                return Err(SimRankError::InvalidParameter {
                    name: "diagonal",
                    message: format!(
                        "exact diagonal has {} entries but the graph has {} nodes",
                        values.len(),
                        n
                    ),
                });
            }
        }
        Ok(ExactSim {
            graph,
            config,
            pool: ScratchPool::new(n),
        })
    }

    /// The configuration this solver was built with.
    pub fn config(&self) -> &ExactSimConfig {
        &self.config
    }

    /// Answers a single-source SimRank query for `source`, using a pooled
    /// [`Scratch`] workspace (allocation-free in steady state).
    pub fn query(&self, source: NodeId) -> Result<ExactSimResult, SimRankError> {
        let mut scratch = self.pool.checkout();
        let result = self.query_with(source, &mut scratch);
        self.pool.give_back(scratch);
        result
    }

    /// Answers a single-source SimRank query with a caller-owned workspace.
    ///
    /// The result is bit-identical to [`ExactSim::query`] regardless of the
    /// scratch's history or the configured thread count. The scratch must
    /// have been created for a graph of the same size (a mismatch is an
    /// error here instead of an index panic deep inside a kernel).
    pub fn query_with(
        &self,
        source: NodeId,
        scratch: &mut Scratch,
    ) -> Result<ExactSimResult, SimRankError> {
        let n = self.graph.num_nodes();
        if scratch.num_nodes() != n {
            return Err(SimRankError::InvalidParameter {
                name: "scratch",
                message: format!(
                    "scratch was created for {} nodes but the graph has {n}",
                    scratch.num_nodes()
                ),
            });
        }
        if source as usize >= n {
            return Err(SimRankError::SourceOutOfRange {
                source,
                num_nodes: n,
            });
        }
        match self.config.variant {
            ExactSimVariant::Basic => self.query_basic(source, scratch),
            ExactSimVariant::Optimized => self.query_optimized(source, scratch),
        }
    }

    /// The paper's theoretical total sample count
    /// `R = 6·ln n / ((1−√c)⁴·ε²)` for the configured ε (before any budget
    /// capping and before the Lemma 3 `‖π_i‖²` scaling).
    pub fn theoretical_sample_count(&self) -> f64 {
        let n = self.graph.num_nodes().max(2) as f64;
        let sqrt_c = self.config.simrank.sqrt_decay();
        let eps = self.effective_epsilon();
        6.0 * n.ln() / ((1.0 - sqrt_c).powi(4) * eps * eps)
    }

    /// ε/2 for the optimized variant (half the error budget is spent on
    /// sparsification, per Lemma 2), ε for the basic variant.
    fn effective_epsilon(&self) -> f64 {
        match self.config.variant {
            ExactSimVariant::Basic => self.config.epsilon,
            ExactSimVariant::Optimized => self.config.epsilon / 2.0,
        }
    }

    fn diagonal_estimator(&self) -> DiagonalEstimator {
        match (&self.config.diagonal, self.config.variant) {
            (DiagonalMode::Exact(values), _) => DiagonalEstimator::Exact(values.clone()),
            (DiagonalMode::ParSimApprox, _) => DiagonalEstimator::ParSimApprox,
            (DiagonalMode::Estimated, ExactSimVariant::Basic) => DiagonalEstimator::Bernoulli,
            (DiagonalMode::Estimated, ExactSimVariant::Optimized) => {
                DiagonalEstimator::LocalDeterministic(self.config.explore_caps)
            }
        }
    }

    /// Scales the per-node allocation down proportionally when a walk budget
    /// is configured. Returns (requested_total, actual_total).
    fn apply_budget(&self, allocation: &mut [u64]) -> (u64, u64) {
        let requested: u64 = allocation
            .iter()
            .fold(0u64, |acc, &r| acc.saturating_add(r));
        let actual = match self.config.walk_budget {
            Some(budget) if requested > budget => {
                let factor = budget as f64 / requested as f64;
                for r in allocation.iter_mut() {
                    if *r > 0 {
                        *r = (((*r as f64) * factor).ceil() as u64).max(1);
                    }
                }
                allocation
                    .iter()
                    .fold(0u64, |acc, &r| acc.saturating_add(r))
            }
            _ => requested,
        };
        (requested, actual)
    }

    fn query_basic(
        &self,
        source: NodeId,
        scratch: &mut Scratch,
    ) -> Result<ExactSimResult, SimRankError> {
        let n = self.graph.num_nodes();
        let cfg = &self.config.simrank;
        let sqrt_c = cfg.sqrt_decay();
        let eps = self.effective_epsilon();
        let levels = cfg.iterations_for_epsilon(eps);
        let Scratch {
            dense_hops,
            dense_walk,
            dense_tmp,
            allocation,
            diag: diag_scratch,
            ..
        } = scratch;

        // Lines 2–5: ℓ-hop PPR vectors and their aggregate.
        dense_hop_vectors_into(
            &self.graph,
            source,
            sqrt_c,
            levels,
            cfg.threads,
            dense_walk,
            dense_tmp,
            dense_hops,
        );
        let hops = &*dense_hops;
        let ppr_norm_sq = hops.aggregate_l2_norm_sq();

        // Lines 6–8: allocate R(k) = ⌈R·π_i(k)⌉ and estimate D.
        let r_total = self.theoretical_sample_count();
        allocation.clear();
        allocation.resize(n, 0);
        for (slot, &p) in allocation.iter_mut().zip(hops.aggregate.iter()) {
            if p > 0.0 {
                *slot = (r_total * p).ceil().min(9.0e18) as u64;
            }
        }
        let (requested, actual) = self.apply_budget(allocation);
        let estimator = self.diagonal_estimator();
        let diag = estimate_diagonal_with(
            &self.graph,
            allocation,
            &estimator,
            sqrt_c,
            0.0,
            cfg.seed ^ source as u64,
            cfg.threads,
            diag_scratch,
        );

        let aux_memory_bytes =
            aux_memory_bytes(hops.memory_bytes(), diag.values.len(), allocation.len(), n);

        // Lines 9–12: the Linearization recurrence.
        let scores = accumulate_dense(
            &self.graph,
            &hops.hops,
            &diag.values,
            sqrt_c,
            cfg.threads,
            dense_tmp,
        );

        crate::counters::add(&crate::counters::SOLVER_ITERATIONS, levels as u64);
        crate::counters::add(&crate::counters::WALK_PAIRS, diag.walk_pairs);
        Ok(ExactSimResult {
            scores,
            stats: ExactSimStats {
                levels,
                requested_walk_pairs: requested,
                total_walk_pairs: actual,
                simulated_walk_pairs: diag.walk_pairs,
                explore_edges: diag.explore_edges,
                tails_skipped: diag.tails_skipped,
                aux_memory_bytes,
                ppr_norm_sq,
                hop_nnz: (levels + 1) * n,
            },
        })
    }

    fn query_optimized(
        &self,
        source: NodeId,
        scratch: &mut Scratch,
    ) -> Result<ExactSimResult, SimRankError> {
        let n = self.graph.num_nodes();
        let cfg = &self.config.simrank;
        let sqrt_c = cfg.sqrt_decay();
        let eps = self.effective_epsilon();
        let levels = cfg.iterations_for_epsilon(eps);
        let Scratch {
            ws,
            walk,
            walk_tmp,
            entries,
            sparse_hops,
            dense_tmp,
            allocation,
            diag: diag_scratch,
            ..
        } = scratch;

        // Sparse Linearization: prune hop entries below (1−√c)²·ε.
        let prune_threshold = self
            .config
            .prune_threshold_override
            .unwrap_or((1.0 - sqrt_c).powi(2) * eps);
        sparse_hop_vectors_into(
            &self.graph,
            source,
            sqrt_c,
            levels,
            prune_threshold,
            ws,
            walk,
            walk_tmp,
            entries,
            sparse_hops,
        );
        let hops = &*sparse_hops;
        let ppr_norm_sq = hops.aggregate_l2_norm_sq();

        // Lemma 3: R is scaled down by ‖π_i‖², i.e. R(k) = ⌈R_base·π_i(k)²⌉.
        let r_base = self.theoretical_sample_count();
        allocation.clear();
        allocation.resize(n, 0);
        for (k, p) in hops.aggregate.iter() {
            if p > 0.0 {
                allocation[k as usize] = (r_base * p * p).ceil().min(9.0e18) as u64;
            }
        }
        let (requested, actual) = self.apply_budget(allocation);

        // Bias budget for skipping Algorithm 3 tails: a uniform bias of
        // (1−√c)²·ε/4 across all D(k,k) adds at most ε/4 to the result.
        let tail_skip = (1.0 - sqrt_c).powi(2) * eps / 4.0;
        let estimator = self.diagonal_estimator();
        let diag = estimate_diagonal_with(
            &self.graph,
            allocation,
            &estimator,
            sqrt_c,
            tail_skip,
            cfg.seed ^ source as u64,
            cfg.threads,
            diag_scratch,
        );

        let aux_memory_bytes =
            aux_memory_bytes(hops.memory_bytes(), diag.values.len(), allocation.len(), n);

        let scores = accumulate_sparse(
            &self.graph,
            &hops.hops,
            &diag.values,
            sqrt_c,
            cfg.threads,
            dense_tmp,
        );

        crate::counters::add(&crate::counters::SOLVER_ITERATIONS, levels as u64);
        crate::counters::add(&crate::counters::WALK_PAIRS, diag.walk_pairs);
        Ok(ExactSimResult {
            scores,
            stats: ExactSimStats {
                levels,
                requested_walk_pairs: requested,
                total_walk_pairs: actual,
                simulated_walk_pairs: diag.walk_pairs,
                explore_edges: diag.explore_edges,
                tails_skipped: diag.tails_skipped,
                aux_memory_bytes,
                ppr_norm_sq,
                hop_nnz: hops.total_nnz(),
            },
        })
    }
}

/// Peak auxiliary memory of one query, in bytes — the paper's Table 3
/// accounting, audited to cover every *per-query* data structure the
/// algorithm materialises: the hop vectors (including their aggregate —
/// both [`crate::ppr::DenseHopVectors::memory_bytes`] and
/// [`crate::ppr::SparseHopVectors::memory_bytes`] count it), the diagonal
/// estimate, the per-node walk allocation `R(k)`, and the two dense
/// accumulators of the Linearization recurrence (the output column and its
/// ping-pong temporary).
///
/// Deliberately *excluded*: the capacity retained inside pooled [`Scratch`]
/// workspaces between queries (the [`crate::scratch::DistTable`] keeps the
/// exploration distributions' buffers alive by design so later queries can
/// reuse them). That retention is a property of the solver's pool — it
/// scales with concurrency × threads, not with one query — and counting it
/// here would make identical queries report different numbers depending on
/// pool history, which is exactly what a per-query Table 3 column must not
/// do.
fn aux_memory_bytes(
    hop_bytes: usize,
    diagonal_len: usize,
    allocation_len: usize,
    n: usize,
) -> usize {
    hop_bytes
        + diagonal_len * std::mem::size_of::<f64>()
        + allocation_len * std::mem::size_of::<u64>()
        + 2 * n * std::mem::size_of::<f64>()
}

/// Runs the recurrence `s^ℓ = √c·Pᵀ·s^{ℓ-1} + D̂·π^{L-ℓ}_i / (1−√c)` with
/// dense hop vectors (Algorithm 1, lines 9–12). Shared with the ParSim and
/// Linearization baselines, which differ only in how `D̂` is produced.
///
/// Only the returned score column is allocated; the ping-pong temporary is
/// the caller-owned `tmp`, and the `Pᵀ` multiplies shard over `threads`
/// workers (bit-identical for any thread count).
pub(crate) fn accumulate_dense<G: NeighborAccess>(
    graph: &G,
    hops: &[Vec<f64>],
    diagonal: &[f64],
    sqrt_c: f64,
    threads: usize,
    tmp: &mut Vec<f64>,
) -> Vec<f64> {
    let n = graph.num_nodes();
    let stop = 1.0 - sqrt_c;
    let levels = hops.len() - 1;
    let mut s = vec![0.0; n];
    tmp.clear();
    tmp.resize(n, 0.0);
    for step in 0..=levels {
        // s ← √c·Pᵀ·s   (skipped on the first step where s = 0)
        if step > 0 {
            pt_multiply_threaded(graph, &s, tmp, threads);
            for v in tmp.iter_mut() {
                *v *= sqrt_c;
            }
            std::mem::swap(&mut s, tmp);
        }
        // s ← s + D̂·π^{L-step} / (1−√c)
        let hop = &hops[levels - step];
        for k in 0..n {
            if hop[k] != 0.0 {
                s[k] += diagonal[k] * hop[k] / stop;
            }
        }
    }
    s
}

/// Same recurrence with sparse hop vectors (the accumulator itself stays
/// dense: after a few applications of `Pᵀ` it is dense anyway).
pub(crate) fn accumulate_sparse<G: NeighborAccess>(
    graph: &G,
    hops: &[SparseVec],
    diagonal: &[f64],
    sqrt_c: f64,
    threads: usize,
    tmp: &mut Vec<f64>,
) -> Vec<f64> {
    let n = graph.num_nodes();
    let stop = 1.0 - sqrt_c;
    let levels = hops.len() - 1;
    let mut s = vec![0.0; n];
    tmp.clear();
    tmp.resize(n, 0.0);
    for step in 0..=levels {
        if step > 0 {
            pt_multiply_threaded(graph, &s, tmp, threads);
            for v in tmp.iter_mut() {
                *v *= sqrt_c;
            }
            std::mem::swap(&mut s, tmp);
        }
        for (k, value) in hops[levels - step].iter() {
            s[k as usize] += diagonal[k as usize] * value / stop;
        }
    }
    s
}

#[cfg(test)]
mod tests;
