//! Tests for ExactSim against the exact ground truth.
//!
//! Sample counts scale as `1/ε²`, so the strict "error ≤ ε with the paper's
//! sample formula" tests use loose ε values to stay fast in debug builds;
//! the high-precision behaviour is exercised through the deterministic
//! exploration and exact-diagonal paths, where walk counts do not explode.

use super::*;
use crate::metrics::max_error;
use crate::power_method::{PowerMethod, PowerMethodConfig};
use exactsim_graph::generators::{barabasi_albert, complete, cycle, grid, star};
use exactsim_graph::DiGraph;

fn ground_truth(graph: &DiGraph) -> PowerMethod {
    PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap()
}

fn config(epsilon: f64, variant: ExactSimVariant) -> ExactSimConfig {
    ExactSimConfig {
        epsilon,
        variant,
        ..Default::default()
    }
}

#[test]
fn rejects_invalid_configurations() {
    let g = complete(4);
    assert!(ExactSim::new(&g, config(0.0, ExactSimVariant::Basic)).is_err());
    assert!(ExactSim::new(&g, config(1.5, ExactSimVariant::Basic)).is_err());
    let mut bad_budget = config(0.1, ExactSimVariant::Basic);
    bad_budget.walk_budget = Some(0);
    assert!(ExactSim::new(&g, bad_budget).is_err());
    let mut bad_diag = config(0.1, ExactSimVariant::Basic);
    bad_diag.diagonal = DiagonalMode::Exact(vec![1.0; 3]);
    assert!(ExactSim::new(&g, bad_diag).is_err());
    let mut nan_diag = config(0.1, ExactSimVariant::Basic);
    nan_diag.diagonal = DiagonalMode::Exact(vec![f64::NAN; 4]);
    assert!(ExactSim::new(&g, nan_diag).is_err());
    let empty = exactsim_graph::GraphBuilder::new(0).build();
    assert!(matches!(
        ExactSim::new(&empty, config(0.1, ExactSimVariant::Basic)),
        Err(SimRankError::EmptyGraph)
    ));
}

#[test]
fn rejects_out_of_range_source() {
    let g = complete(4);
    let solver = ExactSim::new(&g, config(0.1, ExactSimVariant::Optimized)).unwrap();
    assert!(matches!(
        solver.query(9),
        Err(SimRankError::SourceOutOfRange { .. })
    ));
}

#[test]
fn basic_variant_meets_its_error_bound_with_paper_sample_counts() {
    // ε = 0.25 keeps the paper's R = 6·ln n/((1-√c)⁴ε²) below ~2·10⁵ pairs,
    // fast enough for a debug-mode test while still exercising the full
    // uncapped pipeline.
    let graphs = vec![
        star(10, true),
        grid(3, 4),
        barabasi_albert(50, 2, true, 5).unwrap(),
    ];
    let eps = 0.25;
    for (gi, g) in graphs.into_iter().enumerate() {
        let truth = ground_truth(&g);
        let solver = ExactSim::new(&g, config(eps, ExactSimVariant::Basic)).unwrap();
        let source = (g.num_nodes() / 2) as u32;
        let result = solver.query(source).unwrap();
        let exact = truth.single_source(source);
        let err = max_error(&result.scores, &exact);
        assert!(
            err <= eps,
            "graph #{gi} source {source}: basic ExactSim error {err} > {eps}"
        );
        assert!((result.scores[source as usize] - 1.0).abs() <= eps);
        assert!(result.stats.simulated_walk_pairs > 0);
    }
}

#[test]
fn optimized_variant_meets_its_error_bound_on_small_graphs() {
    let graphs = vec![
        complete(8),
        star(10, true),
        barabasi_albert(60, 2, true, 6).unwrap(),
    ];
    let eps = 0.05;
    for (gi, g) in graphs.into_iter().enumerate() {
        let truth = ground_truth(&g);
        let solver = ExactSim::new(&g, config(eps, ExactSimVariant::Optimized)).unwrap();
        let source = 1u32;
        let result = solver.query(source).unwrap();
        let exact = truth.single_source(source);
        let err = max_error(&result.scores, &exact);
        assert!(
            err <= eps,
            "graph #{gi} source {source}: optimized ExactSim error {err} > {eps}"
        );
    }
}

#[test]
fn optimized_reaches_high_precision_on_a_small_graph() {
    // On a small graph the deterministic exploration resolves D essentially
    // exactly (every tail is skipped), so ε = 1e-6 is reached without
    // simulating astronomically many walks.
    let g = barabasi_albert(30, 2, true, 9).unwrap();
    let truth = ground_truth(&g);
    let cfg = ExactSimConfig {
        epsilon: 1e-6,
        variant: ExactSimVariant::Optimized,
        explore_caps: LocalExploreCaps {
            max_levels: 40,
            max_edges: u64::MAX,
            max_tail_samples: 1000,
        },
        ..Default::default()
    };
    let solver = ExactSim::new(&g, cfg).unwrap();
    let result = solver.query(3).unwrap();
    let err = max_error(&result.scores, &truth.single_source(3));
    assert!(err < 1e-5, "high-precision run error {err}");
    assert!(result.stats.tails_skipped > 0);
}

#[test]
fn exact_diagonal_mode_reduces_to_pure_linearization() {
    // With the exact D supplied, the only error left is the c^L truncation,
    // so the result matches the power method to well below 1e-7 with zero walks.
    let g = barabasi_albert(70, 2, false, 11).unwrap();
    let truth = ground_truth(&g);
    let exact_d = truth.exact_diagonal(&g);
    for variant in [ExactSimVariant::Basic, ExactSimVariant::Optimized] {
        let cfg = ExactSimConfig {
            epsilon: 1e-7,
            variant,
            diagonal: DiagonalMode::Exact(exact_d.clone()),
            ..Default::default()
        };
        let solver = ExactSim::new(&g, cfg).unwrap();
        let result = solver.query(0).unwrap();
        let err = max_error(&result.scores, &truth.single_source(0));
        assert!(
            err <= 1e-7,
            "{variant:?} with exact D: error {err} exceeds 1e-7"
        );
        assert_eq!(result.stats.simulated_walk_pairs, 0);
    }
}

#[test]
fn parsim_diagonal_mode_is_visibly_biased() {
    // The D = (1-c)I approximation must produce a larger error than the exact
    // D on a graph with heterogeneous in-degrees — this is the paper's §2.2
    // argument for why ParSim cannot be exact.
    let g = barabasi_albert(80, 3, true, 13).unwrap();
    let truth = ground_truth(&g);
    let exact = truth.single_source(2);

    let biased_cfg = ExactSimConfig {
        epsilon: 1e-4,
        variant: ExactSimVariant::Optimized,
        diagonal: DiagonalMode::ParSimApprox,
        ..Default::default()
    };
    let biased = ExactSim::new(&g, biased_cfg).unwrap().query(2).unwrap();
    let biased_err = max_error(&biased.scores, &exact);

    let exact_cfg = ExactSimConfig {
        epsilon: 1e-4,
        variant: ExactSimVariant::Optimized,
        diagonal: DiagonalMode::Exact(truth.exact_diagonal(&g)),
        ..Default::default()
    };
    let unbiased = ExactSim::new(&g, exact_cfg).unwrap().query(2).unwrap();
    let unbiased_err = max_error(&unbiased.scores, &exact);

    assert!(
        biased_err > 10.0 * unbiased_err.max(1e-9),
        "ParSim approximation should be visibly biased: biased {biased_err}, unbiased {unbiased_err}"
    );
    assert!(biased_err > 1e-3);
}

#[test]
fn walk_budget_caps_the_sample_count() {
    let g = barabasi_albert(100, 2, true, 17).unwrap();
    let mut cfg = config(1e-3, ExactSimVariant::Basic);
    cfg.walk_budget = Some(10_000);
    let solver = ExactSim::new(&g, cfg).unwrap();
    let result = solver.query(0).unwrap();
    assert!(result.stats.requested_walk_pairs > result.stats.total_walk_pairs);
    // Ceil-per-node rounding can exceed the budget by at most one per node.
    assert!(result.stats.total_walk_pairs <= 10_000 + g.num_nodes() as u64);
    assert!(result.stats.simulated_walk_pairs <= result.stats.total_walk_pairs);
}

#[test]
fn optimized_uses_less_memory_than_basic() {
    // Table 3's claim: sparse Linearization cuts the auxiliary memory well
    // below the basic variant's (L+1) dense vectors. The effect needs
    // n ≫ 1/((1-√c)²·ε), hence the larger graph and moderate ε here.
    let g = barabasi_albert(20_000, 3, false, 19).unwrap();
    let eps = 1e-2;
    let mut basic_cfg = config(eps, ExactSimVariant::Basic);
    basic_cfg.walk_budget = Some(5_000);
    let mut opt_cfg = config(eps, ExactSimVariant::Optimized);
    opt_cfg.walk_budget = Some(5_000);
    let basic = ExactSim::new(&g, basic_cfg).unwrap().query(7).unwrap();
    let optimized = ExactSim::new(&g, opt_cfg).unwrap().query(7).unwrap();
    assert!(
        optimized.stats.aux_memory_bytes < basic.stats.aux_memory_bytes,
        "optimized {} bytes vs basic {} bytes",
        optimized.stats.aux_memory_bytes,
        basic.stats.aux_memory_bytes
    );
    assert!(optimized.stats.hop_nnz < basic.stats.hop_nnz / 4);
}

#[test]
fn pi_squared_sampling_requests_fewer_walks() {
    // Lemma 3: the optimized allocation Σ⌈R·π(k)²⌉ is (much) smaller than the
    // basic allocation Σ⌈R·π(k)⌉ on scale-free graphs.
    let g = barabasi_albert(400, 3, false, 23).unwrap();
    let eps = 1e-3;
    let mut basic_cfg = config(eps, ExactSimVariant::Basic);
    basic_cfg.walk_budget = Some(5_000);
    let mut opt_cfg = config(eps, ExactSimVariant::Optimized);
    opt_cfg.walk_budget = Some(5_000);
    let basic = ExactSim::new(&g, basic_cfg).unwrap().query(11).unwrap();
    let optimized = ExactSim::new(&g, opt_cfg).unwrap().query(11).unwrap();
    assert!(
        optimized.stats.requested_walk_pairs < basic.stats.requested_walk_pairs / 2,
        "π² sampling should cut the requested walks: optimized {}, basic {}",
        optimized.stats.requested_walk_pairs,
        basic.stats.requested_walk_pairs
    );
    assert!(optimized.stats.ppr_norm_sq < 1.0);
}

#[test]
fn deterministic_given_the_same_seed() {
    let g = barabasi_albert(120, 2, true, 29).unwrap();
    let mut cfg = config(1e-2, ExactSimVariant::Basic);
    cfg.walk_budget = Some(50_000);
    let a = ExactSim::new(&g, cfg.clone()).unwrap().query(5).unwrap();
    let b = ExactSim::new(&g, cfg.clone()).unwrap().query(5).unwrap();
    assert_eq!(a.scores, b.scores);
    cfg.simrank.seed = 999;
    let c = ExactSim::new(&g, cfg).unwrap().query(5).unwrap();
    // A different seed changes the sampled D̂ and therefore (almost surely)
    // the scores, while staying within the error bound.
    assert_ne!(a.scores, c.scores);
}

#[test]
fn scores_stay_in_the_valid_range() {
    let g = barabasi_albert(150, 3, true, 31).unwrap();
    for variant in [ExactSimVariant::Basic, ExactSimVariant::Optimized] {
        let mut cfg = config(1e-2, variant);
        cfg.walk_budget = Some(20_000);
        let result = ExactSim::new(&g, cfg).unwrap().query(4).unwrap();
        for (j, &s) in result.scores.iter().enumerate() {
            assert!(
                (-0.05..=1.05).contains(&s),
                "score {s} for node {j} outside the plausible range"
            );
        }
    }
}

#[test]
fn isolated_source_yields_delta_vector() {
    // A node with no in-edges is similar only to itself.
    let g = star(8, false);
    let solver = ExactSim::new(&g, config(1e-3, ExactSimVariant::Optimized)).unwrap();
    let result = solver.query(3).unwrap();
    assert!((result.scores[3] - 1.0).abs() < 1e-9);
    for (j, &s) in result.scores.iter().enumerate() {
        if j != 3 {
            assert!(s.abs() < 1e-9, "leaf should have zero similarity, got {s}");
        }
    }
}

#[test]
fn cycle_source_matches_ground_truth_exactly() {
    // Every node of a cycle has in-degree 1, so D = (1-c)·I is exact and no
    // sampling error exists at all: ExactSim must return 1 for the source and
    // 0 elsewhere up to truncation.
    let g = cycle(9);
    let solver = ExactSim::new(&g, config(1e-6, ExactSimVariant::Optimized)).unwrap();
    let result = solver.query(4).unwrap();
    assert!((result.scores[4] - 1.0).abs() < 1e-6);
    for (j, &s) in result.scores.iter().enumerate() {
        if j != 4 {
            assert!(s.abs() < 1e-6);
        }
    }
}

#[test]
fn theoretical_sample_count_matches_formula() {
    let g = complete(100);
    let solver = ExactSim::new(&g, config(1e-3, ExactSimVariant::Basic)).unwrap();
    let sqrt_c = 0.6f64.sqrt();
    let expected = 6.0 * (100f64).ln() / ((1.0 - sqrt_c).powi(4) * 1e-6);
    assert!((solver.theoretical_sample_count() - expected).abs() / expected < 1e-12);
}

#[test]
fn variants_agree_with_each_other() {
    let g = barabasi_albert(90, 2, true, 37).unwrap();
    let eps = 0.1;
    let basic = ExactSim::new(&g, config(eps, ExactSimVariant::Basic))
        .unwrap()
        .query(8)
        .unwrap();
    let optimized = ExactSim::new(&g, config(eps, ExactSimVariant::Optimized))
        .unwrap()
        .query(8)
        .unwrap();
    let diff = max_error(&basic.scores, &optimized.scores);
    assert!(
        diff <= 2.0 * eps,
        "basic and optimized variants disagree by {diff}"
    );
}

#[test]
fn queries_are_bit_identical_across_calls_and_instances() {
    // Regression test: the Algorithm 3 accumulations once iterated HashMaps,
    // whose per-instance randomized ordering made identical queries differ at
    // ULP level within one process. Serving-layer caching relies on repeated
    // queries being bit-identical.
    let g = barabasi_albert(150, 3, true, 11).unwrap();
    let cfg = ExactSimConfig {
        epsilon: 1e-2,
        walk_budget: Some(100_000),
        ..Default::default()
    };
    for source in [0u32, 7, 42] {
        let a = ExactSim::new(&g, cfg.clone())
            .unwrap()
            .query(source)
            .unwrap();
        let b = ExactSim::new(&g, cfg.clone())
            .unwrap()
            .query(source)
            .unwrap();
        assert_eq!(a.scores, b.scores, "source {source} not reproducible");
    }
}
