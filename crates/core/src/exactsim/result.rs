//! Result and statistics types for ExactSim queries.

/// The outcome of one ExactSim single-source query.
#[derive(Clone, Debug)]
pub struct ExactSimResult {
    /// `scores[j]` estimates `S(j, source)`; `scores[source] ≈ 1`.
    pub scores: Vec<f64>,
    /// Cost and accuracy diagnostics for the query.
    pub stats: ExactSimStats,
}

impl ExactSimResult {
    /// Peak auxiliary memory of the query in bytes (the paper's Table 3
    /// metric) — hop vectors *including the aggregate PPR vector*, the
    /// diagonal estimate, the per-node walk allocation, and both dense
    /// accumulators of the recurrence. Capacity retained in pooled `Scratch`
    /// workspaces between queries is intentionally excluded (it is pool
    /// state, not per-query cost — see the accounting note in the solver
    /// module). Surfaced here so benchmark memory columns read it through
    /// one audited accessor instead of recomputing.
    pub fn memory_bytes(&self) -> usize {
        self.stats.aux_memory_bytes
    }
}

/// Per-query cost diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExactSimStats {
    /// Number of Linearization iterations `L` used.
    pub levels: usize,
    /// The total sample count `Σ_k R(k)` the theory requested (before any
    /// walk-budget capping).
    pub requested_walk_pairs: u64,
    /// The total sample count after budget capping — what the variance
    /// analysis is actually entitled to.
    pub total_walk_pairs: u64,
    /// Walk pairs that were actually simulated; smaller than
    /// `total_walk_pairs` when the deterministic exploration (Algorithm 3)
    /// made tail sampling unnecessary.
    pub simulated_walk_pairs: u64,
    /// Edge traversals spent on the deterministic exploration of `D`.
    pub explore_edges: u64,
    /// Nodes whose tail sampling was skipped entirely.
    pub tails_skipped: usize,
    /// Peak auxiliary memory in bytes — the quantity reported in the paper's
    /// Table 3. Audited to cover hop vectors (with their aggregate), the
    /// diagonal estimate, the `R(k)` allocation vector, and the two dense
    /// recurrence accumulators; see `ExactSimResult::memory_bytes`.
    pub aux_memory_bytes: usize,
    /// `‖π_i‖²` of the source's Personalized PageRank vector (drives the
    /// Lemma 3 speed-up).
    pub ppr_norm_sq: f64,
    /// Total non-zero entries stored across all hop vectors (dense variants
    /// count `(L+1)·n`).
    pub hop_nnz: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zeroed() {
        let stats = ExactSimStats::default();
        assert_eq!(stats.levels, 0);
        assert_eq!(stats.total_walk_pairs, 0);
        assert_eq!(stats.aux_memory_bytes, 0);
    }

    #[test]
    fn result_is_cloneable_and_debuggable() {
        let r = ExactSimResult {
            scores: vec![1.0, 0.5],
            stats: ExactSimStats {
                levels: 3,
                ..Default::default()
            },
        };
        let r2 = r.clone();
        assert_eq!(r2.scores, vec![1.0, 0.5]);
        assert!(format!("{r2:?}").contains("levels: 3"));
    }
}
