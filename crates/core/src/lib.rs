//! # exactsim
//!
//! A reproduction of **"Exact Single-Source SimRank Computation on Large
//! Graphs"** (Wang, Wei, Yuan, Du, Wen — SIGMOD 2020), together with every
//! baseline the paper evaluates against.
//!
//! SimRank scores the structural similarity of two nodes in a directed graph:
//! two nodes are similar if they are pointed at by similar nodes. Formally,
//! with decay factor `c` and in-neighbor sets `I(·)`,
//!
//! ```text
//! S(i,i) = 1
//! S(i,j) = c / (din(i)·din(j)) · Σ_{i'∈I(i)} Σ_{j'∈I(j)} S(i',j')
//! ```
//!
//! A *single-source* query asks for the whole column `S(·, i)` of one node; a
//! *top-k* query asks for the `k` most similar nodes. The paper's
//! contribution, **ExactSim**, answers single-source queries with additive
//! error `ε = 1e-7` ("probabilistic exactness") in time that no longer carries
//! the `O(n·log n/ε²)` term of prior work.
//!
//! ## What is in this crate
//!
//! | module | algorithm | role in the paper |
//! |---|---|---|
//! | [`power_method`] | Power Method (all pairs) | the only prior exact method; ground truth on small graphs |
//! | [`naive`] | pair-recursive SimRank | independent ground truth for tests |
//! | [`mc`] | Monte-Carlo index (Fogaras–Rácz) | baseline |
//! | [`parsim`] | ParSim (`D = (1-c)·I`) | baseline |
//! | [`linearization`] | Linearization with MC-estimated `D` | baseline |
//! | [`prsim`] | PRSim-style ℓ-hop PPR index | baseline |
//! | [`exactsim`] | **ExactSim** basic + optimized | the paper's contribution |
//! | [`diagonal`] | estimators for the diagonal correction matrix `D` | Algorithms 2 and 3 |
//! | [`ppr`] | ℓ-hop Personalized PageRank vectors | shared substrate (eq. 8) |
//! | [`walks`] | √c-walk sampling engine | shared substrate (eq. 2) |
//! | [`scratch`] | reusable per-query workspaces ([`scratch::Scratch`]) | engineering: allocation-free, deterministic kernels |
//! | [`counters`] | process-global kernel counters (scratch reuse, iterations, walks) | engineering: observability without dependencies |
//! | [`topk`], [`metrics`], [`pooling`] | top-k extraction, MaxError / Precision@k, pooling | evaluation methodology |
//!
//! Every solver is generic over its graph backend
//! (`G: exactsim_graph::NeighborAccess` — `&DiGraph` for borrowing library
//! use, `Arc<DiGraph>` for `'static + Send + Sync` sharing, or a paged
//! buffer-pool handle from `exactsim-store` for out-of-core graphs), and
//! [`suite`] wraps them behind the uniform [`suite::SingleSourceAlgorithm`]
//! trait. The workspace's `exactsim-service` crate builds on exactly that: a
//! concurrent query-serving engine (sharded LRU result cache, in-flight
//! deduplication, worker-pool batching, latency stats) holding the solvers as
//! `Arc<dyn SingleSourceAlgorithm + Send + Sync>`.
//!
//! ## Quickstart
//!
//! ```
//! use exactsim_graph::generators::barabasi_albert;
//! use exactsim::prelude::*;
//!
//! let graph = barabasi_albert(100, 3, true, 42).unwrap();
//! let config = ExactSimConfig {
//!     epsilon: 1e-2,
//!     walk_budget: Some(100_000),
//!     ..ExactSimConfig::default()
//! };
//! let result = ExactSim::new(&graph, config).unwrap().query(0).unwrap();
//! let top = exactsim::topk::top_k(&result.scores, 0, 10);
//! assert!((result.scores[0] - 1.0).abs() < 1e-2); // S(v, v) = 1
//! assert!(top.iter().all(|e| e.score <= 1.0));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod config;
pub mod counters;
pub mod diagonal;
pub mod error;
pub mod exactsim;
pub mod linearization;
pub mod mc;
pub mod metrics;
pub mod naive;
pub mod parallel;
pub mod parsim;
pub mod pooling;
pub mod power_method;
pub mod ppr;
pub mod prsim;
pub mod scratch;
pub mod suite;
pub mod topk;
pub mod walks;

pub use config::SimRankConfig;
pub use error::SimRankError;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::SimRankConfig;
    pub use crate::error::SimRankError;
    pub use crate::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
    pub use crate::linearization::{Linearization, LinearizationConfig};
    pub use crate::mc::{MonteCarlo, MonteCarloConfig};
    pub use crate::metrics::{max_error, precision_at_k};
    pub use crate::parsim::{ParSim, ParSimConfig};
    pub use crate::power_method::{PowerMethod, PowerMethodConfig};
    pub use crate::prsim::{PrSim, PrSimConfig};
    pub use crate::scratch::{Scratch, ScratchPool};
    pub use crate::suite::{QueryOutput, SingleSourceAlgorithm};
    pub use crate::topk::{top_k, TopKEntry};
}
