//! Process-global kernel counters.
//!
//! The serving stack wants to know what the numeric kernels are doing —
//! scratch-pool reuse, solver iterations, Monte-Carlo walk volume — without
//! this crate depending on any observability machinery. The contract is the
//! thinnest possible: a handful of `AtomicU64` statics, bumped in *batches*
//! (once per query or index build, never per walk or per iteration) so the
//! cost is a few relaxed adds per kernel invocation, invisible next to the
//! kernel itself. The `exactsim-service` metrics registry reads them at
//! scrape time through [`snapshot`].
//!
//! The counters are process-wide, not per-solver: they answer "what has this
//! process's kernel layer done since start", which is exactly the shape a
//! Prometheus counter wants (rates come from deltas on the scrape side).

use std::sync::atomic::{AtomicU64, Ordering};

/// Scratch workspaces served from the pool (no allocation).
pub static SCRATCH_POOL_HITS: AtomicU64 = AtomicU64::new(0);
/// Scratch workspaces built fresh because the pool was empty.
pub static SCRATCH_POOL_MISSES: AtomicU64 = AtomicU64::new(0);
/// Level/iteration steps executed by the deterministic solvers (ExactSim
/// levels, Linearization levels, power-method iterations).
pub static SOLVER_ITERATIONS: AtomicU64 = AtomicU64::new(0);
/// √c-walks sampled by the Monte-Carlo index builder.
pub static MC_WALKS: AtomicU64 = AtomicU64::new(0);
/// Walk *pairs* simulated by ExactSim's diagonal estimator.
pub static WALK_PAIRS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` to a kernel counter (relaxed; statistics, not synchronization).
#[inline]
pub fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Adds one to a kernel counter.
#[inline]
pub fn inc(counter: &AtomicU64) {
    add(counter, 1);
}

/// A point-in-time copy of every kernel counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Scratch workspaces served from the pool.
    pub scratch_pool_hits: u64,
    /// Scratch workspaces allocated fresh.
    pub scratch_pool_misses: u64,
    /// Solver level/iteration steps executed.
    pub solver_iterations: u64,
    /// Monte-Carlo walks sampled.
    pub mc_walks: u64,
    /// ExactSim diagonal walk pairs simulated.
    pub walk_pairs: u64,
}

/// Reads every counter (relaxed; counters may move between loads).
#[must_use]
pub fn snapshot() -> KernelCounters {
    KernelCounters {
        scratch_pool_hits: SCRATCH_POOL_HITS.load(Ordering::Relaxed),
        scratch_pool_misses: SCRATCH_POOL_MISSES.load(Ordering::Relaxed),
        solver_iterations: SOLVER_ITERATIONS.load(Ordering::Relaxed),
        mc_walks: MC_WALKS.load(Ordering::Relaxed),
        walk_pairs: WALK_PAIRS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_the_snapshot() {
        // Counters are process-global and other tests bump them concurrently,
        // so assert on deltas of the counters this test owns the increments
        // for, not absolute values.
        let before = snapshot();
        add(&SOLVER_ITERATIONS, 7);
        inc(&MC_WALKS);
        let after = snapshot();
        assert!(after.solver_iterations >= before.solver_iterations + 7);
        assert!(after.mc_walks > before.mc_walks);
    }
}
