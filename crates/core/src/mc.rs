//! MC: the Monte-Carlo single-source baseline (Fogaras & Rácz).
//!
//! In a preprocessing phase MC simulates and stores `r` √c-walks of length at
//! most `L` from *every* node. A single-source query for `v_i` then pairs the
//! x-th stored walk of `v_i` with the x-th stored walk of every other node
//! `v_j` and uses the fraction of pairs that meet as the estimator of
//! `S(i, j)` (eq. 2 of the paper). Accuracy `ε` needs `r = O(log n/ε²)` walks
//! per node, which is the `O(n·log n/ε²)` preprocessing cost the paper's §2.2
//! calls out; the index (all stored walks) is also by far the largest of the
//! compared methods (Figure 4/8).

use exactsim_graph::{NeighborAccess, NodeId};

use crate::config::SimRankConfig;
use crate::error::SimRankError;
use crate::parallel::parallel_map_reduce;
use crate::walks::{self, Walk};

/// Configuration for [`MonteCarlo`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloConfig {
    /// Shared SimRank parameters.
    pub simrank: SimRankConfig,
    /// Number of stored walks per node (`r` in the paper's parameter sweep,
    /// varied from 50 to 50 000).
    pub walks_per_node: usize,
    /// Maximum walk length (`L` in the paper's sweep, varied from 5 to 5 000;
    /// since walk lengths are geometric with mean `1/(1-√c) ≈ 4.4`, lengths
    /// beyond a few dozen change nothing).
    pub walk_length: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            simrank: SimRankConfig::default(),
            walks_per_node: 100,
            walk_length: 10,
        }
    }
}

impl MonteCarloConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimRankError> {
        self.simrank.validate()?;
        if self.walks_per_node == 0 {
            return Err(SimRankError::InvalidParameter {
                name: "walks_per_node",
                message: "at least one walk per node is required".into(),
            });
        }
        if self.walk_length == 0 {
            return Err(SimRankError::InvalidParameter {
                name: "walk_length",
                message: "walk length must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// The MC index: `walks_per_node` stored √c-walks from every node.
///
/// Generic over the graph backend `G: NeighborAccess` (`&DiGraph`,
/// `Arc<DiGraph>`, or a paged store handle), like every solver in this
/// crate — see [`crate::exactsim::ExactSim`].
#[derive(Clone, Debug)]
pub struct MonteCarlo<G: NeighborAccess> {
    graph: G,
    config: MonteCarloConfig,
    /// `walks[v * r + x]` is the x-th stored walk from node `v`.
    walks: Vec<Walk>,
}

impl<G: NeighborAccess> MonteCarlo<G> {
    /// Runs the preprocessing phase: samples and stores all walks.
    pub fn build(graph: G, config: MonteCarloConfig) -> Result<Self, SimRankError> {
        config.validate()?;
        let g = &graph;
        let n = g.num_nodes();
        if n == 0 {
            return Err(SimRankError::EmptyGraph);
        }
        let r = config.walks_per_node;
        let sqrt_c = config.simrank.sqrt_decay();
        let threads = config.simrank.threads.max(1);

        // Sample walks node-range by node-range; every node derives its own
        // RNG stream from (seed, node id), so the index is bit-identical for
        // any thread count.
        let chunk_walks = parallel_map_reduce(
            n,
            threads,
            |_chunk_index, range| {
                let mut local = Vec::with_capacity(range.len() * r);
                for v in range {
                    let mut rng =
                        walks::make_rng(walks::derive_seed(config.simrank.seed, v as u64));
                    for _ in 0..r {
                        local.push(walks::sample_walk(
                            g,
                            v as NodeId,
                            sqrt_c,
                            config.walk_length,
                            &mut rng,
                        ));
                    }
                }
                local
            },
            Vec::with_capacity(n * r),
            |mut acc: Vec<Walk>, part| {
                acc.extend(part);
                acc
            },
        );
        debug_assert_eq!(chunk_walks.len(), n * r);
        crate::counters::add(&crate::counters::MC_WALKS, (n * r) as u64);
        Ok(MonteCarlo {
            graph,
            config,
            walks: chunk_walks,
        })
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Size of the stored-walk index in bytes (Figure 4/8 accounting).
    pub fn index_bytes(&self) -> usize {
        let step_bytes: usize = self
            .walks
            .iter()
            .map(|w| w.positions.len() * std::mem::size_of::<NodeId>())
            .sum();
        step_bytes + self.walks.len() * std::mem::size_of::<Walk>()
    }

    /// Total number of stored walk steps (proportional to preprocessing work).
    pub fn total_steps(&self) -> usize {
        self.walks.iter().map(Walk::len).sum()
    }

    /// Answers a single-source query by pairing stored walks.
    ///
    /// The per-node tally loop is sharded over the configured thread count:
    /// every node's score is computed independently from the stored walks, so
    /// each shard writes a disjoint slice of the output and the result is
    /// bit-identical for any thread count.
    pub fn query(&self, source: NodeId) -> Result<Vec<f64>, SimRankError> {
        let n = self.graph.num_nodes();
        if source as usize >= n {
            return Err(SimRankError::SourceOutOfRange {
                source,
                num_nodes: n,
            });
        }
        let r = self.config.walks_per_node;
        let all_walks = &self.walks;
        let source_walks = &all_walks[source as usize * r..(source as usize + 1) * r];
        let mut scores = vec![0.0; n];
        let tally_range = |range: std::ops::Range<usize>, out: &mut [f64]| {
            for (j, score) in range.clone().zip(out.iter_mut()) {
                if j == source as usize {
                    *score = 1.0;
                    continue;
                }
                let other = &all_walks[j * r..(j + 1) * r];
                let mut meets = 0usize;
                for (a, b) in source_walks.iter().zip(other.iter()) {
                    if walks::walks_meet(a, b) {
                        meets += 1;
                    }
                }
                *score = meets as f64 / r as f64;
            }
        };
        let threads = self.config.simrank.threads.max(1);
        let ranges = crate::parallel::split_ranges(n, threads);
        let mut units = vec![(); ranges.len()];
        crate::parallel::shard_slices(&mut scores, &ranges, &mut units, |range, (), out| {
            tally_range(range, out)
        });
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::max_error;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use exactsim_graph::generators::{barabasi_albert, complete, cycle, star};
    use exactsim_graph::DiGraph;

    fn build(graph: &DiGraph, walks_per_node: usize) -> MonteCarlo<&DiGraph> {
        MonteCarlo::build(
            graph,
            MonteCarloConfig {
                walks_per_node,
                walk_length: 30,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn validates_configuration() {
        let g = complete(3);
        assert!(MonteCarlo::build(
            &g,
            MonteCarloConfig {
                walks_per_node: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(MonteCarlo::build(
            &g,
            MonteCarloConfig {
                walk_length: 0,
                ..Default::default()
            }
        )
        .is_err());
        let empty = exactsim_graph::GraphBuilder::new(0).build();
        assert!(MonteCarlo::build(&empty, MonteCarloConfig::default()).is_err());
    }

    #[test]
    fn estimates_converge_to_ground_truth() {
        let g = barabasi_albert(40, 2, true, 3).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let index = build(&g, 4000);
        let scores = index.query(1).unwrap();
        let err = max_error(&scores, &truth.single_source(1));
        assert!(err < 0.05, "MC error {err} too large for 4000 walks/node");
    }

    #[test]
    fn more_walks_reduce_the_error() {
        let g = barabasi_albert(40, 2, true, 13).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let exact = truth.single_source(0);
        let coarse = build(&g, 50).query(0).unwrap();
        let fine = build(&g, 5000).query(0).unwrap();
        let coarse_err = max_error(&coarse, &exact);
        let fine_err = max_error(&fine, &exact);
        assert!(
            fine_err < coarse_err,
            "error should shrink with more walks: {coarse_err} -> {fine_err}"
        );
    }

    #[test]
    fn cycle_gives_zero_similarity() {
        let g = cycle(6);
        let index = build(&g, 200);
        let scores = index.query(0).unwrap();
        assert_eq!(scores[0], 1.0);
        for &s in &scores[1..] {
            assert_eq!(s, 0.0, "walks on a cycle can never meet");
        }
    }

    #[test]
    fn directed_star_gives_zero_similarity_for_leaves() {
        let g = star(7, false);
        let index = build(&g, 100);
        let scores = index.query(2).unwrap();
        for (j, &s) in scores.iter().enumerate() {
            if j != 2 {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn index_size_scales_with_walk_count() {
        let g = barabasi_albert(60, 2, true, 5).unwrap();
        let small = build(&g, 20);
        let large = build(&g, 200);
        assert!(large.index_bytes() > 5 * small.index_bytes());
        assert!(large.total_steps() > 5 * small.total_steps());
    }

    #[test]
    fn deterministic_per_seed_and_independent_of_thread_count() {
        let g = barabasi_albert(80, 2, true, 9).unwrap();
        let mut cfg = MonteCarloConfig {
            walks_per_node: 50,
            walk_length: 20,
            ..Default::default()
        };
        let a = MonteCarlo::build(&g, cfg).unwrap().query(3).unwrap();
        cfg.simrank.threads = 4;
        let b = MonteCarlo::build(&g, cfg).unwrap().query(3).unwrap();
        // Per-node RNG streams make the index bit-identical for any thread count.
        assert_eq!(a, b);
        cfg.simrank.threads = 1;
        let a2 = MonteCarlo::build(&g, cfg).unwrap().query(3).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn query_checks_source_range() {
        let g = complete(4);
        let index = build(&g, 10);
        assert!(index.query(4).is_err());
    }
}
