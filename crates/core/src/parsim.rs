//! ParSim: Linearization with the `D = (1 − c)·I` approximation.
//!
//! ParSim (Yu & McCann, PVLDB 2015) runs the same iterative accumulation as
//! Linearization but simply *assumes* `D = (1 − c)·I`, i.e. it ignores the
//! first-meeting constraint of the √c-walk interpretation. That makes every
//! query purely deterministic and `O(m·L)` with no preprocessing at all — but
//! biased: the paper's §2.2 singles this out as the reason ParSim cannot reach
//! the 1e-7 exactness level no matter how many iterations it runs, and
//! Figures 1 and 5 show its error flattening out. The number of iterations
//! `L` is ParSim's only parameter.

use exactsim_graph::{NeighborAccess, NodeId};

use crate::config::SimRankConfig;
use crate::error::SimRankError;
use crate::exactsim::accumulate_dense;
use crate::ppr::dense_hop_vectors_into;
use crate::scratch::ScratchPool;

/// Configuration for [`ParSim`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParSimConfig {
    /// Shared SimRank parameters (decay factor `c`).
    pub simrank: SimRankConfig,
    /// Number of Linearization iterations (the paper varies this from 10 to
    /// 5·10⁵ across Figures 1–6).
    pub iterations: usize,
}

impl Default for ParSimConfig {
    fn default() -> Self {
        ParSimConfig {
            simrank: SimRankConfig::default(),
            iterations: 50,
        }
    }
}

/// The ParSim single-source solver (index-free, deterministic, biased).
///
/// Generic over the graph backend `G: NeighborAccess`, like every solver
/// in this crate — see [`crate::exactsim::ExactSim`].
#[derive(Clone, Debug)]
pub struct ParSim<G: NeighborAccess> {
    graph: G,
    config: ParSimConfig,
    /// The constant `(1 − c)·I` diagonal, materialised once.
    diagonal: Vec<f64>,
    pool: ScratchPool,
}

impl<G: NeighborAccess> ParSim<G> {
    /// Creates a solver for `graph`.
    pub fn new(graph: G, config: ParSimConfig) -> Result<Self, SimRankError> {
        config.simrank.validate()?;
        if config.iterations == 0 {
            return Err(SimRankError::InvalidParameter {
                name: "iterations",
                message: "ParSim needs at least one iteration".into(),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Err(SimRankError::EmptyGraph);
        }
        let diagonal = vec![1.0 - config.simrank.decay; n];
        Ok(ParSim {
            graph,
            config,
            diagonal,
            pool: ScratchPool::new(n),
        })
    }

    /// The configuration this solver was built with.
    pub fn config(&self) -> &ParSimConfig {
        &self.config
    }

    /// Answers a single-source query; the result carries the ParSim bias.
    pub fn query(&self, source: NodeId) -> Result<Vec<f64>, SimRankError> {
        let n = self.graph.num_nodes();
        if source as usize >= n {
            return Err(SimRankError::SourceOutOfRange {
                source,
                num_nodes: n,
            });
        }
        let cfg = &self.config.simrank;
        let sqrt_c = cfg.sqrt_decay();
        let mut scratch = self.pool.checkout();
        dense_hop_vectors_into(
            &self.graph,
            source,
            sqrt_c,
            self.config.iterations,
            cfg.threads,
            &mut scratch.dense_walk,
            &mut scratch.dense_tmp,
            &mut scratch.dense_hops,
        );
        let mut scores = accumulate_dense(
            &self.graph,
            &scratch.dense_hops.hops,
            &self.diagonal,
            sqrt_c,
            cfg.threads,
            &mut scratch.dense_tmp,
        );
        self.pool.give_back(scratch);
        // S(i, i) = 1 by definition; without the correct D the accumulation
        // underestimates the source's own similarity, so pin it (the standard
        // convention for D = (1-c)I implementations — the bias the paper
        // measures is the off-diagonal one).
        scores[source as usize] = 1.0;
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::max_error;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use exactsim_graph::generators::{barabasi_albert, complete, cycle, star};

    #[test]
    fn validates_configuration() {
        let g = complete(3);
        let bad = ParSimConfig {
            iterations: 0,
            ..Default::default()
        };
        assert!(ParSim::new(&g, bad).is_err());
        let empty = exactsim_graph::GraphBuilder::new(0).build();
        assert!(ParSim::new(&empty, ParSimConfig::default()).is_err());
        let solver = ParSim::new(&g, ParSimConfig::default()).unwrap();
        assert!(solver.query(99).is_err());
    }

    #[test]
    fn exact_on_graphs_where_d_truly_is_one_minus_c() {
        // Every node of a cycle has in-degree exactly 1, so ParSim's
        // assumption holds and the result is exact (up to truncation).
        let g = cycle(8);
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let solver = ParSim::new(
            &g,
            ParSimConfig {
                iterations: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let scores = solver.query(2).unwrap();
        assert!(max_error(&scores, &truth.single_source(2)) < 1e-10);
    }

    #[test]
    fn biased_on_graphs_with_larger_in_degrees() {
        // On a scale-free graph the (1-c)I assumption is wrong and no number
        // of iterations fixes it — the error floor is what the paper's
        // Figure 1 shows for ParSim.
        let g = barabasi_albert(60, 3, true, 7).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let few = ParSim::new(
            &g,
            ParSimConfig {
                iterations: 20,
                ..Default::default()
            },
        )
        .unwrap()
        .query(1)
        .unwrap();
        let many = ParSim::new(
            &g,
            ParSimConfig {
                iterations: 200,
                ..Default::default()
            },
        )
        .unwrap()
        .query(1)
        .unwrap();
        let exact = truth.single_source(1);
        let err_few = max_error(&few, &exact);
        let err_many = max_error(&many, &exact);
        assert!(err_many > 1e-4, "ParSim error floor missing: {err_many}");
        // More iterations do not help once the floor is reached.
        assert!((err_many - err_few).abs() < err_few.max(1e-6));
    }

    #[test]
    fn source_similarity_close_to_one_but_biased() {
        let g = star(9, true);
        let solver = ParSim::new(&g, ParSimConfig::default()).unwrap();
        let scores = solver.query(0).unwrap();
        // The hub's self-similarity is under-estimated because D(hub) < 1 is
        // replaced by... actually D(hub,hub)=1-c is replaced correctly only
        // for nodes with one in-neighbor; the hub has 8, so bias shows up.
        assert!(scores[0] > 0.5 && scores[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn deterministic_across_calls() {
        let g = barabasi_albert(100, 2, false, 3).unwrap();
        let solver = ParSim::new(&g, ParSimConfig::default()).unwrap();
        assert_eq!(solver.query(5).unwrap(), solver.query(5).unwrap());
    }
}
