//! Linearization: the Maehara et al. baseline with a Monte-Carlo `D`.
//!
//! Linearization answers single-source queries with the identity
//! `S·e_i = Σ_ℓ c^ℓ (P^ℓ)ᵀ D P^ℓ e_i`, exactly like ExactSim — but it obtains
//! the diagonal correction matrix `D` in a *preprocessing* phase that
//! estimates every entry `D(k,k)` to accuracy ε with `O(log n/ε²)` sampled
//! walk pairs **per node**, i.e. `O(n·log n/ε²)` total. That per-node cost is
//! the term ExactSim eliminates; in the paper's Figure 1 Linearization cannot
//! go below ε ≈ 1e-5 within the 24-hour limit for exactly this reason.
//!
//! The index is just the `n`-entry vector `D̂` (hence the characteristic
//! vertical line in the paper's index-size plots, Figure 4): queries are
//! deterministic once `D̂` is built.

use exactsim_graph::{NeighborAccess, NodeId};

use crate::config::SimRankConfig;
use crate::diagonal::{estimate_diagonal, DiagonalEstimate, DiagonalEstimator};
use crate::error::SimRankError;
use crate::exactsim::accumulate_dense;
use crate::ppr::dense_hop_vectors_into;
use crate::scratch::ScratchPool;

/// Configuration for [`Linearization`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearizationConfig {
    /// Shared SimRank parameters.
    pub simrank: SimRankConfig,
    /// Target additive error ε; controls both the per-node sample count of
    /// the preprocessing phase and the query-time iteration count.
    pub epsilon: f64,
    /// Optional cap on the *total* number of walk pairs spent estimating `D̂`
    /// (the harness uses it to keep preprocessing sweeps within a time
    /// budget; `None` reproduces the paper's counts).
    pub walk_budget: Option<u64>,
}

impl Default for LinearizationConfig {
    fn default() -> Self {
        LinearizationConfig {
            simrank: SimRankConfig::default(),
            epsilon: 1e-3,
            walk_budget: None,
        }
    }
}

/// The Linearization solver: `build` runs the `O(n·log n/ε²)` preprocessing,
/// `query` answers single-source queries deterministically.
///
/// Generic over the graph backend `G: NeighborAccess`, like every solver
/// in this crate — see [`crate::exactsim::ExactSim`].
#[derive(Clone, Debug)]
pub struct Linearization<G: NeighborAccess> {
    graph: G,
    config: LinearizationConfig,
    diagonal: Vec<f64>,
    preprocessing_walks: u64,
    pool: ScratchPool,
}

impl<G: NeighborAccess> Linearization<G> {
    /// Runs the preprocessing phase (Monte-Carlo estimation of `D̂`).
    pub fn build(graph: G, config: LinearizationConfig) -> Result<Self, SimRankError> {
        config.simrank.validate()?;
        if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
            return Err(SimRankError::InvalidParameter {
                name: "epsilon",
                message: format!("epsilon must be in (0, 1), got {}", config.epsilon),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Err(SimRankError::EmptyGraph);
        }
        let per_node = per_node_samples(n, config.epsilon);
        let mut allocation = vec![per_node; n];
        if let Some(budget) = config.walk_budget {
            let total = per_node.saturating_mul(n as u64);
            if total > budget {
                let capped = (budget / n as u64).max(1);
                allocation = vec![capped; n];
            }
        }
        let estimate: DiagonalEstimate = estimate_diagonal(
            &graph,
            &allocation,
            &DiagonalEstimator::Bernoulli,
            config.simrank.sqrt_decay(),
            0.0,
            config.simrank.seed,
            config.simrank.threads,
        );
        Ok(Linearization {
            graph,
            config,
            diagonal: estimate.values,
            preprocessing_walks: estimate.walk_pairs,
            pool: ScratchPool::new(n),
        })
    }

    /// The configuration this solver was built with.
    pub fn config(&self) -> &LinearizationConfig {
        &self.config
    }

    /// Total walk pairs simulated during preprocessing.
    pub fn preprocessing_walks(&self) -> u64 {
        self.preprocessing_walks
    }

    /// Size of the index (the stored `D̂` vector) in bytes — the quantity of
    /// the paper's Figure 4/8 for Linearization.
    pub fn index_bytes(&self) -> usize {
        self.diagonal.len() * std::mem::size_of::<f64>()
    }

    /// The estimated diagonal (exposed for the ablation benches).
    pub fn diagonal(&self) -> &[f64] {
        &self.diagonal
    }

    /// Answers a single-source query using the precomputed `D̂`.
    pub fn query(&self, source: NodeId) -> Result<Vec<f64>, SimRankError> {
        let n = self.graph.num_nodes();
        if source as usize >= n {
            return Err(SimRankError::SourceOutOfRange {
                source,
                num_nodes: n,
            });
        }
        let cfg = &self.config.simrank;
        let sqrt_c = cfg.sqrt_decay();
        let levels = cfg.iterations_for_epsilon(self.config.epsilon);
        let mut scratch = self.pool.checkout();
        dense_hop_vectors_into(
            &self.graph,
            source,
            sqrt_c,
            levels,
            cfg.threads,
            &mut scratch.dense_walk,
            &mut scratch.dense_tmp,
            &mut scratch.dense_hops,
        );
        let scores = accumulate_dense(
            &self.graph,
            &scratch.dense_hops.hops,
            &self.diagonal,
            sqrt_c,
            cfg.threads,
            &mut scratch.dense_tmp,
        );
        self.pool.give_back(scratch);
        crate::counters::add(&crate::counters::SOLVER_ITERATIONS, levels as u64);
        Ok(scores)
    }
}

/// The per-node sample count of the preprocessing phase: `⌈ln n / ε²⌉`
/// (the `O(log n/ε²)` rate the paper quotes; the constant is the standard
/// Chernoff-bound constant used by the original implementation).
fn per_node_samples(n: usize, epsilon: f64) -> u64 {
    let n = n.max(2) as f64;
    ((n.ln() / (epsilon * epsilon)).ceil()).min(9.0e18) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::max_error;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use exactsim_graph::generators::{barabasi_albert, complete, cycle};

    #[test]
    fn per_node_samples_scales_with_one_over_eps_squared() {
        let a = per_node_samples(1000, 1e-1);
        let b = per_node_samples(1000, 1e-2);
        assert!(b >= 99 * a && b <= 101 * a);
        assert!(per_node_samples(10_000, 1e-1) > a);
    }

    #[test]
    fn validates_configuration() {
        let g = complete(3);
        let bad = LinearizationConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(Linearization::build(&g, bad).is_err());
        let empty = exactsim_graph::GraphBuilder::new(0).build();
        assert!(Linearization::build(&empty, LinearizationConfig::default()).is_err());
    }

    #[test]
    fn accurate_on_small_graphs_with_loose_epsilon() {
        let g = barabasi_albert(50, 2, true, 5).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let config = LinearizationConfig {
            epsilon: 0.05,
            ..Default::default()
        };
        let solver = Linearization::build(&g, config).unwrap();
        assert!(solver.preprocessing_walks() > 0);
        for source in [0u32, 25] {
            let scores = solver.query(source).unwrap();
            let err = max_error(&scores, &truth.single_source(source));
            assert!(err <= 0.05, "source {source}: error {err}");
        }
    }

    #[test]
    fn exact_on_cycles_regardless_of_sampling() {
        // Every node has in-degree 1, where the Bernoulli estimator returns
        // the exact value 1-c without sampling, so queries are exact.
        let g = cycle(10);
        let solver = Linearization::build(&g, LinearizationConfig::default()).unwrap();
        assert_eq!(solver.preprocessing_walks(), 0);
        let scores = solver.query(0).unwrap();
        // The self-similarity misses only the c^(L+1) truncation tail.
        assert!((scores[0] - 1.0).abs() < 1e-3);
        assert!(scores[0] <= 1.0 + 1e-12);
        assert!(scores[1..].iter().all(|&s| s.abs() < 1e-9));
    }

    #[test]
    fn preprocessing_cost_scales_with_n_and_budget_caps_it() {
        let small = barabasi_albert(50, 2, false, 1).unwrap();
        let large = barabasi_albert(200, 2, false, 1).unwrap();
        let cfg = LinearizationConfig {
            epsilon: 0.2,
            ..Default::default()
        };
        let a = Linearization::build(&small, cfg).unwrap();
        let b = Linearization::build(&large, cfg).unwrap();
        // The O(n log n / ε²) preprocessing: 4x the nodes ⇒ > 3x the walks
        // (nodes with din <= 1 are free, so allow slack).
        assert!(b.preprocessing_walks() > 2 * a.preprocessing_walks());

        let capped_cfg = LinearizationConfig {
            epsilon: 0.2,
            walk_budget: Some(1_000),
            ..Default::default()
        };
        let capped = Linearization::build(&large, capped_cfg).unwrap();
        assert!(capped.preprocessing_walks() <= 1_000 + large.num_nodes() as u64);
        assert!(capped.preprocessing_walks() < b.preprocessing_walks());
    }

    #[test]
    fn index_is_one_float_per_node() {
        let g = complete(17);
        let solver = Linearization::build(
            &g,
            LinearizationConfig {
                epsilon: 0.3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(solver.index_bytes(), 17 * 8);
        assert_eq!(solver.diagonal().len(), 17);
    }

    #[test]
    fn query_checks_source_range() {
        let g = complete(5);
        let solver = Linearization::build(
            &g,
            LinearizationConfig {
                epsilon: 0.3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(solver.query(5).is_err());
    }
}
