//! Pooling: relative evaluation of top-k algorithms without ground truth.
//!
//! Pooling (Liu et al., PVLDB 2017; §2 "Pooling" of the ExactSim paper) is how
//! top-k SimRank algorithms were compared before exact single-source results
//! existed: collect the top-k answers of all participating algorithms into a
//! pool, estimate the SimRank of every pooled node with a high-accuracy
//! Monte-Carlo run (`O(ℓ·k·log n/ε²)` — affordable because the pool holds at
//! most `ℓ·k` nodes), and rank the pool by those estimates to obtain a
//! *relative* ground truth. The ExactSim paper discusses pooling's drawbacks
//! (precision values are only meaningful inside the pool; infeasible for
//! whole single-source evaluation), which this module lets the benchmark
//! harness demonstrate against the true exact results.

use exactsim_graph::{NeighborAccess, NodeId};

use crate::config::SimRankConfig;
use crate::error::SimRankError;
use crate::walks;

/// Result of a pooling evaluation.
#[derive(Clone, Debug)]
pub struct PoolingResult {
    /// The pooled candidate nodes (deduplicated union of all submitted top-k
    /// lists), with their Monte-Carlo estimated similarity to the source.
    pub pool: Vec<(NodeId, f64)>,
    /// The pool-derived "ground truth" top-k node set.
    pub reference_top_k: Vec<NodeId>,
    /// `precision[a]` is the fraction of algorithm `a`'s submitted top-k that
    /// appears in [`PoolingResult::reference_top_k`].
    pub precision: Vec<f64>,
    /// Walk pairs spent estimating the pool.
    pub walk_pairs: u64,
}

/// Configuration for [`evaluate_pool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolingConfig {
    /// Shared SimRank parameters.
    pub simrank: SimRankConfig,
    /// Walk pairs simulated per pooled candidate.
    pub walks_per_candidate: u64,
    /// Maximum walk length.
    pub walk_length: usize,
}

impl Default for PoolingConfig {
    fn default() -> Self {
        PoolingConfig {
            simrank: SimRankConfig::default(),
            walks_per_candidate: 10_000,
            walk_length: 40,
        }
    }
}

/// Pools the submitted top-k lists, estimates each pooled candidate's
/// similarity to `source` by pairing fresh √c-walks, and scores every
/// submission against the pool-derived top-k.
///
/// `submissions[a]` is algorithm `a`'s claimed top-k node list (all lists
/// should have the same length `k`, but shorter lists are tolerated).
pub fn evaluate_pool<G: NeighborAccess>(
    graph: &G,
    source: NodeId,
    submissions: &[Vec<NodeId>],
    k: usize,
    config: PoolingConfig,
) -> Result<PoolingResult, SimRankError> {
    config.simrank.validate()?;
    let n = graph.num_nodes();
    if n == 0 {
        return Err(SimRankError::EmptyGraph);
    }
    if source as usize >= n {
        return Err(SimRankError::SourceOutOfRange {
            source,
            num_nodes: n,
        });
    }
    if config.walks_per_candidate == 0 {
        return Err(SimRankError::InvalidParameter {
            name: "walks_per_candidate",
            message: "at least one walk pair per candidate is required".into(),
        });
    }

    // Union of all submissions, excluding the source, deduplicated.
    let mut pool_nodes: Vec<NodeId> = submissions
        .iter()
        .flat_map(|s| s.iter().copied())
        .filter(|&v| v != source && (v as usize) < n)
        .collect();
    pool_nodes.sort_unstable();
    pool_nodes.dedup();

    let sqrt_c = config.simrank.sqrt_decay();
    let mut walk_pairs = 0u64;
    let mut pool: Vec<(NodeId, f64)> = Vec::with_capacity(pool_nodes.len());
    for &candidate in &pool_nodes {
        let mut rng = walks::make_rng(walks::derive_seed(
            config.simrank.seed ^ source as u64,
            candidate as u64,
        ));
        let mut meets = 0u64;
        for _ in 0..config.walks_per_candidate {
            if pair_meets(
                graph,
                source,
                candidate,
                sqrt_c,
                config.walk_length,
                &mut rng,
            ) {
                meets += 1;
            }
        }
        walk_pairs += config.walks_per_candidate;
        pool.push((candidate, meets as f64 / config.walks_per_candidate as f64));
    }

    // Pool-derived reference top-k: by estimated similarity, ties by node id.
    let mut ranked = pool.clone();
    ranked.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let reference_top_k: Vec<NodeId> = ranked.iter().take(k).map(|&(v, _)| v).collect();
    let reference_set: std::collections::HashSet<NodeId> =
        reference_top_k.iter().copied().collect();

    let precision = submissions
        .iter()
        .map(|submission| {
            if reference_top_k.is_empty() {
                return 1.0;
            }
            let hits = submission
                .iter()
                .filter(|v| reference_set.contains(v))
                .count();
            hits as f64 / reference_top_k.len() as f64
        })
        .collect();

    Ok(PoolingResult {
        pool,
        reference_top_k,
        precision,
        walk_pairs,
    })
}

/// One Monte-Carlo trial for `S(source, candidate)`: do fresh √c-walks from
/// the two nodes meet?
fn pair_meets<G: NeighborAccess>(
    graph: &G,
    a: NodeId,
    b: NodeId,
    sqrt_c: f64,
    max_steps: usize,
    rng: &mut rand::rngs::SmallRng,
) -> bool {
    let mut x = a;
    let mut y = b;
    for _ in 0..max_steps {
        let nx = walks::step(graph, x, sqrt_c, rng);
        let ny = walks::step(graph, y, sqrt_c, rng);
        match (nx, ny) {
            (Some(px), Some(py)) => {
                if px == py {
                    return true;
                }
                x = px;
                y = py;
            }
            _ => return false,
        }
    }
    false
}

/// Convenience wrapper matching the paper's usage: returns only the per-
/// algorithm precision values.
pub fn pool_precisions<G: NeighborAccess>(
    graph: &G,
    source: NodeId,
    submissions: &[Vec<NodeId>],
    k: usize,
    config: PoolingConfig,
) -> Result<Vec<f64>, SimRankError> {
    Ok(evaluate_pool(graph, source, submissions, k, config)?.precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use crate::topk::top_k_nodes;
    use exactsim_graph::generators::{barabasi_albert, star};

    #[test]
    fn perfect_submission_gets_full_precision() {
        let g = barabasi_albert(40, 2, true, 3).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let exact_top = top_k_nodes(&truth.single_source(0), 0, 5);
        let garbage: Vec<NodeId> = (30..35).collect();
        let result = evaluate_pool(
            &g,
            0,
            &[exact_top.clone(), garbage],
            5,
            PoolingConfig {
                walks_per_candidate: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            result.precision[0] >= 0.8,
            "exact submission scored {}",
            result.precision[0]
        );
        assert!(
            result.precision[0] >= result.precision[1],
            "exact submission must not lose to garbage"
        );
        assert_eq!(
            result.pool.len(),
            result
                .pool
                .iter()
                .map(|&(v, _)| v)
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }

    #[test]
    fn pooled_estimates_are_probabilities() {
        let g = barabasi_albert(30, 2, true, 7).unwrap();
        let result = evaluate_pool(
            &g,
            1,
            &[vec![2, 3, 4], vec![5, 6, 7]],
            3,
            PoolingConfig {
                walks_per_candidate: 500,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.pool.len(), 6);
        for &(_, s) in &result.pool {
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(result.walk_pairs, 6 * 500);
        assert_eq!(result.reference_top_k.len(), 3);
    }

    #[test]
    fn source_and_out_of_range_nodes_are_excluded_from_the_pool() {
        let g = star(6, true);
        let result = evaluate_pool(
            &g,
            0,
            &[vec![0, 1, 99], vec![2]],
            2,
            PoolingConfig {
                walks_per_candidate: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let pooled: Vec<NodeId> = result.pool.iter().map(|&(v, _)| v).collect();
        assert!(!pooled.contains(&0));
        assert!(!pooled.contains(&99));
        assert_eq!(pooled, vec![1, 2]);
    }

    #[test]
    fn pooling_blind_spot_is_observable() {
        // The paper's §2 criticism: an algorithm can reach 100% pool precision
        // while missing the real top-k, because the pool only contains what
        // the participants submitted. Submit two copies of the same wrong
        // list and watch them both score 1.0.
        let g = barabasi_albert(40, 2, true, 11).unwrap();
        let wrong: Vec<NodeId> = vec![30, 31, 32];
        let result = evaluate_pool(
            &g,
            0,
            &[wrong.clone(), wrong],
            3,
            PoolingConfig {
                walks_per_candidate: 200,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.precision, vec![1.0, 1.0]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = star(4, true);
        assert!(evaluate_pool(&g, 9, &[], 3, PoolingConfig::default()).is_err());
        let empty = exactsim_graph::GraphBuilder::new(0).build();
        assert!(evaluate_pool(&empty, 0, &[], 3, PoolingConfig::default()).is_err());
        let bad = PoolingConfig {
            walks_per_candidate: 0,
            ..Default::default()
        };
        assert!(evaluate_pool(&g, 0, &[vec![1]], 1, bad).is_err());
    }
}
