//! Reusable per-query workspaces for the single-source kernels.
//!
//! The paper's pitch is that exact single-source SimRank is *feasible at
//! scale*; feasibility dies first in the allocator. Before this module, every
//! query allocated fresh hop vectors, a fresh `Workspace`, a fresh allocation
//! vector, and — worst of all — the diagonal exploration (Algorithm 3) built
//! a forest of `BTreeMap`s per node. [`Scratch`] owns all of that state once,
//! and the kernels in [`crate::ppr`], [`crate::diagonal`] and
//! [`crate::exactsim`] thread it through, so a steady-state query performs no
//! accumulator allocation at all.
//!
//! ## Determinism
//!
//! Replacing ordered maps with dense accumulators must not change a single
//! output bit (the PR-1 regression test pins this): every accumulator here is
//! an epoch-stamped dense array whose touched indices are **drained in sorted
//! order**, so float reductions happen in exactly the ascending-index order
//! the `BTreeMap`s used to give. `tests/properties.rs` checks the rewritten
//! kernels against a verbatim port of the seed-era implementation.
//!
//! ## Concurrency
//!
//! A `Scratch` is single-threaded state. Solvers own a [`ScratchPool`] —
//! a lock-protected stack of scratches — so concurrent queries through one
//! shared solver (the `exactsim-service` pattern) each check out their own
//! workspace and return it when done; the pool grows to the peak concurrency
//! and then stops allocating.

use std::sync::Mutex;

use exactsim_graph::linalg::{SparseVec, Workspace};
use exactsim_graph::NodeId;

use crate::ppr::{DenseHopVectors, SparseHopVectors};

/// The reusable workspace one single-source query threads through every
/// kernel it touches. Create one per worker thread (or use a
/// [`ScratchPool`]) and reuse it across queries; all buffers are grown on
/// first use and retained.
#[derive(Debug)]
pub struct Scratch {
    n: usize,
    /// Sparse-accumulator workspace for hop-vector pushes and PRSim queries.
    pub(crate) ws: Workspace,
    /// Ping-pong buffers for the sparse walk distribution.
    pub(crate) walk: SparseVec,
    pub(crate) walk_tmp: SparseVec,
    /// Entry buffer for aggregate-vector builds (`rebuild_from_unsorted`).
    pub(crate) entries: Vec<(NodeId, f64)>,
    /// Reused pruned hop vectors (optimized variant, PRSim queries).
    pub(crate) sparse_hops: SparseHopVectors,
    /// Reused dense hop vectors (basic variant, ParSim, Linearization).
    pub(crate) dense_hops: DenseHopVectors,
    /// Dense walk-distribution buffer (basic variant).
    pub(crate) dense_walk: Vec<f64>,
    /// Dense temporary for the Linearization recurrence ping-pong.
    pub(crate) dense_tmp: Vec<f64>,
    /// Per-node walk-pair allocation `R(k)`.
    pub(crate) allocation: Vec<u64>,
    /// Per-shard diagonal-exploration scratches, grown to the thread count.
    pub(crate) diag: Vec<DiagonalScratch>,
}

impl Scratch {
    /// Creates a workspace for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Scratch {
            n,
            ws: Workspace::new(n),
            walk: SparseVec::new(),
            walk_tmp: SparseVec::new(),
            entries: Vec::new(),
            sparse_hops: SparseHopVectors::default(),
            dense_hops: DenseHopVectors::default(),
            dense_walk: Vec::new(),
            dense_tmp: Vec::new(),
            allocation: Vec::new(),
            diag: Vec::new(),
        }
    }

    /// Number of nodes this workspace supports.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
}

/// A lock-protected stack of [`Scratch`]es sized for one graph.
///
/// Checking out pops a scratch (or builds one on first use at this
/// concurrency level); returning pushes it back. Steady-state query traffic
/// therefore allocates nothing, while concurrent callers never contend on a
/// single workspace. Cloning a pool (solvers derive `Clone`) yields a fresh
/// empty pool for the same `n` — scratches hold no result state, so this is
/// purely a warm-up concern.
pub struct ScratchPool {
    n: usize,
    pool: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    /// Creates an empty pool for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        ScratchPool {
            n,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pops a scratch, creating one if the pool is empty.
    pub fn checkout(&self) -> Scratch {
        let pooled = self.pool.lock().expect("scratch pool poisoned").pop();
        match pooled {
            Some(scratch) => {
                crate::counters::inc(&crate::counters::SCRATCH_POOL_HITS);
                scratch
            }
            None => {
                crate::counters::inc(&crate::counters::SCRATCH_POOL_MISSES);
                Scratch::new(self.n)
            }
        }
    }

    /// Returns a scratch to the pool for reuse.
    pub fn give_back(&self, scratch: Scratch) {
        debug_assert_eq!(scratch.num_nodes(), self.n);
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// Number of idle scratches currently pooled (diagnostics).
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("scratch pool poisoned").len()
    }
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        ScratchPool::new(self.n)
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("n", &self.n)
            .field("idle", &self.idle())
            .finish()
    }
}

/// Scratch state for one shard of the diagonal estimation (Algorithm 3):
/// the dense replacements for the seed-era `BTreeMap` accumulators.
#[derive(Debug)]
pub struct DiagonalScratch {
    /// Workspace for the sparse walk-distribution pushes.
    pub(crate) ws: Workspace,
    /// Accumulator for the first-meeting level masses `Z_ℓ(k, ·)`.
    pub(crate) z: Workspace,
    /// Pooled per-level `Z_t` vectors; `z_len` of them are live per node run.
    pub(crate) z_levels: Vec<SparseVec>,
    /// Lazily reset per-node walk-distribution table.
    pub(crate) dist: DistTable,
}

impl DiagonalScratch {
    /// Creates a per-shard scratch for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        DiagonalScratch {
            ws: Workspace::new(n),
            z: Workspace::new(n),
            z_levels: Vec::new(),
            dist: DistTable::new(n),
        }
    }

    /// Number of nodes this scratch supports (the `n` it was created for).
    pub fn num_nodes(&self) -> usize {
        self.ws.len()
    }
}

/// The lazily-grown walk-distribution table of Algorithm 3:
/// `slot(q).levels[t] = P^t · e_q` for every node `q` the exploration has
/// visited while processing the current node.
///
/// Slots are epoch-stamped so starting the next node's exploration is `O(1)`;
/// the per-slot `Vec<SparseVec>` storage (including every inner vector's
/// capacity) is retained and refilled, which is what makes the exploration
/// allocation-free in steady state.
#[derive(Debug)]
pub struct DistTable {
    slots: Vec<DistSlot>,
    stamp: Vec<u32>,
    epoch: u32,
}

#[derive(Debug, Default)]
pub(crate) struct DistSlot {
    levels: Vec<SparseVec>,
    /// Number of live levels (≤ `levels.len()`; the rest are retained spares).
    len: usize,
}

impl DistTable {
    fn new(n: usize) -> Self {
        DistTable {
            slots: Vec::new(),
            stamp: vec![0; n],
            epoch: 0,
            // `slots` is grown lazily on first touch of each node so that a
            // DistTable for a large graph costs no upfront per-node Vecs.
        }
    }

    /// Starts a fresh per-node exploration: every slot becomes logically
    /// empty without touching its storage.
    pub(crate) fn begin_node(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, DistSlot::default);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// The slot for `q`, logically reset to "level 0 = e_q" on first touch
    /// this epoch.
    pub(crate) fn slot_mut(&mut self, q: NodeId) -> &mut DistSlot {
        let idx = q as usize;
        let slot = &mut self.slots[idx];
        if self.stamp[idx] != self.epoch {
            self.stamp[idx] = self.epoch;
            slot.len = 0;
        }
        slot
    }
}

impl DistSlot {
    /// The live level-`t` distribution (`t < self.len`).
    pub(crate) fn level(&self, t: usize) -> &SparseVec {
        debug_assert!(t < self.len);
        &self.levels[t]
    }

    /// Number of live levels.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Initialises level 0 to the unit vector `e_q` if the slot is empty.
    pub(crate) fn ensure_unit(&mut self, q: NodeId) {
        if self.len > 0 {
            return;
        }
        if self.levels.is_empty() {
            self.levels.push(SparseVec::unit(q, 1.0));
        } else {
            self.levels[0].clear();
            self.levels[0].push_sorted(q, 1.0);
        }
        self.len = 1;
    }

    /// Appends one more level by applying `P` to the newest live level.
    /// Returns the (previous-top, new-top) pair of slices split mutably so
    /// the caller's multiply can read one and write the other.
    pub(crate) fn split_for_extend(&mut self) -> (&SparseVec, &mut SparseVec) {
        debug_assert!(self.len > 0, "ensure_unit first");
        if self.levels.len() == self.len {
            self.levels.push(SparseVec::new());
        }
        let (head, tail) = self.levels.split_at_mut(self.len);
        let src = &head[self.len - 1];
        let dst = &mut tail[0];
        self.len += 1;
        (src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_scratches() {
        let pool = ScratchPool::new(16);
        assert_eq!(pool.idle(), 0);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.give_back(a);
        pool.give_back(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.idle(), 1);
        // Clones share nothing and start empty.
        assert_eq!(pool.clone().idle(), 0);
    }

    #[test]
    fn dist_table_resets_logically_between_nodes() {
        let mut table = DistTable::new(8);
        table.begin_node(8);
        let slot = table.slot_mut(3);
        slot.ensure_unit(3);
        {
            let (src, dst) = slot.split_for_extend();
            assert_eq!(src.indices(), &[3]);
            dst.clear();
            dst.push_sorted(5, 1.0);
        }
        assert_eq!(slot.len(), 2);
        assert_eq!(slot.level(1).indices(), &[5]);

        // Next node: the same slot is logically empty again, and level 0 is
        // rebuilt in the retained storage.
        table.begin_node(8);
        let slot = table.slot_mut(3);
        assert_eq!(slot.len, 0);
        slot.ensure_unit(3);
        assert_eq!(slot.len(), 1);
        assert_eq!(slot.level(0).indices(), &[3]);
        assert_eq!(slot.level(0).values(), &[1.0]);
    }
}
