//! Shared SimRank configuration.

use crate::error::SimRankError;

/// Parameters shared by every SimRank algorithm in this crate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimRankConfig {
    /// The decay factor `c` of the SimRank definition (the paper uses 0.6 in
    /// all experiments; 0.6 and 0.8 are the values common in the literature).
    pub decay: f64,
    /// Seed for every randomized component. Identical seeds reproduce
    /// identical results regardless of thread count.
    pub seed: u64,
    /// Number of worker threads for the parallelizable stages (√c-walk
    /// sampling and matrix-vector products). `1` means fully sequential,
    /// which is the mode the paper uses for its comparisons.
    pub threads: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        SimRankConfig {
            decay: 0.6,
            seed: 0x5EED_5EED,
            threads: 1,
        }
    }
}

impl SimRankConfig {
    /// Creates a configuration with the given decay factor and defaults for
    /// the rest.
    pub fn with_decay(decay: f64) -> Self {
        SimRankConfig {
            decay,
            ..Default::default()
        }
    }

    /// `√c`, the per-step continuation probability of a √c-walk.
    #[inline]
    pub fn sqrt_decay(&self) -> f64 {
        self.decay.sqrt()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimRankError> {
        if !(self.decay > 0.0 && self.decay < 1.0) {
            return Err(SimRankError::InvalidParameter {
                name: "decay",
                message: format!("decay factor must be in (0, 1), got {}", self.decay),
            });
        }
        if self.threads == 0 {
            return Err(SimRankError::InvalidParameter {
                name: "threads",
                message: "thread count must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// The number of Linearization iterations needed for truncation error at
    /// most `eps`: `L = ⌈log_{1/c}(2/eps)⌉` (Algorithm 1, line 1).
    pub fn iterations_for_epsilon(&self, eps: f64) -> usize {
        assert!(eps > 0.0, "epsilon must be positive");
        let l = (2.0 / eps).ln() / (1.0 / self.decay).ln();
        l.ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let cfg = SimRankConfig::default();
        assert_eq!(cfg.decay, 0.6);
        assert_eq!(cfg.threads, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn sqrt_decay_is_consistent() {
        let cfg = SimRankConfig::with_decay(0.64);
        assert!((cfg.sqrt_decay() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_decay() {
        assert!(SimRankConfig::with_decay(0.0).validate().is_err());
        assert!(SimRankConfig::with_decay(1.0).validate().is_err());
        assert!(SimRankConfig::with_decay(-0.5).validate().is_err());
        assert!(SimRankConfig::with_decay(1.5).validate().is_err());
    }

    #[test]
    fn rejects_zero_threads() {
        let cfg = SimRankConfig {
            threads: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn iteration_count_guarantees_truncation_error() {
        let cfg = SimRankConfig::with_decay(0.6);
        for &eps in &[1e-1, 1e-3, 1e-5, 1e-7] {
            let l = cfg.iterations_for_epsilon(eps);
            // c^L <= eps / 2 must hold.
            assert!(
                cfg.decay.powi(l as i32) <= eps / 2.0 * (1.0 + 1e-12),
                "L = {l} too small for eps = {eps}"
            );
            // And L should not be absurdly larger than needed.
            assert!(cfg.decay.powi(l as i32 - 2) > eps / 2.0);
        }
    }

    #[test]
    fn seven_decimal_precision_needs_about_33_iterations() {
        // Sanity check against the paper's remark that log_{1/c}(1e7) <= 73
        // for c in [0.6, 0.8]; with c = 0.6 it is ~33.
        let cfg = SimRankConfig::with_decay(0.6);
        let l = cfg.iterations_for_epsilon(1e-7);
        assert!((30..=40).contains(&l), "unexpected L = {l}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn iterations_for_zero_epsilon_panics() {
        SimRankConfig::default().iterations_for_epsilon(0.0);
    }
}
