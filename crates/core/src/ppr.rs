//! ℓ-hop Personalized PageRank vectors.
//!
//! The paper works with the vectors `π^ℓ_i = (1 − √c)·(√c·P)^ℓ·e_i`
//! (Table 1): `π^ℓ_i(k)` is the probability that a √c-walk from `v_i` stops at
//! `v_k` after exactly `ℓ` steps, and `π_i = Σ_ℓ π^ℓ_i` is the (√c-decayed)
//! Personalized PageRank vector of `v_i`. ExactSim's Algorithm 1 computes
//! these vectors for `ℓ = 0..L`; the sparse-Linearization optimisation (§3.2)
//! stores them pruned at `(1 − √c)²·ε`, which bounds their total size by
//! `O(1/ε)` independent of the graph size (Lemma 2).
//!
//! Note that mass can *leak*: a walk that reaches a node with no in-neighbors
//! stops there prematurely, so `Σ_ℓ ‖π^ℓ_i‖₁ ≤ 1` with equality only when no
//! walk from `v_i` can get stuck.

use exactsim_graph::linalg::{p_multiply_sparse_into, SparseVec, Workspace};
use exactsim_graph::{NeighborAccess, NodeId};

use crate::parallel::p_multiply_threaded;

/// The ℓ-hop Personalized PageRank vectors of one source node, in dense form.
#[derive(Clone, Debug, Default)]
pub struct DenseHopVectors {
    /// `hops[ℓ]` is the dense vector `π^ℓ_i` (length `n`).
    pub hops: Vec<Vec<f64>>,
    /// The aggregated vector `π_i = Σ_ℓ π^ℓ_i`.
    pub aggregate: Vec<f64>,
}

impl DenseHopVectors {
    /// Number of levels stored (`L + 1`, including level 0).
    pub fn num_levels(&self) -> usize {
        self.hops.len()
    }

    /// `‖π_i‖²`, the quantity that drives the Lemma 3 sampling optimisation.
    pub fn aggregate_l2_norm_sq(&self) -> f64 {
        self.aggregate.iter().map(|v| v * v).sum()
    }

    /// Approximate heap footprint in bytes (Table 3 accounting).
    pub fn memory_bytes(&self) -> usize {
        let per_vec = |v: &Vec<f64>| v.len() * std::mem::size_of::<f64>();
        self.hops.iter().map(per_vec).sum::<usize>() + per_vec(&self.aggregate)
    }
}

/// Computes `π^ℓ_i` for `ℓ = 0..=levels` densely (Algorithm 1, lines 2–5).
pub fn dense_hop_vectors<G: NeighborAccess>(
    graph: &G,
    source: NodeId,
    sqrt_c: f64,
    levels: usize,
) -> DenseHopVectors {
    let mut out = DenseHopVectors::default();
    let mut walk = Vec::new();
    let mut tmp = Vec::new();
    dense_hop_vectors_into(
        graph, source, sqrt_c, levels, 1, &mut walk, &mut tmp, &mut out,
    );
    out
}

/// [`dense_hop_vectors`] into caller-owned storage: `out`'s per-level vectors
/// and the two dense walk buffers are reused across calls, and the `P`
/// multiplies are sharded over `threads` workers (bit-identical for any
/// thread count — see [`crate::parallel::p_multiply_threaded`]).
#[allow(clippy::too_many_arguments)]
pub fn dense_hop_vectors_into<G: NeighborAccess>(
    graph: &G,
    source: NodeId,
    sqrt_c: f64,
    levels: usize,
    threads: usize,
    walk: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
    out: &mut DenseHopVectors,
) {
    let n = graph.num_nodes();
    let stop = 1.0 - sqrt_c;
    out.hops.truncate(levels + 1);
    while out.hops.len() < levels + 1 {
        out.hops.push(Vec::new());
    }
    out.aggregate.clear();
    out.aggregate.resize(n, 0.0);

    // `walk` holds (√c·P)^ℓ · e_i  (the *surviving* walk distribution).
    walk.clear();
    walk.resize(n, 0.0);
    walk[source as usize] = 1.0;
    tmp.clear();
    tmp.resize(n, 0.0);

    for level in 0..=levels {
        let hop = &mut out.hops[level];
        hop.clear();
        hop.extend(walk.iter().map(|&v| v * stop));
        for (agg, h) in out.aggregate.iter_mut().zip(hop.iter()) {
            *agg += h;
        }
        if level == levels {
            break;
        }
        // Advance: walk ← √c · P · walk.
        p_multiply_threaded(graph, walk, tmp, threads);
        for v in tmp.iter_mut() {
            *v *= sqrt_c;
        }
        std::mem::swap(walk, tmp);
    }
}

/// The ℓ-hop Personalized PageRank vectors of one source node, in sparse form
/// with pruning — the data structure of the *sparse Linearization* (§3.2).
#[derive(Clone, Debug, Default)]
pub struct SparseHopVectors {
    /// `hops[ℓ]` is the pruned sparse vector `π^ℓ_i`.
    pub hops: Vec<SparseVec>,
    /// The aggregated (pruned) vector `π_i = Σ_ℓ π^ℓ_i`.
    pub aggregate: SparseVec,
    /// Total *surviving-walk* probability mass dropped by pruning across all
    /// levels. Dropped walk mass can never reappear, so the L1 deviation of
    /// the stored hop vectors from their unpruned counterparts is bounded by
    /// this value. (Lemma 2 of the paper converts the pruning threshold into
    /// an additive error of ε on the final SimRank result; this field tracks
    /// the actually dropped mass for diagnostics, which is usually far
    /// smaller.)
    pub pruned_mass: f64,
}

impl SparseHopVectors {
    /// Number of levels stored (`L + 1`, including level 0).
    pub fn num_levels(&self) -> usize {
        self.hops.len()
    }

    /// Total number of stored non-zeros over all levels.
    pub fn total_nnz(&self) -> usize {
        self.hops.iter().map(SparseVec::nnz).sum()
    }

    /// `‖π_i‖²` over the stored (pruned) aggregate vector.
    pub fn aggregate_l2_norm_sq(&self) -> f64 {
        self.aggregate.l2_norm_sq()
    }

    /// Approximate heap footprint in bytes (Table 3 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.hops.iter().map(SparseVec::memory_bytes).sum::<usize>() + self.aggregate.memory_bytes()
    }
}

/// Computes pruned sparse ℓ-hop vectors: every entry of every `π^ℓ_i` below
/// `threshold` is dropped right after it is produced, so intermediate vectors
/// never grow beyond `O(1/threshold)` entries.
pub fn sparse_hop_vectors<G: NeighborAccess>(
    graph: &G,
    source: NodeId,
    sqrt_c: f64,
    levels: usize,
    threshold: f64,
    workspace: &mut Workspace,
) -> SparseHopVectors {
    let mut out = SparseHopVectors::default();
    let mut walk = SparseVec::new();
    let mut walk_tmp = SparseVec::new();
    let mut entries = Vec::new();
    sparse_hop_vectors_into(
        graph,
        source,
        sqrt_c,
        levels,
        threshold,
        workspace,
        &mut walk,
        &mut walk_tmp,
        &mut entries,
        &mut out,
    );
    out
}

/// [`sparse_hop_vectors`] into caller-owned storage: the per-level vectors of
/// `out`, the two ping-pong walk buffers, and the aggregate entry buffer are
/// all reused across calls, so a steady-state query allocates nothing here.
#[allow(clippy::too_many_arguments)]
pub fn sparse_hop_vectors_into<G: NeighborAccess>(
    graph: &G,
    source: NodeId,
    sqrt_c: f64,
    levels: usize,
    threshold: f64,
    workspace: &mut Workspace,
    walk: &mut SparseVec,
    walk_tmp: &mut SparseVec,
    entries: &mut Vec<(NodeId, f64)>,
    out: &mut SparseHopVectors,
) {
    let stop = 1.0 - sqrt_c;
    out.hops.truncate(levels + 1);
    while out.hops.len() < levels + 1 {
        out.hops.push(SparseVec::new());
    }
    out.pruned_mass = 0.0;

    // Surviving walk distribution (√c·P)^ℓ·e_i, kept sparse. Pruning is done
    // on the *hop* scale (entries of π^ℓ = stop · walk_dist), so the walk
    // distribution is pruned at threshold / stop.
    let walk_threshold = if stop > 0.0 {
        threshold / stop
    } else {
        threshold
    };
    walk.clear();
    walk.push_sorted(source, 1.0);
    entries.clear();

    for level in 0..=levels {
        let hop = &mut out.hops[level];
        hop.assign_scaled(walk, stop);
        for (k, v) in hop.iter() {
            entries.push((k, v));
        }
        if level == levels {
            break;
        }
        p_multiply_sparse_into(graph, walk, workspace, walk_tmp);
        walk_tmp.scale(sqrt_c);
        out.pruned_mass += walk_tmp.prune(walk_threshold);
        std::mem::swap(walk, walk_tmp);
        if walk.is_empty() {
            // All remaining mass leaked or was pruned; later levels are zero.
            for later in out.hops.iter_mut().skip(level + 1) {
                later.clear();
            }
            break;
        }
    }
    out.aggregate.rebuild_from_unsorted(entries);
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::{barabasi_albert, cycle, star};

    const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)

    #[test]
    fn level_zero_is_the_scaled_unit_vector() {
        let g = cycle(5);
        let hv = dense_hop_vectors(&g, 2, SQRT_C, 3);
        assert!((hv.hops[0][2] - (1.0 - SQRT_C)).abs() < 1e-12);
        assert!(hv.hops[0].iter().sum::<f64>() - (1.0 - SQRT_C) < 1e-12);
    }

    #[test]
    fn hop_masses_decay_geometrically_on_a_cycle() {
        // On a cycle no walk ever gets stuck, so ‖π^ℓ‖₁ = (1-√c)·(√c)^ℓ exactly.
        let g = cycle(7);
        let hv = dense_hop_vectors(&g, 0, SQRT_C, 10);
        for (level, hop) in hv.hops.iter().enumerate() {
            let mass: f64 = hop.iter().sum();
            let expected = (1.0 - SQRT_C) * SQRT_C.powi(level as i32);
            assert!(
                (mass - expected).abs() < 1e-12,
                "level {level}: mass {mass} vs {expected}"
            );
        }
    }

    #[test]
    fn aggregate_sums_levels_and_total_mass_at_most_one() {
        let g = barabasi_albert(200, 3, true, 5).unwrap();
        let hv = dense_hop_vectors(&g, 10, SQRT_C, 30);
        let total: f64 = hv.aggregate.iter().sum();
        assert!(total <= 1.0 + 1e-9, "aggregate mass {total} exceeds 1");
        assert!(total > 0.5, "aggregate mass {total} suspiciously small");
        // Aggregate equals the element-wise sum of the hop vectors.
        let n = g.num_nodes();
        for k in 0..n {
            let summed: f64 = hv.hops.iter().map(|h| h[k]).sum();
            assert!((summed - hv.aggregate[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn walks_from_a_source_node_stop_immediately() {
        // Leaves of the directed star have no in-neighbors: all mass stays at
        // level 0 and every later level is zero.
        let g = star(6, false);
        let hv = dense_hop_vectors(&g, 3, SQRT_C, 5);
        assert!((hv.hops[0][3] - (1.0 - SQRT_C)).abs() < 1e-12);
        for level in 1..=5 {
            assert!(hv.hops[level].iter().all(|&v| v == 0.0));
        }
        // Mass 1 - √c of the walk survives step 0 but leaks (the walk is
        // stuck), so the aggregate only holds the level-0 mass.
        let total: f64 = hv.aggregate.iter().sum();
        assert!((total - (1.0 - SQRT_C)).abs() < 1e-12);
    }

    #[test]
    fn sparse_without_pruning_matches_dense() {
        let g = barabasi_albert(150, 3, false, 8).unwrap();
        let mut ws = Workspace::new(g.num_nodes());
        for source in [0u32, 7, 149] {
            let dense = dense_hop_vectors(&g, source, SQRT_C, 12);
            let sparse = sparse_hop_vectors(&g, source, SQRT_C, 12, 0.0, &mut ws);
            assert_eq!(sparse.pruned_mass, 0.0);
            for level in 0..=12 {
                let expanded = sparse.hops[level].to_dense(g.num_nodes());
                for (k, (&a, &b)) in expanded.iter().zip(dense.hops[level].iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "source {source} level {level} node {k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_bounds_nnz_and_tracks_dropped_mass() {
        let g = barabasi_albert(400, 3, true, 4).unwrap();
        let mut ws = Workspace::new(g.num_nodes());
        let threshold = 1e-3;
        let sparse = sparse_hop_vectors(&g, 0, SQRT_C, 20, threshold, &mut ws);
        let unpruned = sparse_hop_vectors(&g, 0, SQRT_C, 20, 0.0, &mut ws);
        assert!(sparse.total_nnz() < unpruned.total_nnz());
        assert!(sparse.pruned_mass >= 0.0);
        // The dropped surviving-walk mass can never exceed the total walk mass.
        assert!(sparse.pruned_mass <= 1.0);
        // Pigeonhole bound from Lemma 2: each stored hop entry is > threshold
        // only after the stop-factor scaling, and their total mass is ≤ 1.
        assert!(
            (sparse.total_nnz() as f64) <= 1.0 / threshold + (20 + 1) as f64,
            "nnz {} exceeds the pigeonhole bound",
            sparse.total_nnz()
        );
    }

    #[test]
    fn pruning_only_removes_mass_and_the_loss_is_accounted_for() {
        let g = barabasi_albert(300, 2, false, 13).unwrap();
        let mut ws = Workspace::new(g.num_nodes());
        let threshold = 1e-4;
        let levels = 15;
        let dense = dense_hop_vectors(&g, 5, SQRT_C, levels);
        let sparse = sparse_hop_vectors(&g, 5, SQRT_C, levels, threshold, &mut ws);
        let sparse_agg = sparse.aggregate.to_dense(g.num_nodes());
        // Pruning never adds mass anywhere.
        for (k, (s, d)) in sparse_agg.iter().zip(&dense.aggregate).enumerate() {
            assert!(s <= &(d + 1e-12), "node {k}: sparse {s} exceeds dense {d}");
        }
        // The total mass lost by the aggregate is bounded by the dropped
        // surviving-walk mass (each dropped walk unit contributes at most one
        // unit of hop mass over its remaining lifetime).
        let dense_total: f64 = dense.aggregate.iter().sum();
        let sparse_total: f64 = sparse_agg.iter().sum();
        assert!(dense_total - sparse_total <= sparse.pruned_mass + 1e-12);
        assert!(sparse.pruned_mass <= 1.0);
    }

    #[test]
    fn memory_accounting_is_consistent() {
        let g = cycle(50);
        let dense = dense_hop_vectors(&g, 0, SQRT_C, 5);
        assert_eq!(
            dense.memory_bytes(),
            (5 + 1 + 1) * 50 * std::mem::size_of::<f64>()
        );
        let mut ws = Workspace::new(50);
        let sparse = sparse_hop_vectors(&g, 0, SQRT_C, 5, 0.0, &mut ws);
        assert!(sparse.memory_bytes() < dense.memory_bytes());
    }

    #[test]
    fn norm_squared_matches_between_representations() {
        let g = barabasi_albert(120, 2, true, 21).unwrap();
        let mut ws = Workspace::new(g.num_nodes());
        let dense = dense_hop_vectors(&g, 3, SQRT_C, 15);
        let sparse = sparse_hop_vectors(&g, 3, SQRT_C, 15, 0.0, &mut ws);
        assert!((dense.aggregate_l2_norm_sq() - sparse.aggregate_l2_norm_sq()).abs() < 1e-10);
    }
}
