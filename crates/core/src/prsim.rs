//! PRSim-style index-based single-source SimRank.
//!
//! PRSim (Wei et al., SIGMOD 2019) rewrites SimRank as
//!
//! ```text
//! S(i, j) = 1/(1−√c)² · Σ_ℓ Σ_k π^ℓ_i(k) · π^ℓ_j(k) · D(k,k)        (eq. 7)
//! ```
//!
//! and precomputes the ℓ-hop Personalized PageRank values `π^ℓ_j(k)` for a
//! set of *hub* nodes `k`, together with an estimate of `D`. Queries combine
//! the source's own hop vectors with the indexed columns.
//!
//! ## Faithfulness of this implementation
//!
//! The authors' PRSim additionally samples the non-indexed part with a probe
//! algorithm; re-implementing that machinery is out of scope for a baseline,
//! so this implementation (documented in DESIGN.md) indexes the columns of
//! *every* node `k` reachable within the level horizon, pruned at
//! `(1−√c)·ε` — i.e. it behaves like PRSim with a hub fraction of 1. The two
//! properties the paper's comparison relies on are preserved:
//!
//! * index time and size grow as the error parameter ε shrinks (the `1/ε`
//!   pruning plus the `O(log n/ε²)` walk-based estimate of `D`);
//! * query error tracks ε, and queries are fast because they only touch the
//!   index entries the source's hop vectors overlap with.

use exactsim_graph::linalg::Workspace;
use exactsim_graph::{NeighborAccess, NodeId};

use crate::config::SimRankConfig;
use crate::diagonal::{estimate_diagonal, DiagonalEstimator};
use crate::error::SimRankError;
use crate::ppr::{sparse_hop_vectors, sparse_hop_vectors_into};
use crate::scratch::ScratchPool;

/// Configuration for [`PrSim`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrSimConfig {
    /// Shared SimRank parameters.
    pub simrank: SimRankConfig,
    /// Error parameter ε shared by the index (pruning threshold, `D` sample
    /// count) and the query (level horizon).
    pub epsilon: f64,
    /// Optional cap on the walk pairs spent estimating `D̂` during indexing.
    pub walk_budget: Option<u64>,
    /// Optional cap on the number of stored index entries; when the pruned
    /// columns would exceed it, the pruning threshold is raised until they
    /// fit (the paper instead omits configurations that exceed memory).
    pub max_index_entries: Option<usize>,
}

impl Default for PrSimConfig {
    fn default() -> Self {
        PrSimConfig {
            simrank: SimRankConfig::default(),
            epsilon: 1e-2,
            walk_budget: None,
            max_index_entries: Some(50_000_000),
        }
    }
}

impl PrSimConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimRankError> {
        self.simrank.validate()?;
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(SimRankError::InvalidParameter {
                name: "epsilon",
                message: format!("epsilon must be in (0, 1), got {}", self.epsilon),
            });
        }
        Ok(())
    }
}

/// One level's inverted index: target node `k` → all `(j, π^ℓ_j(k))` entries.
type ColumnMap = std::collections::HashMap<NodeId, Vec<IndexEntry>>;

/// One stored index entry: node `j` has `π^ℓ_j(k) = value` for the `(ℓ, k)`
/// bucket the entry is filed under.
#[derive(Clone, Copy, Debug, PartialEq)]
struct IndexEntry {
    j: NodeId,
    value: f64,
}

/// The PRSim index.
///
/// Generic over the graph backend `G: NeighborAccess`, like every solver
/// in this crate — see [`crate::exactsim::ExactSim`].
#[derive(Clone, Debug)]
pub struct PrSim<G: NeighborAccess> {
    graph: G,
    config: PrSimConfig,
    levels: usize,
    /// `columns[ℓ]` maps a target node `k` to the list of `(j, π^ℓ_j(k))`
    /// entries — the inverted form of all nodes' hop vectors at level ℓ.
    columns: Vec<ColumnMap>,
    diagonal: Vec<f64>,
    preprocessing_walks: u64,
    index_entries: usize,
    pool: ScratchPool,
}

impl<G: NeighborAccess> PrSim<G> {
    /// Builds the index: inverted pruned hop columns plus the `D̂` estimate.
    pub fn build(graph: G, config: PrSimConfig) -> Result<Self, SimRankError> {
        config.validate()?;
        let g = &graph;
        let n = g.num_nodes();
        if n == 0 {
            return Err(SimRankError::EmptyGraph);
        }
        let sqrt_c = config.simrank.sqrt_decay();
        let levels = config.simrank.iterations_for_epsilon(config.epsilon);
        let mut prune = (1.0 - sqrt_c) * config.epsilon;

        // Build the inverted columns, raising the pruning threshold if an
        // index-entry cap is configured and exceeded (construction aborts as
        // soon as the cap is hit, so each retry wastes at most `cap` entries).
        let (columns, index_entries) = loop {
            match build_columns(g, sqrt_c, levels, prune, config.max_index_entries) {
                Some(built) => break built,
                None => prune *= 2.0,
            }
        };

        // Estimate D with a total of ⌈ln n/ε²⌉ walk pairs distributed by
        // PageRank (PRSim couples the D estimate to the index in the same
        // spirit; the allocation by global importance is the simplification).
        let pagerank = exactsim_graph::analysis::pagerank(
            g,
            exactsim_graph::analysis::PageRankConfig::default(),
        );
        let total_walks = {
            let raw = ((n.max(2) as f64).ln() / (config.epsilon * config.epsilon)).ceil();
            let raw = raw.min(9.0e18) as u64;
            config.walk_budget.map_or(raw, |b| raw.min(b))
        };
        let allocation: Vec<u64> = pagerank
            .iter()
            .map(|&p| ((total_walks as f64) * p).ceil() as u64)
            .collect();
        let diag = estimate_diagonal(
            g,
            &allocation,
            &DiagonalEstimator::Bernoulli,
            sqrt_c,
            0.0,
            config.simrank.seed ^ 0x9E37,
            config.simrank.threads,
        );

        Ok(PrSim {
            graph,
            config,
            levels,
            columns,
            diagonal: diag.values,
            preprocessing_walks: diag.walk_pairs,
            index_entries,
            pool: ScratchPool::new(n),
        })
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &PrSimConfig {
        &self.config
    }

    /// Walk pairs simulated while estimating `D̂`.
    pub fn preprocessing_walks(&self) -> u64 {
        self.preprocessing_walks
    }

    /// Number of stored `(ℓ, k, j)` index entries.
    pub fn index_entries(&self) -> usize {
        self.index_entries
    }

    /// Approximate index size in bytes (Figure 4/8 accounting).
    pub fn index_bytes(&self) -> usize {
        self.index_entries * std::mem::size_of::<IndexEntry>()
            + self.diagonal.len() * std::mem::size_of::<f64>()
            + self
                .columns
                .iter()
                .map(|m| m.len() * (std::mem::size_of::<NodeId>() + std::mem::size_of::<usize>()))
                .sum::<usize>()
    }

    /// Answers a single-source query by combining the source's hop vectors
    /// with the indexed columns (eq. 7).
    pub fn query(&self, source: NodeId) -> Result<Vec<f64>, SimRankError> {
        let n = self.graph.num_nodes();
        if source as usize >= n {
            return Err(SimRankError::SourceOutOfRange {
                source,
                num_nodes: n,
            });
        }
        let sqrt_c = self.config.simrank.sqrt_decay();
        let stop = 1.0 - sqrt_c;
        // The source's own hop vectors are computed at query time with a finer
        // threshold than the index so the query-side truncation is negligible;
        // the pooled scratch makes repeated queries allocation-free here.
        let mut scratch = self.pool.checkout();
        sparse_hop_vectors_into(
            &self.graph,
            source,
            sqrt_c,
            self.levels,
            stop * self.config.epsilon * 0.1,
            &mut scratch.ws,
            &mut scratch.walk,
            &mut scratch.walk_tmp,
            &mut scratch.entries,
            &mut scratch.sparse_hops,
        );
        let source_hops = &scratch.sparse_hops;
        let mut scores = vec![0.0; n];
        let scale = 1.0 / (stop * stop);
        for (level, hop) in source_hops.hops.iter().enumerate() {
            let Some(column_map) = self.columns.get(level) else {
                break;
            };
            for (k, pi_ik) in hop.iter() {
                let weight = scale * pi_ik * self.diagonal[k as usize];
                if let Some(entries) = column_map.get(&k) {
                    for entry in entries {
                        scores[entry.j as usize] += weight * entry.value;
                    }
                }
            }
        }
        self.pool.give_back(scratch);
        scores[source as usize] = 1.0;
        Ok(scores)
    }
}

/// Computes, for every level, the inverted map `k → [(j, π^ℓ_j(k))]` by
/// running the pruned hop-vector computation from every node. Returns `None`
/// as soon as `entry_cap` would be exceeded (the caller then retries with a
/// coarser pruning threshold).
fn build_columns<G: NeighborAccess>(
    graph: &G,
    sqrt_c: f64,
    levels: usize,
    prune: f64,
    entry_cap: Option<usize>,
) -> Option<(Vec<ColumnMap>, usize)> {
    let n = graph.num_nodes();
    let mut columns: Vec<ColumnMap> = vec![std::collections::HashMap::new(); levels + 1];
    let mut workspace = Workspace::new(n);
    let mut total = 0usize;
    let cap = entry_cap.unwrap_or(usize::MAX);
    for j in 0..n as NodeId {
        let hops: crate::ppr::SparseHopVectors =
            sparse_hop_vectors(graph, j, sqrt_c, levels, prune, &mut workspace);
        for (level, hop) in hops.hops.iter().enumerate() {
            let column_map = &mut columns[level];
            for (k, value) in hop.iter() {
                column_map
                    .entry(k)
                    .or_default()
                    .push(IndexEntry { j, value });
                total += 1;
            }
        }
        if total > cap {
            return None;
        }
    }
    Some((columns, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::max_error;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use exactsim_graph::generators::{barabasi_albert, complete, cycle};

    #[test]
    fn validates_configuration() {
        let g = complete(4);
        let bad = PrSimConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(PrSim::build(&g, bad).is_err());
        let empty = exactsim_graph::GraphBuilder::new(0).build();
        assert!(PrSim::build(&empty, PrSimConfig::default()).is_err());
    }

    #[test]
    fn accurate_on_small_graphs() {
        let g = barabasi_albert(50, 2, true, 3).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let index = PrSim::build(
            &g,
            PrSimConfig {
                epsilon: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        for source in [0u32, 20] {
            let scores = index.query(source).unwrap();
            let err = max_error(&scores, &truth.single_source(source));
            assert!(err < 0.05, "source {source}: PRSim error {err}");
        }
    }

    #[test]
    fn smaller_epsilon_gives_smaller_error_and_bigger_index() {
        let g = barabasi_albert(60, 2, true, 7).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let exact = truth.single_source(5);
        let coarse = PrSim::build(
            &g,
            PrSimConfig {
                epsilon: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        let fine = PrSim::build(
            &g,
            PrSimConfig {
                epsilon: 5e-3,
                ..Default::default()
            },
        )
        .unwrap();
        let coarse_err = max_error(&coarse.query(5).unwrap(), &exact);
        let fine_err = max_error(&fine.query(5).unwrap(), &exact);
        assert!(
            fine_err < coarse_err,
            "error should shrink: {coarse_err} -> {fine_err}"
        );
        assert!(fine.index_entries() > coarse.index_entries());
        assert!(fine.index_bytes() > coarse.index_bytes());
        assert!(fine.preprocessing_walks() > coarse.preprocessing_walks());
    }

    #[test]
    fn index_entry_cap_is_respected() {
        let g = barabasi_albert(80, 3, true, 9).unwrap();
        let capped = PrSim::build(
            &g,
            PrSimConfig {
                epsilon: 1e-3,
                max_index_entries: Some(2_000),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(capped.index_entries() <= 2_000);
        // Still produces sane results (just less accurate).
        let scores = capped.query(0).unwrap();
        assert!(scores.iter().all(|&s| (-0.1..=1.1).contains(&s)));
    }

    #[test]
    fn cycle_query_is_exact() {
        let g = cycle(8);
        let index = PrSim::build(&g, PrSimConfig::default()).unwrap();
        let scores = index.query(1).unwrap();
        assert_eq!(scores[1], 1.0);
        for (j, &s) in scores.iter().enumerate() {
            if j != 1 {
                assert!(s.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn query_checks_source_range() {
        let g = complete(5);
        let index = PrSim::build(&g, PrSimConfig::default()).unwrap();
        assert!(index.query(5).is_err());
    }
}
