//! Estimators for the diagonal correction matrix `D`.
//!
//! The Linearization identity (eq. 3 of the paper) writes the SimRank matrix
//! as `S = Σ_ℓ c^ℓ (P^ℓ)ᵀ D P^ℓ` with a diagonal matrix `D` whose entries lie
//! in `[1 − c, 1]`. Probabilistically, `D(k,k)` is the probability that two
//! independent √c-walks started at `v_k` *never* meet. Getting `D` right is
//! the whole game: ParSim's `D = (1 − c)·I` shortcut is biased, and estimating
//! every entry to accuracy ε costs `O(n·log n/ε²)` — the term ExactSim
//! removes by allocating a *total* sample budget across nodes according to the
//! source's Personalized PageRank.
//!
//! This module provides the three estimators the paper discusses:
//!
//! * [`DiagonalEstimator::ParSimApprox`] — the `(1 − c)` constant (no work,
//!   biased);
//! * [`DiagonalEstimator::Bernoulli`] — Algorithm 2: simulate `R(k)` pairs of
//!   √c-walks from `v_k` and count the pairs that never meet;
//! * [`DiagonalEstimator::LocalDeterministic`] — Algorithm 3: compute the
//!   first-meeting probabilities `Z_ℓ(k, q)` deterministically (Lemma 4) up to
//!   an adaptive level `ℓ(k)` and only sample the remaining tail with
//!   "non-stop-then-√c" walk pairs;
//! * [`DiagonalEstimator::Exact`] — an externally supplied exact `D` (from
//!   [`crate::power_method::PowerMethod::exact_diagonal`]), used for
//!   validation and ablations.

use exactsim_graph::linalg::{p_multiply_sparse_into, SparseVec};
use exactsim_graph::{NeighborAccess, NodeId};
use rand::rngs::SmallRng;

use crate::parallel::split_ranges;
use crate::scratch::DiagonalScratch;
use crate::walks::{self, PairOutcome};

/// Hard engineering caps for the local deterministic exploitation
/// (Algorithm 3). The paper's only stop rule is the edge budget `2R(k)/√c`;
/// at exact-computation settings (`ε = 1e-7`) that budget is astronomically
/// large, so a faithful implementation additionally needs per-node caps to
/// keep the exploration polynomial. Both caps are generous defaults that the
/// benchmark harness can tighten or loosen; hitting a cap degrades accuracy
/// gracefully (the remaining tail is still estimated by sampling).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalExploreCaps {
    /// Maximum deterministic exploration depth `ℓ(k)`.
    pub max_levels: usize,
    /// Maximum number of edge traversals spent exploring one node.
    pub max_edges: u64,
    /// Maximum number of tail walk pairs sampled for one node.
    pub max_tail_samples: u64,
}

impl Default for LocalExploreCaps {
    fn default() -> Self {
        LocalExploreCaps {
            max_levels: 40,
            max_edges: 200_000,
            max_tail_samples: 100_000,
        }
    }
}

/// Which estimator to use for `D`.
#[derive(Clone, Debug, PartialEq)]
pub enum DiagonalEstimator {
    /// Use an externally supplied exact diagonal (validation / ablation).
    Exact(Vec<f64>),
    /// `D = (1 − c)·I`, the ParSim approximation (ignores the first-meeting
    /// constraint; biased).
    ParSimApprox,
    /// Algorithm 2: Bernoulli sampling of √c-walk pairs.
    Bernoulli,
    /// Algorithm 3: deterministic local exploitation plus tail sampling.
    LocalDeterministic(LocalExploreCaps),
}

/// The result of estimating `D` for a whole graph.
#[derive(Clone, Debug, Default)]
pub struct DiagonalEstimate {
    /// `values[k]` is `D̂(k,k)`. Nodes that received no samples keep the
    /// unbiased-prior value `1 − c` (their weight in the caller is zero).
    pub values: Vec<f64>,
    /// Total pairs of walks simulated (Algorithm 2 trials + Algorithm 3 tail
    /// pairs).
    pub walk_pairs: u64,
    /// Total edge traversals performed by the deterministic exploration.
    pub explore_edges: u64,
    /// Number of nodes whose tail sampling was skipped because the
    /// deterministic part already reached the required accuracy.
    pub tails_skipped: usize,
}

/// Statistics of a single-node Algorithm 3 run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LocalNodeStats {
    /// The deterministic exploration depth `ℓ(k)` that was reached.
    pub levels: usize,
    /// Edge traversals spent on the deterministic part.
    pub edges: u64,
    /// Tail walk pairs actually sampled.
    pub tail_pairs: u64,
    /// `true` when the tail was provably below the requested tolerance and
    /// sampling was skipped.
    pub tail_skipped: bool,
}

/// Algorithm 2: estimates `D(k,k)` by simulating `samples` pairs of √c-walks
/// from `node` and returning the fraction of pairs that never meet.
///
/// The result is clamped to the feasible interval `[1 − c, 1]`.
pub fn estimate_bernoulli<G: NeighborAccess>(
    graph: &G,
    node: NodeId,
    samples: u64,
    sqrt_c: f64,
    max_steps: usize,
    rng: &mut SmallRng,
) -> f64 {
    let c = sqrt_c * sqrt_c;
    let din = graph.in_degree(node);
    if din == 0 {
        return 1.0;
    }
    if din == 1 {
        return 1.0 - c;
    }
    if samples == 0 {
        return 1.0 - c;
    }
    let mut not_met = 0u64;
    for _ in 0..samples {
        if matches!(
            walks::sample_meeting_pair(graph, node, sqrt_c, max_steps, rng),
            PairOutcome::NoMeeting
        ) {
            not_met += 1;
        }
    }
    (not_met as f64 / samples as f64).clamp(1.0 - c, 1.0)
}

/// Algorithm 3: deterministic local exploitation of the first-meeting
/// probabilities, plus sampled tail correction.
///
/// * `samples` is the paper's `R(k)` — it controls both the edge budget
///   (`2R(k)/√c`) and the tail sample count.
/// * `tail_skip_threshold`: if the deterministic exploration reaches a level
///   `ℓ` with `c^ℓ ≤ tail_skip_threshold`, the entire remaining tail is below
///   that threshold and sampling is skipped (bias ≤ threshold). Pass `0.0`
///   to always sample, reproducing the paper's pseudocode verbatim.
///
/// Two refinements relative to the literal pseudocode, both recorded in
/// DESIGN.md: (1) the tail is sampled with `⌈R(k)·c^{2ℓ(k)}⌉` pairs instead of
/// `R(k)` — each tail sample has range `c^{ℓ(k)}`, so this keeps the variance
/// at the `1/R(k)` level the paper's analysis assumes while avoiding
/// astronomically many walks; (2) the engineering caps in
/// [`LocalExploreCaps`].
///
/// All intermediate state lives in the caller-owned [`DiagonalScratch`]:
/// walk distributions in an epoch-stamped [`crate::scratch::DistTable`], the
/// per-level `Z` accumulation in an epoch-stamped dense workspace drained in
/// sorted index order. The seed-era implementation accumulated through
/// `BTreeMap`s, which sum in exactly that ascending-key order — so this
/// version is bit-identical (pinned by `tests/properties.rs` against a
/// verbatim port of the old code) while performing no per-node allocation in
/// steady state.
#[allow(clippy::too_many_arguments)]
pub fn estimate_local_deterministic<G: NeighborAccess>(
    graph: &G,
    node: NodeId,
    samples: u64,
    sqrt_c: f64,
    tail_skip_threshold: f64,
    caps: LocalExploreCaps,
    scratch: &mut DiagonalScratch,
    rng: &mut SmallRng,
) -> (f64, LocalNodeStats) {
    let c = sqrt_c * sqrt_c;
    let din = graph.in_degree(node);
    if din == 0 {
        return (1.0, LocalNodeStats::default());
    }
    if din == 1 {
        return (1.0 - c, LocalNodeStats::default());
    }

    let edge_budget = if samples == 0 {
        0
    } else {
        (((2 * samples) as f64) / sqrt_c).ceil() as u64
    };
    let edge_budget = edge_budget.min(caps.max_edges);

    let DiagonalScratch {
        ws,
        z,
        z_levels,
        dist,
    } = scratch;

    // Lazily grown walk distributions: dist.slot(s).level(t) = P^t · e_s (no
    // decay), logically reset per node, storage retained across nodes.
    dist.begin_node(graph.num_nodes());
    dist.slot_mut(node).ensure_unit(node);

    let mut edges_used = 0u64;
    // Z[t] (t >= 1) lives in z_levels[t - 1] as a sorted sparse vector of the
    // strictly positive entries (zero and clamped-negative entries carry no
    // weight downstream; the seed-era BTreeMap kept and then filtered them).
    let mut z_len = 0usize;
    let mut met_probability = 0.0f64;

    let mut level = 0usize;
    // Cost model: extending a distribution by one level costs Σ din(j) over
    // its current support.
    fn extend_cost<G: NeighborAccess>(v: &SparseVec, graph: &G) -> u64 {
        v.iter().map(|(j, _)| graph.in_degree(j) as u64).sum()
    }

    while level < caps.max_levels {
        let next_level = level + 1;
        // Make sure the distribution from `node` reaches `next_level`.
        {
            let node_dist = dist.slot_mut(node);
            node_dist.ensure_unit(node);
            while node_dist.len() <= next_level {
                let (last, next) = node_dist.split_for_extend();
                edges_used += extend_cost(last, graph);
                p_multiply_sparse_into(graph, last, ws, next);
            }
        }

        // Z_{next_level}(node, q) = c^ℓ (P^ℓ e_node)(q)²
        //   − Σ_{t=1}^{ℓ-1} Σ_{q'} c^{ℓ-t} (P^{ℓ-t} e_{q'})(q)² · Z_t(node, q').
        {
            let node_dist = dist.slot_mut(node);
            let base = node_dist.level(next_level);
            let scale = c.powi(next_level as i32);
            for (q, v) in base.iter() {
                z.add(q, scale * v * v);
            }
        }
        for t in 1..next_level {
            let remaining = next_level - t;
            for idx in 0..z_levels[t - 1].nnz() {
                let (q_prime, z_val) = (
                    z_levels[t - 1].indices()[idx],
                    z_levels[t - 1].values()[idx],
                );
                let q_dist = dist.slot_mut(q_prime);
                q_dist.ensure_unit(q_prime);
                while q_dist.len() <= remaining {
                    let (last, next) = q_dist.split_for_extend();
                    edges_used += extend_cost(last, graph);
                    p_multiply_sparse_into(graph, last, ws, next);
                }
                let spread = q_dist.level(remaining);
                let factor = c.powi(remaining as i32) * z_val;
                if factor == 0.0 {
                    continue;
                }
                for (q, v) in spread.iter() {
                    z.add(q, -(factor * v * v));
                }
            }
        }
        // Drain in sorted index order (the BTreeMap iteration order):
        // accumulate the level mass with tiny negatives clamped — Z is a
        // probability — and store the strictly positive entries as Z_t.
        if z_levels.len() == z_len {
            z_levels.push(SparseVec::new());
        }
        let stored = &mut z_levels[z_len];
        stored.clear();
        let mut level_mass = 0.0f64;
        z.drain_sorted(|q, v| {
            level_mass += v.max(0.0);
            if v > 0.0 {
                stored.push_sorted(q, v);
            }
        });
        z_len += 1;
        met_probability += level_mass;
        level = next_level;

        let tail_bound = c.powi(level as i32);
        if tail_bound <= tail_skip_threshold {
            break;
        }
        if edges_used >= edge_budget {
            break;
        }
    }

    let mut stats = LocalNodeStats {
        levels: level,
        edges: edges_used,
        tail_pairs: 0,
        tail_skipped: false,
    };

    let tail_bound = c.powi(level as i32);
    let mut d_hat = 1.0 - met_probability;

    if tail_bound <= tail_skip_threshold || samples == 0 {
        stats.tail_skipped = true;
        return (d_hat.clamp(1.0 - c, 1.0), stats);
    }

    // Tail sampling: pairs of walks that ignore the stopping coin for the
    // first `level` steps and then continue as √c-walks. Equivalent-variance
    // sample reduction: R'(k) = ⌈R(k)·c^{2ℓ(k)}⌉.
    let reduced = ((samples as f64) * tail_bound * tail_bound).ceil() as u64;
    let tail_samples = reduced.clamp(1, caps.max_tail_samples);
    let mut tail_hits = 0u64;
    let max_continue_steps = 4 * caps.max_levels;
    for _ in 0..tail_samples {
        if sample_tail_pair(graph, node, level, sqrt_c, max_continue_steps, rng) {
            tail_hits += 1;
        }
    }
    stats.tail_pairs = tail_samples;
    let tail_estimate = tail_bound * tail_hits as f64 / tail_samples as f64;
    d_hat -= tail_estimate;
    (d_hat.clamp(1.0 - c, 1.0), stats)
}

/// Simulates one pair of Algorithm 3 tail walks: both walks take `forced`
/// steps without the stopping coin; if they meet during the forced phase (or
/// either gets stuck) the trial contributes 0. Otherwise both continue as
/// ordinary √c-walks and the trial contributes 1 iff they eventually meet.
fn sample_tail_pair<G: NeighborAccess>(
    graph: &G,
    start: NodeId,
    forced: usize,
    sqrt_c: f64,
    max_continue_steps: usize,
    rng: &mut SmallRng,
) -> bool {
    let mut a = start;
    let mut b = start;
    for _ in 0..forced {
        let na = walks::step_forced(graph, a, rng);
        let nb = walks::step_forced(graph, b, rng);
        match (na, nb) {
            (Some(x), Some(y)) => {
                if x == y {
                    // First meeting happened at a level ≤ ℓ(k): already
                    // accounted for deterministically, so this trial is void.
                    return false;
                }
                a = x;
                b = y;
            }
            _ => return false,
        }
    }
    // Continue as ordinary √c-walks from (a, b).
    for _ in 0..max_continue_steps {
        let na = walks::step(graph, a, sqrt_c, rng);
        let nb = walks::step(graph, b, sqrt_c, rng);
        match (na, nb) {
            (Some(x), Some(y)) => {
                if x == y {
                    return true;
                }
                a = x;
                b = y;
            }
            _ => return false,
        }
    }
    false
}

/// Per-shard tallies of a sharded diagonal estimation, merged by summing
/// (order-independent integer counters).
#[derive(Clone, Copy, Debug, Default)]
struct ShardTallies {
    walk_pairs: u64,
    explore_edges: u64,
    tails_skipped: usize,
}

/// One shard of the Bernoulli estimation: fills `values[k - range.start]`
/// for every `k` in `range` with a positive allocation.
fn bernoulli_shard<G: NeighborAccess>(
    graph: &G,
    allocation: &[u64],
    range: std::ops::Range<usize>,
    sqrt_c: f64,
    seed: u64,
    values: &mut [f64],
) -> ShardTallies {
    let c = sqrt_c * sqrt_c;
    let max_steps = 10 * ((1.0 / (1.0 - sqrt_c)).ceil() as usize).max(10);
    let mut tallies = ShardTallies::default();
    for k in range.clone() {
        let r = allocation[k];
        if r == 0 {
            continue;
        }
        let slot = &mut values[k - range.start];
        let din = graph.in_degree(k as NodeId);
        if din == 0 {
            *slot = 1.0;
            continue;
        }
        if din == 1 {
            *slot = 1.0 - c;
            continue;
        }
        let mut rng = walks::make_rng(walks::derive_seed(seed, k as u64));
        *slot = estimate_bernoulli(graph, k as NodeId, r, sqrt_c, max_steps, &mut rng);
        tallies.walk_pairs += r;
    }
    tallies
}

/// One shard of the Algorithm 3 estimation.
#[allow(clippy::too_many_arguments)]
fn local_deterministic_shard<G: NeighborAccess>(
    graph: &G,
    allocation: &[u64],
    range: std::ops::Range<usize>,
    sqrt_c: f64,
    tail_skip_threshold: f64,
    caps: LocalExploreCaps,
    seed: u64,
    scratch: &mut DiagonalScratch,
    values: &mut [f64],
) -> ShardTallies {
    let mut tallies = ShardTallies::default();
    for k in range.clone() {
        let r = allocation[k];
        if r == 0 {
            continue;
        }
        let mut rng = walks::make_rng(walks::derive_seed(seed, k as u64));
        let node_threshold = if tail_skip_threshold > 0.0 {
            tail_skip_threshold.max(0.25 / (r as f64).sqrt())
        } else {
            0.0
        };
        let (value, stats) = estimate_local_deterministic(
            graph,
            k as NodeId,
            r,
            sqrt_c,
            node_threshold,
            caps,
            scratch,
            &mut rng,
        );
        values[k - range.start] = value;
        tallies.walk_pairs += stats.tail_pairs;
        tallies.explore_edges += stats.edges;
        if stats.tail_skipped {
            tallies.tails_skipped += 1;
        }
    }
    tallies
}

/// Estimates `D̂(k,k)` for every node with a positive sample allocation,
/// allocating its own per-shard scratches (convenience wrapper around
/// [`estimate_diagonal_with`] for index-build-time callers).
pub fn estimate_diagonal<G: NeighborAccess>(
    graph: &G,
    allocation: &[u64],
    estimator: &DiagonalEstimator,
    sqrt_c: f64,
    tail_skip_threshold: f64,
    seed: u64,
    threads: usize,
) -> DiagonalEstimate {
    let mut scratches = Vec::new();
    estimate_diagonal_with(
        graph,
        allocation,
        estimator,
        sqrt_c,
        tail_skip_threshold,
        seed,
        threads,
        &mut scratches,
    )
}

/// Estimates `D̂(k,k)` for every node with a positive sample allocation.
///
/// `allocation[k]` is the paper's `R(k)`; nodes with zero allocation keep the
/// prior `1 − c` (their contribution to the caller's result is zero anyway).
/// Every node derives its own RNG stream from `(seed, k)` and its exploration
/// state lives entirely in one shard's [`DiagonalScratch`], so the node range
/// can be sharded across `threads` worker threads — each shard writes its own
/// disjoint slice of the output — and the result is **bit-identical for any
/// thread count** (and independent of call order). `scratches` is grown to
/// the shard count and reused across calls.
#[allow(clippy::too_many_arguments)]
pub fn estimate_diagonal_with<G: NeighborAccess>(
    graph: &G,
    allocation: &[u64],
    estimator: &DiagonalEstimator,
    sqrt_c: f64,
    tail_skip_threshold: f64,
    seed: u64,
    threads: usize,
    scratches: &mut Vec<DiagonalScratch>,
) -> DiagonalEstimate {
    let n = graph.num_nodes();
    assert_eq!(allocation.len(), n, "allocation must cover every node");
    let c = sqrt_c * sqrt_c;
    let mut out = DiagonalEstimate {
        values: vec![1.0 - c; n],
        ..Default::default()
    };
    let ranges = split_ranges(n, threads.max(1));
    match estimator {
        DiagonalEstimator::Exact(values) => {
            assert_eq!(values.len(), n, "exact diagonal must cover every node");
            out.values = values.clone();
        }
        DiagonalEstimator::ParSimApprox => {
            // values already initialised to 1 - c.
        }
        DiagonalEstimator::Bernoulli => {
            let mut units = vec![(); ranges.len()];
            let tallies =
                shard_over_values(&mut out.values, &ranges, &mut units, |range, (), values| {
                    bernoulli_shard(graph, allocation, range, sqrt_c, seed, values)
                });
            apply_tallies(&mut out, tallies);
        }
        DiagonalEstimator::LocalDeterministic(caps) => {
            while scratches.len() < ranges.len() {
                scratches.push(DiagonalScratch::new(n));
            }
            let shard_count = ranges.len();
            // A scratch retained from a *different* graph would index out of
            // bounds deep inside the kernels; fail loudly at the boundary.
            for scratch in &scratches[..shard_count] {
                assert_eq!(
                    scratch.num_nodes(),
                    n,
                    "diagonal scratch was created for a graph with {} nodes, \
                     but this graph has {n}",
                    scratch.num_nodes()
                );
            }
            let tallies = shard_over_values(
                &mut out.values,
                &ranges,
                &mut scratches[..shard_count],
                |range, scratch, values| {
                    local_deterministic_shard(
                        graph,
                        allocation,
                        range,
                        sqrt_c,
                        tail_skip_threshold,
                        *caps,
                        seed,
                        scratch,
                        values,
                    )
                },
            );
            apply_tallies(&mut out, tallies);
        }
    }
    out
}

fn apply_tallies(out: &mut DiagonalEstimate, tallies: ShardTallies) {
    out.walk_pairs += tallies.walk_pairs;
    out.explore_edges += tallies.explore_edges;
    out.tails_skipped += tallies.tails_skipped;
}

/// Runs `work` over every shard of `values` through the crate's one
/// deterministic sharding primitive ([`crate::parallel`]'s `shard_slices`),
/// summing the per-shard tallies in shard order. An empty `ranges` (empty
/// graph) is a no-op.
fn shard_over_values<C: Send>(
    values: &mut [f64],
    ranges: &[std::ops::Range<usize>],
    contexts: &mut [C],
    work: impl Fn(std::ops::Range<usize>, &mut C, &mut [f64]) -> ShardTallies + Sync,
) -> ShardTallies {
    let mut tallies = ShardTallies::default();
    for t in crate::parallel::shard_slices(values, ranges, contexts, work) {
        tallies.walk_pairs += t.walk_pairs;
        tallies.explore_edges += t.explore_edges;
        tallies.tails_skipped += t.tails_skipped;
    }
    tallies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use crate::walks::make_rng;
    use exactsim_graph::generators::{barabasi_albert, complete, cycle, star};

    fn scratch(n: usize) -> DiagonalScratch {
        DiagonalScratch::new(n)
    }

    const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)
    const C: f64 = 0.6;

    fn exact_d(graph: &exactsim_graph::DiGraph) -> Vec<f64> {
        PowerMethod::compute(graph, PowerMethodConfig::default())
            .unwrap()
            .exact_diagonal(graph)
    }

    #[test]
    fn trivial_degree_cases() {
        // Leaves of the directed star have din = 0 → D = 1;
        // nodes of a cycle have din = 1 → D = 1 - c.
        let star_graph = star(5, false);
        let mut rng = make_rng(1);
        assert_eq!(
            estimate_bernoulli(&star_graph, 2, 100, SQRT_C, 50, &mut rng),
            1.0
        );
        let cyc = cycle(6);
        assert!((estimate_bernoulli(&cyc, 0, 100, SQRT_C, 50, &mut rng) - (1.0 - C)).abs() < 1e-12);
        let mut ws = scratch(6);
        let (d, stats) = estimate_local_deterministic(
            &cyc,
            0,
            100,
            SQRT_C,
            0.0,
            Default::default(),
            &mut ws,
            &mut rng,
        );
        assert!((d - (1.0 - C)).abs() < 1e-12);
        assert_eq!(stats.levels, 0);
    }

    #[test]
    fn bernoulli_estimator_is_consistent_with_exact_d() {
        let g = barabasi_albert(60, 2, true, 7).unwrap();
        let exact = exact_d(&g);
        let mut rng = make_rng(2);
        for k in [0u32, 5, 20, 59] {
            let est = estimate_bernoulli(&g, k, 30_000, SQRT_C, 200, &mut rng);
            assert!(
                (est - exact[k as usize]).abs() < 0.02,
                "node {k}: estimate {est} vs exact {}",
                exact[k as usize]
            );
        }
    }

    #[test]
    fn bernoulli_respects_feasible_interval() {
        let g = complete(10);
        let mut rng = make_rng(3);
        for k in 0..10u32 {
            let est = estimate_bernoulli(&g, k, 200, SQRT_C, 100, &mut rng);
            assert!((1.0 - C..=1.0).contains(&est));
        }
    }

    #[test]
    fn local_deterministic_matches_exact_d_without_sampling() {
        // With a deep skip threshold the estimator is almost purely
        // deterministic and should nail D to ~1e-6.
        let g = barabasi_albert(40, 2, true, 9).unwrap();
        let exact = exact_d(&g);
        let mut ws = scratch(g.num_nodes());
        let mut rng = make_rng(4);
        let caps = LocalExploreCaps {
            max_levels: 40,
            max_edges: u64::MAX,
            max_tail_samples: 10,
        };
        for k in 0..g.num_nodes() as u32 {
            let (est, stats) = estimate_local_deterministic(
                &g, k, 1_000_000, SQRT_C, 1e-7, caps, &mut ws, &mut rng,
            );
            assert!(
                (est - exact[k as usize]).abs() < 1e-5,
                "node {k}: local-deterministic {est} vs exact {} (levels {})",
                exact[k as usize],
                stats.levels
            );
        }
    }

    #[test]
    fn local_deterministic_with_tail_sampling_is_unbiased_enough() {
        // Shallow exploration forces real tail sampling; accuracy should still
        // beat the raw Bernoulli estimator for the same sample count.
        let g = barabasi_albert(50, 3, true, 11).unwrap();
        let exact = exact_d(&g);
        let mut ws = scratch(g.num_nodes());
        let caps = LocalExploreCaps {
            max_levels: 3,
            max_edges: u64::MAX,
            max_tail_samples: 200_000,
        };
        for k in [0u32, 10, 30] {
            let mut rng = make_rng(100 + k as u64);
            let (est, stats) =
                estimate_local_deterministic(&g, k, 50_000, SQRT_C, 0.0, caps, &mut ws, &mut rng);
            assert!(!stats.tail_skipped);
            assert!(stats.tail_pairs > 0);
            assert!(
                (est - exact[k as usize]).abs() < 0.02,
                "node {k}: {est} vs {}",
                exact[k as usize]
            );
        }
    }

    #[test]
    fn exploration_respects_edge_budget() {
        let g = barabasi_albert(200, 3, true, 13).unwrap();
        let mut ws = scratch(g.num_nodes());
        let mut rng = make_rng(5);
        let caps = LocalExploreCaps {
            max_levels: 40,
            max_edges: 500,
            max_tail_samples: 10,
        };
        let (_, stats) =
            estimate_local_deterministic(&g, 0, u64::MAX / 4, SQRT_C, 0.0, caps, &mut ws, &mut rng);
        // The budget is checked after each level, so we can overshoot by at
        // most one level's worth of work, never run away.
        assert!(stats.edges < 500 + 10 * g.num_edges() as u64);
        assert!(stats.levels < 40);
    }

    #[test]
    fn estimate_diagonal_full_graph_respects_allocation() {
        let g = barabasi_albert(80, 2, true, 17).unwrap();
        let mut allocation = vec![0u64; g.num_nodes()];
        allocation[3] = 5_000;
        allocation[40] = 5_000;
        let est = estimate_diagonal(
            &g,
            &allocation,
            &DiagonalEstimator::Bernoulli,
            SQRT_C,
            0.0,
            9,
            1,
        );
        assert_eq!(est.walk_pairs, 10_000);
        let exact = exact_d(&g);
        assert!((est.values[3] - exact[3]).abs() < 0.05);
        assert!((est.values[40] - exact[40]).abs() < 0.05);
        // Unallocated nodes keep the prior.
        assert!((est.values[10] - (1.0 - C)).abs() < 1e-12);
    }

    #[test]
    fn estimate_diagonal_exact_and_parsim_modes() {
        let g = complete(8);
        let exact = exact_d(&g);
        let allocation = vec![10u64; 8];
        let e = estimate_diagonal(
            &g,
            &allocation,
            &DiagonalEstimator::Exact(exact.clone()),
            SQRT_C,
            0.0,
            1,
            1,
        );
        assert_eq!(e.values, exact);
        assert_eq!(e.walk_pairs, 0);
        let p = estimate_diagonal(
            &g,
            &allocation,
            &DiagonalEstimator::ParSimApprox,
            SQRT_C,
            0.0,
            1,
            1,
        );
        assert!(p.values.iter().all(|&v| (v - (1.0 - C)).abs() < 1e-15));
    }

    #[test]
    fn local_deterministic_mode_is_accurate_on_a_whole_graph() {
        let g = barabasi_albert(60, 2, true, 23).unwrap();
        let allocation = vec![50_000u64; g.num_nodes()];
        let est = estimate_diagonal(
            &g,
            &allocation,
            &DiagonalEstimator::LocalDeterministic(LocalExploreCaps::default()),
            SQRT_C,
            1e-3,
            77,
            1,
        );
        let exact = exact_d(&g);
        for (k, (est_k, exact_k)) in est.values.iter().zip(&exact).enumerate() {
            assert!(
                (est_k - exact_k).abs() < 0.02,
                "node {k}: {est_k} vs {exact_k}"
            );
        }
    }

    #[test]
    fn tails_are_skipped_when_exploration_is_cheap() {
        // On a small complete graph the deterministic exploration reaches the
        // skip threshold long before the edge budget, so no tail walks are
        // sampled at all.
        let g = complete(6);
        let allocation = vec![1_000_000_000u64; 6];
        let est = estimate_diagonal(
            &g,
            &allocation,
            &DiagonalEstimator::LocalDeterministic(LocalExploreCaps::default()),
            SQRT_C,
            1e-4,
            3,
            1,
        );
        assert_eq!(est.tails_skipped, 6);
        assert_eq!(est.walk_pairs, 0);
        let exact = exact_d(&g);
        for (est_k, exact_k) in est.values.iter().zip(&exact) {
            assert!((est_k - exact_k).abs() < 1e-3);
        }
    }

    #[test]
    fn empty_graph_returns_an_empty_estimate() {
        let g = exactsim_graph::GraphBuilder::new(0).build();
        for estimator in [
            DiagonalEstimator::Bernoulli,
            DiagonalEstimator::ParSimApprox,
            DiagonalEstimator::LocalDeterministic(LocalExploreCaps::default()),
        ] {
            let est = estimate_diagonal(&g, &[], &estimator, SQRT_C, 0.0, 1, 4);
            assert!(est.values.is_empty());
            assert_eq!(est.walk_pairs, 0);
        }
    }

    #[test]
    fn sharded_estimation_is_bit_identical_for_any_thread_count() {
        let g = barabasi_albert(90, 3, true, 31).unwrap();
        let allocation = vec![20_000u64; g.num_nodes()];
        for estimator in [
            DiagonalEstimator::Bernoulli,
            DiagonalEstimator::LocalDeterministic(LocalExploreCaps::default()),
        ] {
            let single = estimate_diagonal(&g, &allocation, &estimator, SQRT_C, 1e-3, 5, 1);
            for threads in [2usize, 3, 7] {
                let sharded =
                    estimate_diagonal(&g, &allocation, &estimator, SQRT_C, 1e-3, 5, threads);
                assert_eq!(single.values, sharded.values, "threads = {threads}");
                assert_eq!(single.walk_pairs, sharded.walk_pairs);
                assert_eq!(single.explore_edges, sharded.explore_edges);
                assert_eq!(single.tails_skipped, sharded.tails_skipped);
            }
        }
    }

    #[test]
    #[should_panic(expected = "allocation must cover every node")]
    fn allocation_length_is_checked() {
        let g = complete(4);
        estimate_diagonal(
            &g,
            &[1, 2],
            &DiagonalEstimator::Bernoulli,
            SQRT_C,
            0.0,
            1,
            1,
        );
    }
}
