//! Top-k extraction from a single-source similarity vector.

/// One entry of a top-k answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKEntry {
    /// The node id.
    pub node: u32,
    /// Its SimRank similarity to the query source.
    pub score: f64,
}

/// Returns the `k` nodes most similar to `source`, excluding `source` itself,
/// ordered by decreasing score with ties broken by increasing node id.
///
/// The deterministic tie-break keeps top-k answers stable across runs and
/// algorithms, which matters when computing Precision@k at the paper's
/// `k = 500` where the tail of the ranking often contains equal scores.
pub fn top_k(scores: &[f64], source: u32, k: usize) -> Vec<TopKEntry> {
    top_k_where(scores, source, k, |_| true)
}

/// [`top_k`] restricted to the candidate nodes for which `keep` is true
/// (the source is always excluded, whatever `keep` says about it).
///
/// This is the shard-side half of a scatter/gathered top-k: each shard
/// extracts the top-k of *its owned candidate subset* from the full column,
/// and merging the per-shard lists with [`merge_top_k`] reproduces the
/// global [`top_k`] answer bit-for-bit — each shard's k best bound how deep
/// the global answer can reach into that shard.
pub fn top_k_where(
    scores: &[f64],
    source: u32,
    k: usize,
    mut keep: impl FnMut(u32) -> bool,
) -> Vec<TopKEntry> {
    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    let mut entries: Vec<TopKEntry> = scores
        .iter()
        .enumerate()
        .filter(|&(node, _)| node as u32 != source && keep(node as u32))
        .map(|(node, &score)| TopKEntry {
            node: node as u32,
            score,
        })
        .collect();
    if entries.is_empty() {
        return entries;
    }
    let k = k.min(entries.len());
    // Partial selection then exact sort of the prefix: O(n + k log k) average.
    let pivot = k.saturating_sub(1).min(entries.len() - 1);
    entries.select_nth_unstable_by(pivot, compare);
    entries.truncate(k);
    entries.sort_unstable_by(compare);
    entries
}

fn compare(a: &TopKEntry, b: &TopKEntry) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.node.cmp(&b.node))
}

/// Merges per-shard top-k lists into the global top-k answer.
///
/// Precondition: the lists cover disjoint candidate sets (each produced by
/// [`top_k_where`] over one shard of a partition) and each list holds its
/// shard's `k` best. Under that precondition the merge is *exactly* the
/// unsharded [`top_k`]: it sorts with the same comparator (score descending,
/// ties by ascending node id) and truncates to `k`, so sharded and unsharded
/// answers are bit-identical — including the order of tied scores.
pub fn merge_top_k(lists: Vec<Vec<TopKEntry>>, k: usize) -> Vec<TopKEntry> {
    let mut merged: Vec<TopKEntry> = lists.into_iter().flatten().collect();
    merged.sort_unstable_by(compare);
    merged.truncate(k);
    merged
}

/// Returns just the node ids of the top-k answer (ordering as [`top_k`]).
pub fn top_k_nodes(scores: &[f64], source: u32, k: usize) -> Vec<u32> {
    top_k(scores, source, k)
        .into_iter()
        .map(|e| e.node)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_score_then_node_id() {
        let scores = vec![1.0, 0.3, 0.9, 0.9, 0.1];
        let top = top_k(&scores, 0, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].node, 2);
        assert_eq!(top[1].node, 3);
        assert_eq!(top[2].node, 1);
        assert!((top[0].score - 0.9).abs() < 1e-15);
    }

    #[test]
    fn excludes_the_source() {
        let scores = vec![0.5, 1.0, 0.2];
        let top = top_k(&scores, 1, 2);
        assert!(top.iter().all(|e| e.node != 1));
        assert_eq!(top[0].node, 0);
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let scores = vec![1.0, 0.4, 0.2];
        let top = top_k(&scores, 0, 100);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(top_k(&[1.0, 0.5], 0, 0).is_empty());
        assert!(top_k(&[], 0, 5).is_empty());
        assert!(top_k(&[1.0], 0, 5).is_empty());
    }

    #[test]
    fn top_k_nodes_matches_top_k() {
        let scores = vec![1.0, 0.2, 0.8, 0.6];
        assert_eq!(top_k_nodes(&scores, 0, 2), vec![2, 3]);
    }

    #[test]
    fn deterministic_under_many_ties() {
        let scores = vec![1.0; 50];
        let top = top_k(&scores, 7, 10);
        let nodes: Vec<u32> = top.iter().map(|e| e.node).collect();
        // With all scores tied, the smallest ids (excluding source 7) win.
        assert_eq!(nodes, vec![0, 1, 2, 3, 4, 5, 6, 8, 9, 10]);
    }

    #[test]
    fn sharded_extract_then_merge_is_bit_identical_to_unsharded() {
        // Pseudo-random scores with deliberate ties; every (shards, k) pair
        // must merge back to exactly the unsharded answer.
        let scores: Vec<f64> = (0..500).map(|i| ((i * 7919) % 97) as f64 / 97.0).collect();
        for source in [0u32, 3, 499] {
            for shards in [1usize, 2, 3, 4, 7] {
                for k in [0usize, 1, 5, 50, 600] {
                    let per_shard: Vec<Vec<TopKEntry>> = (0..shards)
                        .map(|s| {
                            top_k_where(&scores, source, k, |node| {
                                ((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32)
                                    % shards as u64
                                    == s as u64
                            })
                        })
                        .collect();
                    let merged = merge_top_k(per_shard, k);
                    assert_eq!(
                        merged,
                        top_k(&scores, source, k),
                        "source {source}, {shards} shards, k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_where_excludes_source_even_when_kept() {
        let scores = vec![0.5, 1.0, 0.2];
        let top = top_k_where(&scores, 1, 3, |_| true);
        assert!(top.iter().all(|e| e.node != 1));
    }

    #[test]
    fn selection_matches_full_sort_on_random_input() {
        // Cross-check the select_nth fast path against a straightforward sort.
        let scores: Vec<f64> = (0..200)
            .map(|i| ((i * 7919) % 997) as f64 / 997.0)
            .collect();
        let fast = top_k(&scores, 3, 25);
        let mut slow: Vec<TopKEntry> = scores
            .iter()
            .enumerate()
            .filter(|&(n, _)| n != 3)
            .map(|(n, &s)| TopKEntry {
                node: n as u32,
                score: s,
            })
            .collect();
        slow.sort_unstable_by(compare);
        slow.truncate(25);
        assert_eq!(fast, slow);
    }
}
