//! Evaluation metrics: MaxError, average error and Precision@k.
//!
//! These are the two quality measures of the paper's §4: *MaxError* is the
//! largest absolute difference between an estimated single-source vector and
//! the ground truth, and *Precision@k* is the fraction of a method's top-k
//! answer that coincides with the true top-k set.

use crate::topk::top_k;

/// `max_j |estimate(j) − truth(j)|` over the whole single-source vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "estimate and truth must have equal length"
    );
    estimate
        .iter()
        .zip(truth.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Mean absolute error over the whole single-source vector.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn average_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "estimate and truth must have equal length"
    );
    assert!(!truth.is_empty(), "vectors must be non-empty");
    let total: f64 = estimate
        .iter()
        .zip(truth.iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    total / truth.len() as f64
}

/// Precision@k of an estimated single-source vector against the ground truth.
///
/// Both vectors are interpreted as similarity scores of every node to the same
/// source `source`; the source itself is excluded from both top-k sets (its
/// similarity is trivially 1). Ties are broken by node id, matching
/// [`top_k`]. Returns a value in `[0, 1]`; if the graph has fewer than `k`
/// other nodes, the denominator is the achievable set size.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn precision_at_k(estimate: &[f64], truth: &[f64], source: u32, k: usize) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "estimate and truth must have equal length"
    );
    if k == 0 || truth.len() <= 1 {
        return 1.0;
    }
    let truth_top = top_k(truth, source, k);
    let est_top = top_k(estimate, source, k);
    if truth_top.is_empty() {
        return 1.0;
    }
    let truth_set: std::collections::HashSet<u32> = truth_top.iter().map(|e| e.node).collect();
    let hits = est_top
        .iter()
        .filter(|e| truth_set.contains(&e.node))
        .count();
    hits as f64 / truth_top.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_error_basic() {
        let truth = vec![0.0, 0.5, 1.0];
        let est = vec![0.1, 0.5, 0.7];
        assert!((max_error(&est, &truth) - 0.3).abs() < 1e-15);
        assert_eq!(max_error(&truth, &truth), 0.0);
    }

    #[test]
    fn average_error_basic() {
        let truth = vec![0.0, 1.0];
        let est = vec![0.2, 0.6];
        assert!((average_error(&est, &truth) - 0.3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        max_error(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    fn perfect_precision_for_identical_vectors() {
        let truth = vec![1.0, 0.9, 0.8, 0.7, 0.6];
        assert_eq!(precision_at_k(&truth, &truth, 0, 3), 1.0);
    }

    #[test]
    fn precision_counts_overlap() {
        // Source 0. Truth top-2 (excluding source): nodes 1, 2.
        let truth = vec![1.0, 0.9, 0.8, 0.1, 0.0];
        // Estimate ranks node 3 above node 2: top-2 = {1, 3} → 1 hit of 2.
        let est = vec![1.0, 0.9, 0.1, 0.8, 0.0];
        assert!((precision_at_k(&est, &truth, 0, 2) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn precision_excludes_the_source() {
        // The source has score 1 in both; it must not inflate precision.
        let truth = vec![1.0, 0.5, 0.4];
        let est = vec![1.0, 0.1, 0.4];
        // top-1 truth = {1}, top-1 estimate = {2} → precision 0.
        assert_eq!(precision_at_k(&est, &truth, 0, 1), 0.0);
    }

    #[test]
    fn precision_with_k_larger_than_graph() {
        let truth = vec![1.0, 0.5, 0.4];
        let est = vec![1.0, 0.4, 0.5];
        // Only 2 candidate nodes exist; both appear in both top sets.
        assert_eq!(precision_at_k(&est, &truth, 0, 500), 1.0);
    }

    #[test]
    fn precision_degenerate_cases() {
        assert_eq!(precision_at_k(&[1.0], &[1.0], 0, 5), 1.0);
        assert_eq!(precision_at_k(&[1.0, 0.2], &[1.0, 0.3], 0, 0), 1.0);
    }
}
