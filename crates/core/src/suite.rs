//! A uniform interface over every single-source algorithm.
//!
//! The benchmark harness sweeps parameters of five different algorithms and
//! measures the same things for each: preprocessing time, index size, query
//! time, and the resulting single-source vector. This module wraps each
//! algorithm behind [`SingleSourceAlgorithm`] so the harness (and the
//! comparison example) can treat them interchangeably.

use std::time::{Duration, Instant};

use exactsim_graph::{NeighborAccess, NodeId};

use crate::error::SimRankError;
use crate::exactsim::{ExactSim, ExactSimConfig};
use crate::linearization::{Linearization, LinearizationConfig};
use crate::mc::{MonteCarlo, MonteCarloConfig};
use crate::parsim::{ParSim, ParSimConfig};
use crate::prsim::{PrSim, PrSimConfig};

/// The output of one single-source query, uniform across algorithms.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// The similarity of every node to the query source.
    pub scores: Vec<f64>,
    /// Wall-clock query time.
    pub query_time: Duration,
}

/// A single-source SimRank algorithm with (optional) preprocessing already
/// performed.
pub trait SingleSourceAlgorithm {
    /// Short display name ("ExactSim", "MC", …) used in harness output.
    fn name(&self) -> &'static str;

    /// Answers a single-source query, measuring wall-clock time.
    fn query(&self, source: NodeId) -> Result<QueryOutput, SimRankError>;

    /// Wall-clock time spent in the preprocessing / index-building phase
    /// (zero for index-free methods).
    fn preprocessing_time(&self) -> Duration {
        Duration::ZERO
    }

    /// Size of any precomputed index in bytes (zero for index-free methods).
    fn index_bytes(&self) -> usize {
        0
    }
}

fn timed_query<F>(f: F) -> Result<QueryOutput, SimRankError>
where
    F: FnOnce() -> Result<Vec<f64>, SimRankError>,
{
    let start = Instant::now();
    let scores = f()?;
    Ok(QueryOutput {
        scores,
        query_time: start.elapsed(),
    })
}

/// [`ExactSim`] behind the uniform interface.
pub struct ExactSimAlgorithm<G: NeighborAccess> {
    solver: ExactSim<G>,
}

impl<G: NeighborAccess> ExactSimAlgorithm<G> {
    /// Wraps an ExactSim configuration (index-free, so construction is cheap).
    pub fn new(graph: G, config: ExactSimConfig) -> Result<Self, SimRankError> {
        Ok(ExactSimAlgorithm {
            solver: ExactSim::new(graph, config)?,
        })
    }
}

impl<G: NeighborAccess> SingleSourceAlgorithm for ExactSimAlgorithm<G> {
    fn name(&self) -> &'static str {
        "ExactSim"
    }

    fn query(&self, source: NodeId) -> Result<QueryOutput, SimRankError> {
        timed_query(|| self.solver.query(source).map(|r| r.scores))
    }
}

/// [`ParSim`] behind the uniform interface.
pub struct ParSimAlgorithm<G: NeighborAccess> {
    solver: ParSim<G>,
}

impl<G: NeighborAccess> ParSimAlgorithm<G> {
    /// Wraps a ParSim configuration (index-free).
    pub fn new(graph: G, config: ParSimConfig) -> Result<Self, SimRankError> {
        Ok(ParSimAlgorithm {
            solver: ParSim::new(graph, config)?,
        })
    }
}

impl<G: NeighborAccess> SingleSourceAlgorithm for ParSimAlgorithm<G> {
    fn name(&self) -> &'static str {
        "ParSim"
    }

    fn query(&self, source: NodeId) -> Result<QueryOutput, SimRankError> {
        timed_query(|| self.solver.query(source))
    }
}

/// [`MonteCarlo`] behind the uniform interface (index-based).
pub struct MonteCarloAlgorithm<G: NeighborAccess> {
    index: MonteCarlo<G>,
    preprocessing: Duration,
}

impl<G: NeighborAccess> MonteCarloAlgorithm<G> {
    /// Builds the walk index, recording the preprocessing time.
    pub fn build(graph: G, config: MonteCarloConfig) -> Result<Self, SimRankError> {
        let start = Instant::now();
        let index = MonteCarlo::build(graph, config)?;
        Ok(MonteCarloAlgorithm {
            index,
            preprocessing: start.elapsed(),
        })
    }
}

impl<G: NeighborAccess> SingleSourceAlgorithm for MonteCarloAlgorithm<G> {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn query(&self, source: NodeId) -> Result<QueryOutput, SimRankError> {
        timed_query(|| self.index.query(source))
    }

    fn preprocessing_time(&self) -> Duration {
        self.preprocessing
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }
}

/// [`Linearization`] behind the uniform interface (index-based).
pub struct LinearizationAlgorithm<G: NeighborAccess> {
    solver: Linearization<G>,
    preprocessing: Duration,
}

impl<G: NeighborAccess> LinearizationAlgorithm<G> {
    /// Runs the Monte-Carlo `D` preprocessing, recording its time.
    pub fn build(graph: G, config: LinearizationConfig) -> Result<Self, SimRankError> {
        let start = Instant::now();
        let solver = Linearization::build(graph, config)?;
        Ok(LinearizationAlgorithm {
            solver,
            preprocessing: start.elapsed(),
        })
    }
}

impl<G: NeighborAccess> SingleSourceAlgorithm for LinearizationAlgorithm<G> {
    fn name(&self) -> &'static str {
        "Linearization"
    }

    fn query(&self, source: NodeId) -> Result<QueryOutput, SimRankError> {
        timed_query(|| self.solver.query(source))
    }

    fn preprocessing_time(&self) -> Duration {
        self.preprocessing
    }

    fn index_bytes(&self) -> usize {
        self.solver.index_bytes()
    }
}

/// [`PrSim`] behind the uniform interface (index-based).
pub struct PrSimAlgorithm<G: NeighborAccess> {
    index: PrSim<G>,
    preprocessing: Duration,
}

impl<G: NeighborAccess> PrSimAlgorithm<G> {
    /// Builds the PRSim index, recording the preprocessing time.
    pub fn build(graph: G, config: PrSimConfig) -> Result<Self, SimRankError> {
        let start = Instant::now();
        let index = PrSim::build(graph, config)?;
        Ok(PrSimAlgorithm {
            index,
            preprocessing: start.elapsed(),
        })
    }
}

impl<G: NeighborAccess> SingleSourceAlgorithm for PrSimAlgorithm<G> {
    fn name(&self) -> &'static str {
        "PRSim"
    }

    fn query(&self, source: NodeId) -> Result<QueryOutput, SimRankError> {
        timed_query(|| self.index.query(source))
    }

    fn preprocessing_time(&self) -> Duration {
        self.preprocessing
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exactsim::ExactSimVariant;
    use crate::metrics::max_error;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use exactsim_graph::generators::barabasi_albert;

    #[test]
    fn all_algorithms_answer_through_the_uniform_interface() {
        let g = barabasi_albert(40, 2, true, 3).unwrap();
        let truth = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
        let exact = truth.single_source(0);

        let exactsim = ExactSimAlgorithm::new(
            &g,
            ExactSimConfig {
                epsilon: 0.1,
                variant: ExactSimVariant::Optimized,
                ..Default::default()
            },
        )
        .unwrap();
        let parsim = ParSimAlgorithm::new(&g, ParSimConfig::default()).unwrap();
        let mc = MonteCarloAlgorithm::build(
            &g,
            MonteCarloConfig {
                walks_per_node: 500,
                ..Default::default()
            },
        )
        .unwrap();
        let lin = LinearizationAlgorithm::build(
            &g,
            LinearizationConfig {
                epsilon: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let prsim = PrSimAlgorithm::build(
            &g,
            PrSimConfig {
                epsilon: 0.02,
                ..Default::default()
            },
        )
        .unwrap();

        let algorithms: Vec<&dyn SingleSourceAlgorithm> =
            vec![&exactsim, &parsim, &mc, &lin, &prsim];
        let mut names = Vec::new();
        for algo in algorithms {
            let output = algo.query(0).unwrap();
            assert_eq!(output.scores.len(), g.num_nodes());
            let err = max_error(&output.scores, &exact);
            assert!(
                err < 0.25,
                "{} error {err} is implausibly large",
                algo.name()
            );
            names.push(algo.name());
        }
        assert_eq!(
            names,
            vec!["ExactSim", "ParSim", "MC", "Linearization", "PRSim"]
        );
    }

    #[test]
    fn index_based_methods_report_nonzero_index_sizes() {
        let g = barabasi_albert(40, 2, true, 5).unwrap();
        let mc = MonteCarloAlgorithm::build(
            &g,
            MonteCarloConfig {
                walks_per_node: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(mc.index_bytes() > 0);
        let lin = LinearizationAlgorithm::build(
            &g,
            LinearizationConfig {
                epsilon: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(lin.index_bytes(), 40 * 8);
        let prsim = PrSimAlgorithm::build(&g, PrSimConfig::default()).unwrap();
        assert!(prsim.index_bytes() > 0);

        // Index-free methods report zero.
        let parsim = ParSimAlgorithm::new(&g, ParSimConfig::default()).unwrap();
        assert_eq!(parsim.index_bytes(), 0);
        assert_eq!(parsim.preprocessing_time(), Duration::ZERO);
        let exactsim = ExactSimAlgorithm::new(&g, ExactSimConfig::default()).unwrap();
        assert_eq!(exactsim.index_bytes(), 0);
    }
}
