//! Naive pair-iteration SimRank, straight from the definition.
//!
//! This implementation evaluates the defining recurrence of Jeh & Widom
//! (eq. 1 of the paper) pair by pair with Jacobi iteration. It is `O(L·n²·d²)`
//! and only usable on tiny graphs, but it is written so directly from the
//! definition that it serves as an *independent* ground truth against which
//! the (much more optimised) [`crate::power_method`] is validated — two
//! implementations agreeing to 1e-10 is strong evidence both are right.

use exactsim_graph::{DiGraph, NodeId};

use crate::config::SimRankConfig;
use crate::error::SimRankError;

/// Computes the full SimRank matrix by naive fixed-point iteration.
///
/// Returns a row-major `n × n` matrix. Intended for graphs with at most a few
/// hundred nodes (tests and examples only).
pub fn naive_simrank(
    graph: &DiGraph,
    config: SimRankConfig,
    iterations: usize,
) -> Result<Vec<f64>, SimRankError> {
    config.validate()?;
    let n = graph.num_nodes();
    if n == 0 {
        return Err(SimRankError::EmptyGraph);
    }
    let c = config.decay;
    let mut current = vec![0.0; n * n];
    for d in 0..n {
        current[d * n + d] = 1.0;
    }
    let mut next = vec![0.0; n * n];
    for _ in 0..iterations {
        for i in 0..n as NodeId {
            for j in 0..n as NodeId {
                let idx = i as usize * n + j as usize;
                if i == j {
                    next[idx] = 1.0;
                    continue;
                }
                let in_i = graph.in_neighbors(i);
                let in_j = graph.in_neighbors(j);
                if in_i.is_empty() || in_j.is_empty() {
                    next[idx] = 0.0;
                    continue;
                }
                let mut acc = 0.0;
                for &a in in_i {
                    for &b in in_j {
                        acc += current[a as usize * n + b as usize];
                    }
                }
                next[idx] = c * acc / (in_i.len() * in_j.len()) as f64;
            }
        }
        std::mem::swap(&mut current, &mut next);
    }
    Ok(current)
}

/// Convenience accessor into the row-major matrix returned by [`naive_simrank`].
pub fn entry(matrix: &[f64], n: usize, i: NodeId, j: NodeId) -> f64 {
    matrix[i as usize * n + j as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_method::{PowerMethod, PowerMethodConfig};
    use exactsim_graph::generators::barabasi_albert;
    use exactsim_graph::generators::{complete, cycle, grid, star};

    #[test]
    fn agrees_with_power_method_on_assorted_graphs() {
        let graphs = vec![
            complete(6),
            cycle(5),
            star(7, true),
            star(7, false),
            grid(3, 3),
            barabasi_albert(40, 2, false, 11).unwrap(),
            barabasi_albert(40, 2, true, 12).unwrap(),
        ];
        for (gi, g) in graphs.into_iter().enumerate() {
            let n = g.num_nodes();
            let naive = naive_simrank(&g, SimRankConfig::default(), 60).unwrap();
            let pm = PowerMethod::compute(&g, PowerMethodConfig::default()).unwrap();
            for i in 0..n as NodeId {
                for j in 0..n as NodeId {
                    let a = entry(&naive, n, i, j);
                    let b = pm.similarity(i, j);
                    assert!(
                        (a - b).abs() < 1e-9,
                        "graph #{gi}: naive({i},{j}) = {a} vs power method {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn symmetry_and_range_hold() {
        let g = barabasi_albert(30, 2, false, 3).unwrap();
        let n = g.num_nodes();
        let s = naive_simrank(&g, SimRankConfig::default(), 40).unwrap();
        for i in 0..n as NodeId {
            assert_eq!(entry(&s, n, i, i), 1.0);
            for j in 0..n as NodeId {
                let v = entry(&s, n, i, j);
                assert!((0.0..=1.0 + 1e-12).contains(&v));
                assert!((v - entry(&s, n, j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_iterations_gives_identity() {
        let g = complete(4);
        let s = naive_simrank(&g, SimRankConfig::default(), 0).unwrap();
        for i in 0..4u32 {
            for j in 0..4u32 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(entry(&s, 4, i, j), expected);
            }
        }
    }

    #[test]
    fn decay_factor_scales_similarities() {
        let g = star(5, true);
        let low = naive_simrank(&g, SimRankConfig::with_decay(0.4), 40).unwrap();
        let high = naive_simrank(&g, SimRankConfig::with_decay(0.8), 40).unwrap();
        // Distinct leaves: S = c exactly.
        assert!((entry(&low, 5, 1, 2) - 0.4).abs() < 1e-9);
        assert!((entry(&high, 5, 1, 2) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = exactsim_graph::GraphBuilder::new(0).build();
        assert!(matches!(
            naive_simrank(&g, SimRankConfig::default(), 5),
            Err(SimRankError::EmptyGraph)
        ));
    }
}
