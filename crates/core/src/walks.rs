//! The √c-walk sampling engine.
//!
//! A √c-walk from node `v` repeatedly moves to a uniformly random in-neighbor
//! of its current node with probability `√c` and stops otherwise (it also
//! stops when the current node has no in-neighbors). The probabilistic
//! interpretation of SimRank (eq. 2 of the paper) is
//!
//! ```text
//! S(i, j) = Pr[ two independent √c-walks from i and j meet ]
//! ```
//!
//! where *meet* means "visit the same node at the same step (step ≥ 1) while
//! both walks are still alive". The Monte-Carlo baseline, the diagonal
//! estimators of ExactSim (Algorithms 2 and 3) and the pooling evaluator are
//! all built from the primitives in this module.

use exactsim_graph::{NeighborAccess, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A recorded √c-walk: the sequence of nodes visited *after* the start node
/// (`positions[0]` is the node reached at step 1). Empty if the walk stopped
/// immediately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Walk {
    /// Node visited at step `t + 1` for each index `t`.
    pub positions: Vec<NodeId>,
}

impl Walk {
    /// Number of steps the walk survived.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` iff the walk stopped before making a single step.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Node occupied at step `t` (1-based); `None` if the walk had stopped.
    pub fn at_step(&self, t: usize) -> Option<NodeId> {
        if t == 0 {
            None
        } else {
            self.positions.get(t - 1).copied()
        }
    }
}

/// Creates the RNG used by every sampling component.
///
/// A dedicated constructor keeps seeding logic in one place: parallel workers
/// derive independent streams by combining the user seed with a worker index
/// through [`derive_seed`].
pub fn make_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a per-task seed from a base seed and a task index (SplitMix64-style
/// mixing), so that parallel sampling is reproducible and independent of the
/// number of worker threads.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advances a walk by one step: returns the next node, or `None` if the walk
/// stops (either by the `1 − √c` coin or because the node has no in-neighbor).
#[inline]
pub fn step<G: NeighborAccess>(
    graph: &G,
    current: NodeId,
    sqrt_c: f64,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    if rng.gen::<f64>() >= sqrt_c {
        return None;
    }
    step_forced(graph, current, rng)
}

/// Moves to a uniformly random in-neighbor without the stopping coin (used by
/// the "non-stop" walks of Algorithm 3). Returns `None` only when the node has
/// no in-neighbors.
#[inline]
pub fn step_forced<G: NeighborAccess>(
    graph: &G,
    current: NodeId,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    let neighbors = graph.in_neighbors(current);
    if neighbors.is_empty() {
        None
    } else {
        Some(neighbors[rng.gen_range(0..neighbors.len())])
    }
}

/// Samples a full √c-walk from `start`, optionally truncated at `max_steps`.
pub fn sample_walk<G: NeighborAccess>(
    graph: &G,
    start: NodeId,
    sqrt_c: f64,
    max_steps: usize,
    rng: &mut SmallRng,
) -> Walk {
    let mut positions = Vec::new();
    let mut current = start;
    for _ in 0..max_steps {
        match step(graph, current, sqrt_c, rng) {
            Some(next) => {
                positions.push(next);
                current = next;
            }
            None => break,
        }
    }
    Walk { positions }
}

/// Outcome of simulating one pair of √c-walks from the same start node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairOutcome {
    /// The walks met (same node, same step, both alive) at the recorded step.
    Met {
        /// The 1-based step at which the first meeting happened.
        step: usize,
    },
    /// At least one walk stopped before any meeting occurred.
    NoMeeting,
}

/// Simulates two independent √c-walks from `start` *simultaneously* and
/// reports whether they meet. This is the Bernoulli trial of Algorithm 2:
/// `D(k,k) = Pr[no meeting]`.
///
/// Walking both chains in lock-step and stopping at the first meeting (or the
/// first death) is equivalent to sampling both full walks and comparing, but
/// does `O(expected meeting time)` work instead of `O(walk length)`.
pub fn sample_meeting_pair<G: NeighborAccess>(
    graph: &G,
    start: NodeId,
    sqrt_c: f64,
    max_steps: usize,
    rng: &mut SmallRng,
) -> PairOutcome {
    let mut a = start;
    let mut b = start;
    for step_idx in 1..=max_steps {
        let next_a = step(graph, a, sqrt_c, rng);
        let next_b = step(graph, b, sqrt_c, rng);
        match (next_a, next_b) {
            (Some(na), Some(nb)) => {
                if na == nb {
                    return PairOutcome::Met { step: step_idx };
                }
                a = na;
                b = nb;
            }
            _ => return PairOutcome::NoMeeting,
        }
    }
    PairOutcome::NoMeeting
}

/// Checks whether two recorded walks meet (same node at the same step while
/// both are alive). Used by the Monte-Carlo single-source baseline, which
/// pairs the r-th stored walk of the source with the r-th stored walk of every
/// candidate node.
pub fn walks_meet(a: &Walk, b: &Walk) -> bool {
    a.positions
        .iter()
        .zip(b.positions.iter())
        .any(|(x, y)| x == y)
}

/// The first meeting step of two recorded walks, if any (1-based).
pub fn first_meeting_step(a: &Walk, b: &Walk) -> Option<usize> {
    a.positions
        .iter()
        .zip(b.positions.iter())
        .position(|(x, y)| x == y)
        .map(|idx| idx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::{complete, cycle, star};
    use exactsim_graph::DiGraph;

    const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)

    #[test]
    fn walk_on_source_node_stops_immediately() {
        // Leaves of a directed star have no in-neighbors.
        let g = star(5, false);
        let mut rng = make_rng(1);
        let w = sample_walk(&g, 1, SQRT_C, 100, &mut rng);
        assert!(w.is_empty());
        assert_eq!(w.at_step(1), None);
    }

    #[test]
    fn walk_respects_max_steps() {
        let g = cycle(4);
        let mut rng = make_rng(2);
        let w = sample_walk(&g, 0, 1.0, 7, &mut rng);
        assert_eq!(w.len(), 7);
    }

    #[test]
    fn walk_follows_in_edges() {
        // Cycle 0→1→2→0: the only in-neighbor of 0 is 2, of 2 is 1, of 1 is 0.
        let g = cycle(3);
        let mut rng = make_rng(3);
        let w = sample_walk(&g, 0, 1.0, 3, &mut rng);
        assert_eq!(w.positions, vec![2, 1, 0]);
    }

    #[test]
    fn stop_probability_matches_sqrt_c() {
        // On a cycle the walk never dies structurally, so the length is
        // geometric with success probability sqrt(c).
        let g = cycle(10);
        let mut rng = make_rng(4);
        let trials = 20_000;
        let total_len: usize = (0..trials)
            .map(|_| sample_walk(&g, 0, SQRT_C, 1000, &mut rng).len())
            .sum();
        let mean = total_len as f64 / trials as f64;
        let expected = SQRT_C / (1.0 - SQRT_C); // mean of geometric(1 - sqrt_c)
        assert!(
            (mean - expected).abs() < 0.1,
            "mean walk length {mean} vs expected {expected}"
        );
    }

    #[test]
    fn derive_seed_produces_distinct_streams() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        // Deterministic.
        assert_eq!(derive_seed(42, 0), s1);
    }

    #[test]
    fn meeting_pair_on_single_in_neighbor_meets_with_probability_c() {
        // Directed path 0→1: node 1 has a single in-neighbor (0), so two
        // √c-walks from 1 meet iff both take the first step: probability c.
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let mut rng = make_rng(5);
        let trials = 40_000;
        let met = (0..trials)
            .filter(|_| {
                matches!(
                    sample_meeting_pair(&g, 1, SQRT_C, 100, &mut rng),
                    PairOutcome::Met { .. }
                )
            })
            .count();
        let freq = met as f64 / trials as f64;
        assert!(
            (freq - 0.6).abs() < 0.02,
            "meeting frequency {freq} should be ~c = 0.6"
        );
    }

    #[test]
    fn meeting_pair_never_meets_from_a_source_node() {
        let g = star(6, false);
        let mut rng = make_rng(6);
        for _ in 0..100 {
            assert_eq!(
                sample_meeting_pair(&g, 2, SQRT_C, 50, &mut rng),
                PairOutcome::NoMeeting
            );
        }
    }

    #[test]
    fn meeting_step_is_at_least_one() {
        let g = complete(5);
        let mut rng = make_rng(7);
        for _ in 0..200 {
            if let PairOutcome::Met { step } = sample_meeting_pair(&g, 0, SQRT_C, 50, &mut rng) {
                assert!(step >= 1);
            }
        }
    }

    #[test]
    fn recorded_walk_meeting_detection() {
        let a = Walk {
            positions: vec![3, 5, 7],
        };
        let b = Walk {
            positions: vec![4, 5],
        };
        assert!(walks_meet(&a, &b));
        assert_eq!(first_meeting_step(&a, &b), Some(2));

        let c = Walk {
            positions: vec![5, 4],
        };
        assert!(!walks_meet(&a, &c));
        assert_eq!(first_meeting_step(&a, &c), None);

        let empty = Walk::default();
        assert!(!walks_meet(&a, &empty));
    }

    #[test]
    fn forced_step_ignores_the_coin() {
        let g = cycle(3);
        let mut rng = make_rng(8);
        for _ in 0..20 {
            assert!(step_forced(&g, 0, &mut rng).is_some());
        }
        let star_graph = star(3, false);
        assert_eq!(step_forced(&star_graph, 1, &mut rng), None);
    }
}
