//! `simrank-bench` — the core-algorithm benchmark harness.
//!
//! Times every single-source solver on a fixed family of generated graphs
//! (Erdős–Rényi, stochastic block model, preferential attachment at several
//! sizes), a set of allocation-sensitive kernel microbenches, and a
//! buffer-pool residency sweep that serves the optimized solver through the
//! paged storage backend at 25/50/100% page residency, and emits
//! `BENCH_core.json`. This file is the perf baseline every PR is measured
//! against: CI runs it with `--quick` and fails if any tracked per-op p50
//! regresses more than `--max-regression` (default 2.5×) against the
//! checked-in `bench/baseline_core.json` and `bench/baseline_paged.json`
//! (`--baseline` is repeatable), or if the paged sweep violates its own
//! gates: 100%-residency p50 within 1.5× of in-memory, and the 25%-residency
//! pool completing bit-identically with evictions > 0.
//!
//! Run it locally with
//!
//! ```text
//! cargo bench -p exactsim --bench simrank_bench -- --quick --out BENCH_core.json
//! cargo bench -p exactsim --bench simrank_bench -- \
//!     --baseline bench/baseline_core.json --quick
//! ```
//!
//! The binary is a plain `harness = false` bench target: no criterion (the
//! vendored stub has no JSON output or baselines), just wall-clock sampling
//! with p50/p99 over per-query samples.

use std::time::Instant;

use exactsim::config::SimRankConfig;
use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::linearization::{Linearization, LinearizationConfig};
use exactsim::mc::{MonteCarlo, MonteCarloConfig};
use exactsim::parsim::{ParSim, ParSimConfig};
use exactsim::prsim::{PrSim, PrSimConfig};
use exactsim_graph::generators::{
    barabasi_albert, gnm_directed, stochastic_block_model, SbmConfig,
};
use exactsim_graph::linalg::{p_multiply_sparse, pt_multiply, SparseVec, Workspace};
use exactsim_graph::{DiGraph, NodeId};

/// One measured configuration of `BENCH_core.json`.
struct Record {
    /// "query" (per-query latency), "kernel" (per-op latency), "build"
    /// (index construction, reported in ms and exempt from regression gates)
    /// or "paged" (per-query latency through the buffer-managed page store
    /// at a fixed pool residency).
    kind: &'static str,
    algo: String,
    graph: String,
    n: usize,
    m: usize,
    eps: f64,
    threads: usize,
    samples: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    build_ms: f64,
    /// Buffer-pool capacity the record ran with (0 for in-memory records).
    pool_pages: usize,
    /// Pool evictions incurred across all samples (0 for in-memory records).
    evictions: u64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"kind\":\"{}\",\"algo\":\"{}\",\"graph\":\"{}\",\"n\":{},\"m\":{},",
                "\"eps\":{:e},\"threads\":{},\"samples\":{},\"p50_us\":{:.2},",
                "\"p99_us\":{:.2},\"mean_us\":{:.2},\"build_ms\":{:.3},",
                "\"pool_pages\":{},\"evictions\":{}}}"
            ),
            self.kind,
            self.algo,
            self.graph,
            self.n,
            self.m,
            self.eps,
            self.threads,
            self.samples,
            self.p50_us,
            self.p99_us,
            self.mean_us,
            self.build_ms,
            self.pool_pages,
            self.evictions,
        )
    }

    /// The identity a baseline record is matched on. `eps` uses the same
    /// `{:e}` rendering as the JSON field so parsed baselines match exactly.
    fn key(&self) -> String {
        format!(
            "{}/{}/{}/{:e}/{}",
            self.kind, self.algo, self.graph, self.eps, self.threads
        )
    }
}

/// Per-op latency summary over a set of samples (µs).
struct Summary {
    samples: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

/// Runs `op` once for warmup and then `samples` timed times; each sample may
/// batch `iters` inner iterations (for sub-µs kernels) and reports per-op µs.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> Summary {
    op(); // warmup: first-touch allocations, page faults, lazy pools
    let mut us: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        us.push(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let pick = |q: f64| us[((q * (us.len() - 1) as f64).round() as usize).min(us.len() - 1)];
    Summary {
        samples,
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
    }
}

struct BenchGraph {
    name: &'static str,
    graph: DiGraph,
    /// `true` for the graph the acceptance criterion tracks.
    mid_size: bool,
}

fn graphs(quick: bool) -> Vec<BenchGraph> {
    let mut out = vec![
        BenchGraph {
            name: "er-1k",
            graph: gnm_directed(1_000, 6_000, 11).expect("generator"),
            mid_size: false,
        },
        BenchGraph {
            name: "sbm-1k2",
            graph: stochastic_block_model(SbmConfig {
                block_sizes: vec![400, 400, 400],
                p_within: 0.015,
                p_between: 0.001,
                seed: 13,
            })
            .expect("generator")
            .graph,
            mid_size: false,
        },
        BenchGraph {
            name: "ba-5k",
            graph: barabasi_albert(5_000, 5, true, 17).expect("generator"),
            mid_size: true,
        },
    ];
    if !quick {
        out.push(BenchGraph {
            name: "er-20k",
            graph: gnm_directed(20_000, 120_000, 19).expect("generator"),
            mid_size: false,
        });
        out.push(BenchGraph {
            name: "ba-20k",
            graph: barabasi_albert(20_000, 5, true, 23).expect("generator"),
            mid_size: false,
        });
    }
    out
}

/// Query sources spread deterministically over the node range.
fn sources(n: usize, count: usize) -> Vec<NodeId> {
    (0..count).map(|i| ((i * n) / count) as NodeId).collect()
}

fn simrank_config(threads: usize) -> SimRankConfig {
    SimRankConfig {
        threads,
        ..SimRankConfig::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn push_query_record(
    records: &mut Vec<Record>,
    algo: &str,
    bg: &BenchGraph,
    eps: f64,
    threads: usize,
    build_ms: f64,
    summary: Summary,
) {
    records.push(Record {
        kind: "query",
        algo: algo.to_string(),
        graph: bg.name.to_string(),
        n: bg.graph.num_nodes(),
        m: bg.graph.num_edges(),
        eps,
        threads,
        samples: summary.samples,
        p50_us: summary.p50_us,
        p99_us: summary.p99_us,
        mean_us: summary.mean_us,
        build_ms,
        pool_pages: 0,
        evictions: 0,
    });
}

fn bench_algorithms(records: &mut Vec<Record>, bg: &BenchGraph, quick: bool, threads: usize) {
    let n = bg.graph.num_nodes();
    let samples = if quick { 9 } else { 25 };
    let srcs = sources(n, samples);
    let mut next = {
        let mut i = 0usize;
        let srcs = srcs.clone();
        move || {
            let s = srcs[i % srcs.len()];
            i += 1;
            s
        }
    };

    // ExactSim optimized — the tentpole target. Budgeted like the serving
    // configuration so a query is ms-scale, not the paper's 1e-7 regime.
    let eps_opt = 1e-3;
    let opt = ExactSim::new(
        &bg.graph,
        ExactSimConfig {
            simrank: simrank_config(1),
            epsilon: eps_opt,
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(200_000),
            ..Default::default()
        },
    )
    .expect("exactsim");
    let summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(opt.query(s).expect("query"));
    });
    push_query_record(records, "exactsim_opt", bg, eps_opt, 1, 0.0, summary);

    if threads > 1 {
        let opt_mt = ExactSim::new(
            &bg.graph,
            ExactSimConfig {
                simrank: simrank_config(threads),
                epsilon: eps_opt,
                variant: ExactSimVariant::Optimized,
                walk_budget: Some(200_000),
                ..Default::default()
            },
        )
        .expect("exactsim");
        let summary = measure(samples, 1, || {
            let s = next();
            std::hint::black_box(opt_mt.query(s).expect("query"));
        });
        push_query_record(records, "exactsim_opt", bg, eps_opt, threads, 0.0, summary);
    }

    // ExactSim basic (dense hop vectors, Bernoulli D).
    let eps_basic = 1e-2;
    let basic = ExactSim::new(
        &bg.graph,
        ExactSimConfig {
            simrank: simrank_config(1),
            epsilon: eps_basic,
            variant: ExactSimVariant::Basic,
            walk_budget: Some(100_000),
            ..Default::default()
        },
    )
    .expect("exactsim basic");
    let summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(basic.query(s).expect("query"));
    });
    push_query_record(records, "exactsim_basic", bg, eps_basic, 1, 0.0, summary);

    // ParSim (index-free, deterministic).
    let parsim = ParSim::new(
        &bg.graph,
        ParSimConfig {
            simrank: simrank_config(1),
            iterations: 30,
        },
    )
    .expect("parsim");
    let summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(parsim.query(s).expect("query"));
    });
    push_query_record(records, "parsim", bg, 1e-2, 1, 0.0, summary);

    // Linearization (Monte-Carlo D preprocessing).
    let eps_lin = 0.05;
    let build = Instant::now();
    let lin = Linearization::build(
        &bg.graph,
        LinearizationConfig {
            simrank: simrank_config(1),
            epsilon: eps_lin,
            walk_budget: Some(500_000),
        },
    )
    .expect("linearization");
    let lin_build_ms = build.elapsed().as_secs_f64() * 1e3;
    let summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(lin.query(s).expect("query"));
    });
    push_query_record(
        records,
        "linearization",
        bg,
        eps_lin,
        1,
        lin_build_ms,
        summary,
    );

    // MC (stored-walk index).
    let build = Instant::now();
    let mc = MonteCarlo::build(
        &bg.graph,
        MonteCarloConfig {
            simrank: simrank_config(1),
            walks_per_node: if quick { 100 } else { 200 },
            walk_length: 10,
        },
    )
    .expect("mc");
    let mc_build_ms = build.elapsed().as_secs_f64() * 1e3;
    let summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(mc.query(s).expect("query"));
    });
    push_query_record(records, "mc", bg, 1e-1, 1, mc_build_ms, summary);

    // PRSim (inverted hop-column index).
    let eps_prsim = 1e-2;
    let build = Instant::now();
    let prsim = PrSim::build(
        &bg.graph,
        PrSimConfig {
            simrank: simrank_config(1),
            epsilon: eps_prsim,
            walk_budget: Some(200_000),
            max_index_entries: Some(20_000_000),
        },
    )
    .expect("prsim");
    let prsim_build_ms = build.elapsed().as_secs_f64() * 1e3;
    let summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(prsim.query(s).expect("query"));
    });
    push_query_record(records, "prsim", bg, eps_prsim, 1, prsim_build_ms, summary);
}

/// Allocation-sensitive kernel microbenches on the mid-size graph: these are
/// the per-op costs the Scratch/Workspace reuse work targets.
fn bench_kernels(records: &mut Vec<Record>, bg: &BenchGraph, quick: bool) {
    let g = &bg.graph;
    let n = g.num_nodes();
    let samples = if quick { 9 } else { 25 };
    let mut push = |algo: &str, summary: Summary| {
        records.push(Record {
            kind: "kernel",
            algo: algo.to_string(),
            graph: bg.name.to_string(),
            n,
            m: g.num_edges(),
            eps: 0.0,
            threads: 1,
            samples: summary.samples,
            p50_us: summary.p50_us,
            p99_us: summary.p99_us,
            mean_us: summary.mean_us,
            build_ms: 0.0,
            pool_pages: 0,
            evictions: 0,
        });
    };

    // Sparse P·x with a reused workspace, on a support that has spread for a
    // few levels (the shape the diagonal exploration sees).
    let mut ws = Workspace::new(n);
    let mut x = SparseVec::unit(0, 1.0);
    for _ in 0..3 {
        x = p_multiply_sparse(g, &x, &mut ws);
    }
    push(
        "p_multiply_sparse",
        measure(samples, 50, || {
            std::hint::black_box(p_multiply_sparse(g, &x, &mut ws));
        }),
    );

    // Dense Pᵀ·x — the accumulation step of every Linearization-style solver.
    let xd = vec![1.0 / n as f64; n];
    let mut yd = vec![0.0; n];
    push(
        "pt_multiply_dense",
        measure(samples, 20, || {
            pt_multiply(g, &xd, &mut yd);
            std::hint::black_box(&yd);
        }),
    );

    // SparseVec::from_unsorted on a duplicate-heavy unsorted entry list (the
    // aggregate-vector build path of sparse_hop_vectors).
    let entries: Vec<(NodeId, f64)> = (0..20_000)
        .map(|i| (((i * 7919) % n) as NodeId, 1e-4))
        .collect();
    push(
        "sparse_vec_from_unsorted",
        measure(samples, 20, || {
            std::hint::black_box(SparseVec::from_unsorted(entries.clone()));
        }),
    );

    // Repeated identical optimized queries: after the Scratch work this path
    // performs no per-query accumulator allocation.
    let opt = ExactSim::new(
        g,
        ExactSimConfig {
            simrank: simrank_config(1),
            epsilon: 1e-3,
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(200_000),
            ..Default::default()
        },
    )
    .expect("exactsim");
    push(
        "exactsim_opt_repeat",
        measure(samples, 1, || {
            std::hint::black_box(opt.query(0).expect("query"));
        }),
    );
}

/// Buffer-pool residency sweep on the mid-size graph: images its CSR into a
/// page file, then serves the same optimized-ExactSim queries through a
/// [`PagedGraph`] with the buffer pool sized to 25%, 50% and 100% of the
/// file's page count, next to an in-memory reference over the identical
/// source rotation (`exactsim_opt_mem`). Emits one `kind:"paged"` record per
/// configuration, carrying the pool capacity and the evictions incurred.
///
/// Returns the paged backend's acceptance-gate failures instead of exiting,
/// so `main` can still write the full `BENCH_core.json` first:
///
/// 1. the fully-resident pool (100%) must answer within 1.5× of the
///    in-memory p50 — the pool hit path is bookkeeping, not I/O;
/// 2. the thrashing pool (25%) must have evicted pages — otherwise the sweep
///    is not exercising replacement at all;
/// 3. the thrashing pool must return bit-identical scores to the in-memory
///    solver (the whole point of the `NeighborAccess` split).
fn bench_paged(records: &mut Vec<Record>, bg: &BenchGraph, quick: bool) -> Vec<String> {
    use exactsim_store::{BufferPool, PagedGraph, DEFAULT_PAGE_BYTES};
    use std::sync::Arc;

    let samples = if quick { 9 } else { 25 };
    let srcs = sources(bg.graph.num_nodes(), samples);
    let rotation = |srcs: &[NodeId]| {
        let srcs = srcs.to_vec();
        let mut i = 0usize;
        move || {
            let s = srcs[i % srcs.len()];
            i += 1;
            s
        }
    };
    let eps = 1e-3;
    let config = || ExactSimConfig {
        simrank: simrank_config(1),
        epsilon: eps,
        variant: ExactSimVariant::Optimized,
        walk_budget: Some(200_000),
        ..Default::default()
    };
    let mut push = |algo: &str, pool_pages: usize, evictions: u64, summary: Summary| {
        records.push(Record {
            kind: "paged",
            algo: algo.to_string(),
            graph: bg.name.to_string(),
            n: bg.graph.num_nodes(),
            m: bg.graph.num_edges(),
            eps,
            threads: 1,
            samples: summary.samples,
            p50_us: summary.p50_us,
            p99_us: summary.p99_us,
            mean_us: summary.mean_us,
            build_ms: 0.0,
            pool_pages,
            evictions,
        });
    };

    // In-memory reference with the exact same source rotation, so the paged
    // records are compared against like work, not the rotated-offset
    // `exactsim_opt` record above.
    let mem = ExactSim::new(&bg.graph, config()).expect("exactsim");
    let mut next = rotation(&srcs);
    let mem_summary = measure(samples, 1, || {
        let s = next();
        std::hint::black_box(mem.query(s).expect("query"));
    });
    let mem_p50 = mem_summary.p50_us;
    push("exactsim_opt_mem", 0, 0, mem_summary);

    let path = std::env::temp_dir().join(format!("simrank-bench-{}.espg", std::process::id()));
    PagedGraph::build(&path, &bg.graph, 0, DEFAULT_PAGE_BYTES).expect("page-file image");
    let total_pages = PagedGraph::open(&path, Arc::new(BufferPool::new(2)))
        .expect("page file")
        .num_pages();

    let mut failures = Vec::new();
    for (tag, pct) in [("r25", 25usize), ("r50", 50), ("r100", 100)] {
        // Round up and floor at 2 frames (single-threaded queries pin at
        // most one page at a time; 2 keeps the clock hand meaningful).
        let cap = (total_pages * pct).div_ceil(100).max(2);
        let pool = Arc::new(BufferPool::new(cap));
        let paged = PagedGraph::open(&path, Arc::clone(&pool)).expect("page file");
        let solver = ExactSim::new(&paged, config()).expect("exactsim paged");
        let mut next = rotation(&srcs);
        let summary = measure(samples, 1, || {
            let s = next();
            std::hint::black_box(solver.query(s).expect("query"));
        });
        let stats = pool.stats();
        eprintln!(
            "[simrank-bench] paged {tag}: {cap}/{total_pages} pages, p50 {:.1}µs \
             (mem {mem_p50:.1}µs), {} evictions, {:.1}% hit rate",
            summary.p50_us,
            stats.evictions,
            stats.hit_rate() * 100.0
        );
        match tag {
            // Same 100µs noise floor as the baseline gate: the ratio is
            // meant to catch a hit path that grew I/O or lock convoys, not
            // scheduler jitter on sub-100µs queries.
            "r100" if summary.p50_us > mem_p50.max(100.0) * 1.5 => failures.push(format!(
                "paged/{}/r100: p50 {:.1}µs exceeds 1.5x the in-memory {:.1}µs",
                bg.name, summary.p50_us, mem_p50
            )),
            "r25" if stats.evictions == 0 => failures.push(format!(
                "paged/{}/r25: pool of {cap}/{total_pages} pages incurred no evictions",
                bg.name
            )),
            "r25" => {
                let s = srcs[0];
                let a = mem.query(s).expect("query").scores;
                let b = solver.query(s).expect("query").scores;
                if a != b {
                    failures.push(format!(
                        "paged/{}/r25: scores for source {s} diverge from in-memory",
                        bg.name
                    ));
                }
            }
            _ => {}
        }
        push(
            &format!("exactsim_opt_{tag}"),
            cap,
            stats.evictions,
            summary,
        );
    }
    let _ = std::fs::remove_file(&path);
    failures
}

/// Minimal extraction of `"key":value` number pairs from the baseline JSON —
/// enough to read back the file this binary writes (no serde offline).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let field = |name: &str| -> Option<String> {
            let tag = format!("\"{name}\":");
            let rest = &obj[obj.find(&tag)? + tag.len()..];
            let rest = rest.trim_start_matches('"');
            let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
            Some(rest[..end].to_string())
        };
        let (Some(kind), Some(algo), Some(graph), Some(eps), Some(threads), Some(p50)) = (
            field("kind"),
            field("algo"),
            field("graph"),
            field("eps"),
            field("threads"),
            field("p50_us"),
        ) else {
            continue;
        };
        if kind == "meta" {
            continue;
        }
        let Ok(p50) = p50.parse::<f64>() else {
            continue;
        };
        out.push((format!("{kind}/{algo}/{graph}/{eps}/{threads}"), p50));
    }
    out
}

/// Resolves a path argument. `cargo bench` runs this binary with the package
/// directory (`crates/core`) as cwd, but the documented interface — the CI
/// job, the README recipes, the checked-in baseline — is repo-root-relative,
/// so relative paths are anchored at the workspace root.
fn resolve_path(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() {
        return p;
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/core has a workspace root two levels up")
        .join(p)
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_core.json");
    let mut baselines: Vec<String> = Vec::new();
    let mut max_regression = 2.5f64;
    let mut threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            // Repeatable: CI gates one run against both the core and the
            // paged baselines.
            "--baseline" => baselines.push(args.next().expect("--baseline needs a path")),
            "--max-regression" => {
                max_regression = args
                    .next()
                    .expect("--max-regression needs a factor")
                    .parse()
                    .expect("--max-regression must be a number")
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads must be a number")
            }
            // `cargo bench` may forward harness flags; ignore them.
            other => eprintln!("simrank-bench: ignoring unknown argument {other:?}"),
        }
    }

    let mut records = Vec::new();
    let mut paged_failures = Vec::new();
    for bg in &graphs(quick) {
        eprintln!(
            "[simrank-bench] {} (n={}, m={})",
            bg.name,
            bg.graph.num_nodes(),
            bg.graph.num_edges()
        );
        bench_algorithms(&mut records, bg, quick, threads);
        if bg.mid_size {
            bench_kernels(&mut records, bg, quick);
            paged_failures = bench_paged(&mut records, bg, quick);
        }
    }

    let body: Vec<String> = records.iter().map(Record::to_json).collect();
    let json = format!(
        "{{\"suite\":\"core\",\"mode\":\"{}\",\"records\":[\n  {}\n]}}\n",
        if quick { "quick" } else { "full" },
        body.join(",\n  ")
    );
    let out_path = resolve_path(&out_path);
    std::fs::write(&out_path, &json).expect("write BENCH_core.json");
    eprintln!(
        "[simrank-bench] wrote {} records to {}",
        records.len(),
        out_path.display()
    );
    for r in &records {
        eprintln!(
            "  {:<8} {:<24} {:<8} p50 {:>10.1}µs  p99 {:>10.1}µs  build {:>8.1}ms",
            r.kind,
            format!("{}@{}", r.algo, r.graph),
            format!("t={}", r.threads),
            r.p50_us,
            r.p99_us,
            r.build_ms
        );
    }

    if !paged_failures.is_empty() {
        for f in &paged_failures {
            eprintln!("[simrank-bench] PAGED GATE {f}");
        }
        std::process::exit(1);
    }

    for path in baselines {
        let path = resolve_path(&path);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let base = parse_baseline(&text);
        let mut failures = Vec::new();
        let mut compared = 0usize;
        for r in &records {
            let Some((_, base_p50)) = base.iter().find(|(k, _)| *k == r.key()) else {
                continue;
            };
            compared += 1;
            // Floor the baseline at 100µs before applying the ratio: the
            // sub-100µs records (PRSim queries, kernel microbenches) are
            // dominated by scheduler noise across machines — the checked-in
            // baseline and the CI runner are different hardware — and a raw
            // ratio there gates noise, not code. The tentpole targets are
            // ms-scale and unaffected by the floor.
            let allowed = base_p50.max(100.0) * max_regression;
            if r.p50_us > allowed {
                failures.push(format!(
                    "{}: p50 {:.1}µs exceeds {:.1}µs ({}µs baseline × {max_regression})",
                    r.key(),
                    r.p50_us,
                    allowed,
                    base_p50
                ));
            }
        }
        eprintln!(
            "[simrank-bench] baseline check vs {}: {compared} records compared",
            path.display()
        );
        if compared == 0 {
            eprintln!("[simrank-bench] FAIL: no baseline records matched (stale baseline?)");
            std::process::exit(1);
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("[simrank-bench] REGRESSION {f}");
            }
            std::process::exit(1);
        }
        eprintln!("[simrank-bench] baseline check passed (max allowed {max_regression}x)");
    }
}
