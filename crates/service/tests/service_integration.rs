//! Integration tests for the serving subsystem — these encode the PR's
//! acceptance criteria:
//!
//! (a) cached single-source results are *exactly* equal to direct library
//!     calls (`ExactSim::query` and friends derive their randomness from
//!     `(seed, source)`, so the service adds no nondeterminism);
//! (b) a batch of 100 queries over 10 distinct sources on 8 workers performs
//!     at most 10 underlying computations (cache + in-flight dedup);
//! (c) `ServiceStats` reports a hit rate ≥ 0.85 for that workload.

use std::sync::Arc;

use exactsim::exactsim::{ExactSim, ExactSimConfig};
use exactsim::mc::{MonteCarlo, MonteCarloConfig};
use exactsim::prsim::{PrSim, PrSimConfig};
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_service::{AlgorithmKind, BatchRequest, ServiceConfig, SimRankService};

fn test_graph(n: usize, seed: u64) -> Arc<DiGraph> {
    Arc::new(barabasi_albert(n, 3, true, seed).unwrap())
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 8,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(100_000),
            ..ExactSimConfig::default()
        },
        prsim: PrSimConfig {
            epsilon: 2e-2,
            ..PrSimConfig::default()
        },
        mc: MonteCarloConfig {
            walks_per_node: 200,
            ..MonteCarloConfig::default()
        },
        ..ServiceConfig::default()
    }
}

#[test]
fn cached_answers_are_bit_identical_to_direct_library_calls() {
    let graph = test_graph(150, 11);
    let config = test_config();
    let service = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();

    for source in [0u32, 7, 42] {
        // Serve twice: the first call computes, the second must come from the
        // cache — and both must equal the direct library answer bit-for-bit.
        let first = service.query(AlgorithmKind::ExactSim, source).unwrap();
        let second = service.query(AlgorithmKind::ExactSim, source).unwrap();
        let direct = ExactSim::new(graph.as_ref(), config.exactsim.clone())
            .unwrap()
            .query(source)
            .unwrap();
        assert_eq!(
            first.scores, direct.scores,
            "source {source}: serve != direct"
        );
        assert_eq!(
            second.scores, direct.scores,
            "source {source}: cached != direct"
        );
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache must share the response"
        );
    }

    let direct_prsim = PrSim::build(graph.as_ref(), config.prsim).unwrap();
    let served_prsim = service.query(AlgorithmKind::PrSim, 3).unwrap();
    assert_eq!(served_prsim.scores, direct_prsim.query(3).unwrap());

    let direct_mc = MonteCarlo::build(graph.as_ref(), config.mc).unwrap();
    let served_mc = service.query(AlgorithmKind::MonteCarlo, 3).unwrap();
    assert_eq!(served_mc.scores, direct_mc.query(3).unwrap());

    let snap = service.stats();
    assert_eq!(snap.cache_hits, 3, "one repeat per ExactSim source");
    assert_eq!(snap.computations, 5, "3 ExactSim + 1 PRSim + 1 MC");
}

#[test]
fn batch_of_100_over_10_sources_on_8_workers_deduplicates() {
    let service = SimRankService::new(test_graph(200, 23), test_config()).unwrap();
    assert_eq!(service.workers(), 8);

    // 100 queries, 10 distinct sources, interleaved so that concurrent
    // duplicates actually race through the in-flight table.
    let requests: Vec<BatchRequest> = (0..100)
        .map(|i| BatchRequest {
            algorithm: AlgorithmKind::ExactSim,
            source: (i % 10) as u32,
            top_k: if i % 3 == 0 { Some(10) } else { None },
        })
        .collect();
    let items = service.run_batch(requests);
    assert_eq!(items.len(), 100);
    for item in &items {
        assert!(item.outcome.is_ok(), "request {} failed", item.index);
    }

    let snap = service.stats();
    assert_eq!(snap.queries, 100);
    assert!(
        snap.computations <= 10,
        "dedup failed: {} computations for 10 distinct sources",
        snap.computations
    );
    assert!(
        snap.hit_rate >= 0.85,
        "hit rate {:.3} below the 0.85 acceptance bar ({} hits, {} joins)",
        snap.hit_rate,
        snap.cache_hits,
        snap.dedup_joins
    );
    // Every query must have been answered one of the three ways.
    assert_eq!(snap.cache_hits + snap.dedup_joins + snap.computations, 100);
}

#[test]
fn thundering_herd_on_one_source_computes_once_and_agrees() {
    let service = SimRankService::new(test_graph(150, 31), test_config()).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(8));

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let service = service.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.query(AlgorithmKind::ExactSim, 5).unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let reference = &responses[0];
    for r in &responses[1..] {
        assert_eq!(
            r.scores, reference.scores,
            "threads observed different answers"
        );
    }
    let snap = service.stats();
    assert_eq!(snap.queries, 8);
    assert_eq!(
        snap.computations, 1,
        "exactly one thread should have computed (got {} computations, {} hits, {} joins)",
        snap.computations, snap.cache_hits, snap.dedup_joins
    );
    assert_eq!(snap.cache_hits + snap.dedup_joins, 7);
    assert_eq!(service.in_flight(), 0, "in-flight table must drain");
}

#[test]
fn topk_batches_agree_with_library_topk() {
    let graph = test_graph(120, 47);
    let config = test_config();
    let service = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();

    let top = service.top_k(AlgorithmKind::ExactSim, 9, 7).unwrap();
    let direct = ExactSim::new(graph.as_ref(), config.exactsim.clone())
        .unwrap()
        .query(9)
        .unwrap();
    let expected = exactsim::topk::top_k(&direct.scores, 9, 7);
    assert_eq!(top.entries, expected);
    assert_eq!(top.k, 7);
    assert!(top.entries.iter().all(|e| e.node != 9), "source excluded");
}

#[test]
fn eviction_under_pressure_keeps_serving_correct_answers() {
    let graph = test_graph(100, 53);
    // A cache of 4 entries in one shard under 20 distinct sources: constant
    // eviction, every answer still correct.
    let config = ServiceConfig {
        cache_capacity: 4,
        cache_shards: 1,
        ..test_config()
    };
    let service = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();
    let solver = ExactSim::new(graph.as_ref(), config.exactsim.clone()).unwrap();
    for round in 0..2 {
        for source in 0..20u32 {
            let served = service.query(AlgorithmKind::ExactSim, source).unwrap();
            assert_eq!(
                served.scores,
                solver.query(source).unwrap().scores,
                "round {round} source {source}"
            );
        }
    }
    let snap = service.stats();
    assert!(snap.evictions > 0, "capacity 4 under 20 sources must evict");
    assert!(snap.cached_entries <= 4);
    assert_eq!(snap.queries, 40);
}
