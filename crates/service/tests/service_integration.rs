//! Integration tests for the serving subsystem — these encode the serving
//! and dynamic-update PRs' acceptance criteria:
//!
//! (a) cached single-source results are *exactly* equal to direct library
//!     calls (`ExactSim::query` and friends derive their randomness from
//!     `(seed, source)`, so the service adds no nondeterminism);
//! (b) a batch of 100 queries over 10 distinct sources on 8 workers performs
//!     at most 10 underlying computations (cache + in-flight dedup);
//! (c) `ServiceStats` reports a hit rate ≥ 0.85 for that workload;
//! (d) a store commit racing live queries is atomic: every answer equals the
//!     pre-commit or the post-commit column bit-for-bit (never a mix of
//!     epochs), no query fails, and post-commit answers are bit-identical to
//!     a from-scratch service built on the new graph.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use exactsim::exactsim::{ExactSim, ExactSimConfig};
use exactsim::mc::{MonteCarlo, MonteCarloConfig};
use exactsim::prsim::{PrSim, PrSimConfig};
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_service::{AlgorithmKind, BatchRequest, GraphStore, ServiceConfig, SimRankService};

fn test_graph(n: usize, seed: u64) -> Arc<DiGraph> {
    Arc::new(barabasi_albert(n, 3, true, seed).unwrap())
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 8,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(100_000),
            ..ExactSimConfig::default()
        },
        prsim: PrSimConfig {
            epsilon: 2e-2,
            ..PrSimConfig::default()
        },
        mc: MonteCarloConfig {
            walks_per_node: 200,
            ..MonteCarloConfig::default()
        },
        ..ServiceConfig::default()
    }
}

#[test]
fn cached_answers_are_bit_identical_to_direct_library_calls() {
    let graph = test_graph(150, 11);
    let config = test_config();
    let service = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();

    for source in [0u32, 7, 42] {
        // Serve twice: the first call computes, the second must come from the
        // cache — and both must equal the direct library answer bit-for-bit.
        let first = service.query(AlgorithmKind::ExactSim, source).unwrap();
        let second = service.query(AlgorithmKind::ExactSim, source).unwrap();
        let direct = ExactSim::new(graph.as_ref(), config.exactsim.clone())
            .unwrap()
            .query(source)
            .unwrap();
        assert_eq!(
            first.scores, direct.scores,
            "source {source}: serve != direct"
        );
        assert_eq!(
            second.scores, direct.scores,
            "source {source}: cached != direct"
        );
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache must share the response"
        );
    }

    let direct_prsim = PrSim::build(graph.as_ref(), config.prsim).unwrap();
    let served_prsim = service.query(AlgorithmKind::PrSim, 3).unwrap();
    assert_eq!(served_prsim.scores, direct_prsim.query(3).unwrap());

    let direct_mc = MonteCarlo::build(graph.as_ref(), config.mc).unwrap();
    let served_mc = service.query(AlgorithmKind::MonteCarlo, 3).unwrap();
    assert_eq!(served_mc.scores, direct_mc.query(3).unwrap());

    let snap = service.stats();
    assert_eq!(snap.cache_hits, 3, "one repeat per ExactSim source");
    assert_eq!(snap.computations, 5, "3 ExactSim + 1 PRSim + 1 MC");
}

#[test]
fn batch_of_100_over_10_sources_on_8_workers_deduplicates() {
    let service = SimRankService::new(test_graph(200, 23), test_config()).unwrap();
    assert_eq!(service.workers(), 8);

    // 100 queries, 10 distinct sources, interleaved so that concurrent
    // duplicates actually race through the in-flight table.
    let requests: Vec<BatchRequest> = (0..100)
        .map(|i| BatchRequest {
            algorithm: AlgorithmKind::ExactSim,
            source: (i % 10) as u32,
            top_k: if i % 3 == 0 { Some(10) } else { None },
        })
        .collect();
    let items = service.run_batch(requests);
    assert_eq!(items.len(), 100);
    for item in &items {
        assert!(item.outcome.is_ok(), "request {} failed", item.index);
    }

    let snap = service.stats();
    assert_eq!(snap.queries, 100);
    assert!(
        snap.computations <= 10,
        "dedup failed: {} computations for 10 distinct sources",
        snap.computations
    );
    assert!(
        snap.hit_rate >= 0.85,
        "hit rate {:.3} below the 0.85 acceptance bar ({} hits, {} joins)",
        snap.hit_rate,
        snap.cache_hits,
        snap.dedup_joins
    );
    // Every query must have been answered one of the three ways.
    assert_eq!(snap.cache_hits + snap.dedup_joins + snap.computations, 100);
}

#[test]
fn thundering_herd_on_one_source_computes_once_and_agrees() {
    let service = SimRankService::new(test_graph(150, 31), test_config()).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(8));

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let service = service.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.query(AlgorithmKind::ExactSim, 5).unwrap()
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let reference = &responses[0];
    for r in &responses[1..] {
        assert_eq!(
            r.scores, reference.scores,
            "threads observed different answers"
        );
    }
    let snap = service.stats();
    assert_eq!(snap.queries, 8);
    assert_eq!(
        snap.computations, 1,
        "exactly one thread should have computed (got {} computations, {} hits, {} joins)",
        snap.computations, snap.cache_hits, snap.dedup_joins
    );
    assert_eq!(snap.cache_hits + snap.dedup_joins, 7);
    assert_eq!(service.in_flight(), 0, "in-flight table must drain");
}

#[test]
fn topk_batches_agree_with_library_topk() {
    let graph = test_graph(120, 47);
    let config = test_config();
    let service = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();

    let top = service.top_k(AlgorithmKind::ExactSim, 9, 7).unwrap();
    let direct = ExactSim::new(graph.as_ref(), config.exactsim.clone())
        .unwrap()
        .query(9)
        .unwrap();
    let expected = exactsim::topk::top_k(&direct.scores, 9, 7);
    assert_eq!(top.entries, expected);
    assert_eq!(top.k, 7);
    assert!(top.entries.iter().all(|e| e.node != 9), "source excluded");
}

#[test]
fn commit_racing_live_queries_is_atomic_and_matches_a_fresh_service() {
    const SOURCES: u32 = 4;
    const THREADS: usize = 6;
    const QUERIES_PER_THREAD: usize = 12;

    let base = test_graph(80, 61);
    let config = test_config();
    // The delta rewires the neighborhood of every queried source, so the
    // pre- and post-commit columns differ and "never a mix" is observable.
    let insertions = [(0u32, 70u32), (1, 71), (2, 72), (3, 73)];
    let deletions: Vec<(u32, u32)> = (0..SOURCES)
        .map(|s| {
            (
                s,
                *base.out_neighbors(s).first().expect("BA graphs are dense"),
            )
        })
        .collect();

    // Ground truth for both epochs, via the same delta path the store uses.
    let mut sorted_ins = insertions.to_vec();
    sorted_ins.sort_unstable();
    let mut sorted_del = deletions.clone();
    sorted_del.sort_unstable();
    let updated = Arc::new(base.apply_delta(&sorted_ins, &sorted_del));
    let pre: Vec<Vec<f64>> = (0..SOURCES)
        .map(|s| {
            ExactSim::new(base.as_ref(), config.exactsim.clone())
                .unwrap()
                .query(s)
                .unwrap()
                .scores
        })
        .collect();
    let post: Vec<Vec<f64>> = (0..SOURCES)
        .map(|s| {
            ExactSim::new(updated.as_ref(), config.exactsim.clone())
                .unwrap()
                .query(s)
                .unwrap()
                .scores
        })
        .collect();
    for s in 0..SOURCES as usize {
        assert_ne!(pre[s], post[s], "delta must change source {s}'s column");
    }

    let store = Arc::new(GraphStore::new(Arc::clone(&base)));
    let service = SimRankService::with_store(Arc::clone(&store), config.clone()).unwrap();

    // Warm the epoch-0 cache so the commit demonstrably invalidates entries.
    for s in 0..SOURCES {
        let warm = service.query(AlgorithmKind::ExactSim, s).unwrap();
        assert_eq!(
            warm.scores, pre[s as usize],
            "pre-commit must match epoch 0"
        );
    }

    // Race: THREADS query loops vs. one commit fired right after the start
    // barrier. In-flight queries finish on whatever epoch they captured.
    let start = Barrier::new(THREADS + 1);
    let committed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut checkers = Vec::new();
        for t in 0..THREADS {
            let service = service.clone();
            let (start, committed) = (&start, &committed);
            let (pre, post) = (&pre, &post);
            checkers.push(scope.spawn(move || {
                start.wait();
                // Loop until this thread has both done its quota of racing
                // queries AND observed the commit, so every thread provably
                // exercises the post-commit path (the loop terminates: the
                // main thread always commits).
                let mut i = 0usize;
                loop {
                    let source = ((t + i) as u32) % SOURCES;
                    let commit_was_done = committed.load(Ordering::SeqCst);
                    let response = service
                        .query(AlgorithmKind::ExactSim, source)
                        .expect("zero downtime: no query may fail during a commit");
                    let s = source as usize;
                    // Atomicity: each answer is exactly one epoch's column.
                    assert!(
                        response.scores == pre[s] || response.scores == post[s],
                        "thread {t} query {i}: answer matches neither epoch (a mix?)"
                    );
                    // Monotonicity: a query issued after the commit returned
                    // must see the new epoch (the service refreshes lazily
                    // but before answering).
                    if commit_was_done {
                        assert_eq!(
                            response.scores, post[s],
                            "thread {t} query {i}: stale answer after commit"
                        );
                    }
                    i += 1;
                    if i >= QUERIES_PER_THREAD && commit_was_done {
                        break;
                    }
                }
            }));
        }

        start.wait();
        for &(u, v) in &insertions {
            assert!(store.stage_insert(u, v).unwrap().changed());
        }
        for &(u, v) in &deletions {
            assert!(store.stage_delete(u, v).unwrap().changed());
        }
        let report = store.commit().unwrap();
        committed.store(true, Ordering::SeqCst);
        assert!(report.advanced());
        assert_eq!(report.epoch, 1);
        assert_eq!(report.edges_inserted, insertions.len());
        assert_eq!(report.edges_deleted, deletions.len());

        for checker in checkers {
            checker.join().unwrap();
        }
    });

    // Post-commit serving must be bit-identical to a from-scratch service
    // built on the new graph.
    let fresh = SimRankService::new(Arc::clone(&updated), config).unwrap();
    for s in 0..SOURCES {
        let live = service.query(AlgorithmKind::ExactSim, s).unwrap();
        let scratch = fresh.query(AlgorithmKind::ExactSim, s).unwrap();
        assert_eq!(
            live.scores, scratch.scores,
            "source {s}: post-commit service != fresh service on the new graph"
        );
        assert_eq!(live.scores, post[s as usize]);
    }

    let snap = service.stats();
    assert_eq!(snap.epoch, 1, "commit must bump the served epoch");
    assert_eq!(snap.errors, 0, "zero serving-loop downtime");
    assert_eq!(snap.epoch_refreshes, 1, "exactly one generation swap");
    assert!(
        snap.invalidations >= SOURCES as u64,
        "the warmed epoch-0 entries must have been swept (got {})",
        snap.invalidations
    );
    assert_eq!(service.in_flight(), 0, "in-flight table must drain");
}

#[test]
fn eviction_under_pressure_keeps_serving_correct_answers() {
    let graph = test_graph(100, 53);
    // A cache of 4 entries in one shard under 20 distinct sources: constant
    // eviction, every answer still correct.
    let config = ServiceConfig {
        cache_capacity: 4,
        cache_shards: 1,
        ..test_config()
    };
    let service = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();
    let solver = ExactSim::new(graph.as_ref(), config.exactsim.clone()).unwrap();
    for round in 0..2 {
        for source in 0..20u32 {
            let served = service.query(AlgorithmKind::ExactSim, source).unwrap();
            assert_eq!(
                served.scores,
                solver.query(source).unwrap().scores,
                "round {round} source {source}"
            );
        }
    }
    let snap = service.stats();
    assert!(snap.evictions > 0, "capacity 4 under 20 sources must evict");
    assert!(snap.cached_entries <= 4);
    assert_eq!(snap.queries, 40);
}
