//! End-to-end coverage of the observability layer: the Prometheus scrape of
//! a live service, outcome-labeled query series, per-stage trace reports,
//! the slow-query ring, and commit-stage timings on a durable store.

use std::sync::Arc;
use std::time::Duration;

use exactsim_graph::generators::barabasi_albert;
use exactsim_service::protocol::{execute, Outcome, Request};
use exactsim_service::{AlgorithmKind, GraphStore, ServiceConfig, ServiceError, SimRankService};

fn demo_service() -> SimRankService {
    let graph = Arc::new(barabasi_albert(60, 3, true, 7).unwrap());
    SimRankService::new(graph, ServiceConfig::fast_demo()).unwrap()
}

/// Extracts the value of the first sample line whose name+labels start with
/// `prefix` (sample lines are `name{labels} value` or `name value`).
fn sample_value(scrape: &str, prefix: &str) -> Option<f64> {
    scrape
        .lines()
        .find(|line| !line.starts_with('#') && line.starts_with(prefix))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn idle_scrape_exposes_every_series_at_zero() {
    let scrape = demo_service().metrics_text();
    // Eager registration: a scrape before any traffic already contains every
    // family (Prometheus rate() needs the zero sample to exist).
    for (series, value) in [
        (
            "simrank_queries_total{algo=\"exactsim\",outcome=\"hit\"}",
            0.0,
        ),
        (
            "simrank_queries_total{algo=\"prsim\",outcome=\"miss\"}",
            0.0,
        ),
        ("simrank_queries_total{algo=\"mc\",outcome=\"dedup\"}", 0.0),
        (
            "simrank_query_latency_us_count{algo=\"exactsim\",outcome=\"miss\"}",
            0.0,
        ),
        ("simrank_query_stage_us_count{stage=\"kernel\"}", 0.0),
        ("simrank_commit_stage_us_count{stage=\"fsync\"}", 0.0),
        ("simrank_connections_accepted_total", 0.0),
        ("simrank_net_bytes_total{direction=\"in\"}", 0.0),
        ("simrank_kernel_mc_walks_total", 0.0),
        ("simrank_slow_queries_total", 0.0),
        ("simrank_epoch", 0.0),
        ("simrank_commits_total", 0.0),
    ] {
        assert_eq!(sample_value(&scrape, series), Some(value), "{series}");
    }
    assert!(scrape.ends_with("# EOF\n"));
    // Histogram families render the full exposition triple.
    assert!(scrape.contains("# TYPE simrank_query_latency_us histogram"));
    assert!(scrape.contains(
        "simrank_query_latency_us_bucket{algo=\"exactsim\",outcome=\"hit\",le=\"+Inf\"} 0"
    ));
    assert!(scrape.contains("simrank_query_latency_us_sum{algo=\"exactsim\",outcome=\"hit\"} 0"));
}

#[test]
fn query_outcomes_land_in_their_labeled_series() {
    let service = demo_service();
    service.query(AlgorithmKind::ExactSim, 0).unwrap(); // miss
    service.query(AlgorithmKind::ExactSim, 0).unwrap(); // hit
    service.query(AlgorithmKind::ExactSim, 0).unwrap(); // hit
    assert!(matches!(
        service.query(AlgorithmKind::ExactSim, 9999),
        Err(ServiceError::Algorithm(_))
    )); // error

    let scrape = service.metrics_text();
    let series = |s| sample_value(&scrape, s);
    assert_eq!(
        series("simrank_queries_total{algo=\"exactsim\",outcome=\"miss\"}"),
        Some(1.0)
    );
    assert_eq!(
        series("simrank_queries_total{algo=\"exactsim\",outcome=\"hit\"}"),
        Some(2.0)
    );
    assert_eq!(
        series("simrank_queries_total{algo=\"exactsim\",outcome=\"error\"}"),
        Some(1.0)
    );
    // Latency histograms count only non-error outcomes; the aggregate serve
    // histogram (shared with `stats` p50/p99) counts all four.
    assert_eq!(
        series("simrank_query_latency_us_count{algo=\"exactsim\",outcome=\"miss\"}"),
        Some(1.0)
    );
    assert_eq!(
        series("simrank_query_latency_us_count{algo=\"exactsim\",outcome=\"hit\"}"),
        Some(2.0)
    );
    assert_eq!(series("simrank_serve_latency_us_count"), Some(4.0));
    // The miss and the errored query both entered the kernel (the bad node
    // id is rejected inside it), so the stage histogram holds two attempts;
    // serialize never ran: these queries went through the library API, not
    // the protocol.
    assert_eq!(
        series("simrank_query_stage_us_count{stage=\"kernel\"}"),
        Some(2.0)
    );
    assert_eq!(
        series("simrank_query_stage_us_count{stage=\"cache\"}"),
        Some(4.0)
    );
    // Kernel counters moved: ExactSim accounts solver levels + walk pairs.
    assert!(series("simrank_kernel_solver_iterations_total").unwrap() > 0.0);
}

#[test]
fn trace_of_a_cache_hit_shows_cache_and_no_kernel() {
    let service = demo_service();
    service.query(AlgorithmKind::ExactSim, 3).unwrap(); // warm the cache

    let trace_request = Request::Trace {
        line: "query 3".into(),
    };
    let json = match execute(&service, AlgorithmKind::ExactSim, &trace_request) {
        Outcome::Reply(json) => json,
        other => panic!("trace -> {other:?}"),
    };
    assert!(json.contains("\"op\":\"trace\""), "{json}");
    assert!(json.contains("\"name\":\"parse\""), "{json}");
    assert!(json.contains("\"name\":\"cache\""), "{json}");
    assert!(json.contains("\"name\":\"serialize\""), "{json}");
    assert!(
        !json.contains("\"name\":\"kernel\""),
        "cache hit must skip the kernel: {json}"
    );
    assert!(!json.contains("\"name\":\"index_build\""), "{json}");

    // A cold source does run the kernel.
    let cold = Request::Trace {
        line: "query 4".into(),
    };
    let json = match execute(&service, AlgorithmKind::ExactSim, &cold) {
        Outcome::Reply(json) => json,
        other => panic!("trace -> {other:?}"),
    };
    assert!(json.contains("\"name\":\"kernel\""), "{json}");
}

#[test]
fn slowlog_records_over_threshold_queries_newest_first() {
    let graph = Arc::new(barabasi_albert(60, 3, true, 7).unwrap());
    let config = ServiceConfig {
        // Zero threshold: every query is "slow" — deterministic for a test.
        slowlog_threshold: Duration::ZERO,
        slowlog_capacity: 2,
        ..ServiceConfig::fast_demo()
    };
    let service = SimRankService::new(graph, config).unwrap();
    service.query(AlgorithmKind::ExactSim, 0).unwrap();
    service.query(AlgorithmKind::ExactSim, 1).unwrap();
    service.query(AlgorithmKind::ExactSim, 2).unwrap();

    let slowlog = service.slowlog();
    assert_eq!(slowlog.total_recorded(), 3);
    assert_eq!(slowlog.len(), 2, "capacity bounds the ring");
    let recent = slowlog.recent(10);
    assert_eq!(recent[0].request, "query 2 exactsim", "newest first");
    assert_eq!(recent[1].request, "query 1 exactsim");

    // The protocol reply carries the ring (and `slowlog 1` limits it).
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::SlowLog { n: Some(1) },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"threshold_us\":0"), "{json}");
            assert!(json.contains("\"total_recorded\":3"), "{json}");
            assert!(json.contains("query 2 exactsim"), "{json}");
            assert!(!json.contains("query 1 exactsim"), "n=1 limits: {json}");
        }
        other => panic!("slowlog -> {other:?}"),
    }
    // And the counter series agrees.
    assert_eq!(
        sample_value(&service.metrics_text(), "simrank_slow_queries_total"),
        Some(3.0)
    );
}

#[test]
fn durable_commits_fill_the_commit_stage_histograms() {
    let dir = std::env::temp_dir().join(format!("exactsim-obs-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let graph = Arc::new(barabasi_albert(40, 3, true, 11).unwrap());
    let store = Arc::new(GraphStore::create(&dir, graph).unwrap());
    let service = SimRankService::with_store(store, ServiceConfig::fast_demo()).unwrap();

    service.store().stage_insert(0, 39).unwrap();
    service.commit().unwrap();
    // The next query adopts the new epoch and sweeps the cache.
    service.query(AlgorithmKind::ExactSim, 0).unwrap();

    let scrape = service.metrics_text();
    let series = |s: &str| sample_value(&scrape, s);
    assert_eq!(series("simrank_commits_total"), Some(1.0));
    assert_eq!(series("simrank_epoch"), Some(1.0));
    for stage in [
        "stage",
        "wal_append",
        "fsync",
        "csr_merge",
        "publish",
        "cache_sweep",
    ] {
        let key = format!("simrank_commit_stage_us_count{{stage=\"{stage}\"}}");
        assert_eq!(series(&key), Some(1.0), "{stage}");
    }
    // fsync time is real wall-clock, so the sum is nonzero in practice — but
    // clocks can be coarse; assert only that the bucket triple is rendered.
    assert!(scrape.contains("simrank_commit_stage_us_bucket{stage=\"fsync\",le=\"+Inf\"} 1"));

    // An in-memory commit never records fake WAL/fsync samples.
    let mem = demo_service();
    mem.store().stage_insert(0, 59).unwrap();
    mem.commit().unwrap();
    let mem_scrape = mem.metrics_text();
    assert_eq!(
        sample_value(
            &mem_scrape,
            "simrank_commit_stage_us_count{stage=\"fsync\"}"
        ),
        Some(0.0)
    );
    assert_eq!(
        sample_value(
            &mem_scrape,
            "simrank_commit_stage_us_count{stage=\"csr_merge\"}"
        ),
        Some(1.0)
    );

    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
