//! Table-driven coverage of the extracted `protocol` module (ISSUE 4
//! satellite): every command parses, every parsed request formats back to a
//! line that re-parses to itself, every malformed input maps to its stable
//! error code, and every `{"error","code"}` variant the two error-type
//! mappings can produce is pinned — the parser used to live untested inside
//! the `simrank-serve` binary.

use std::sync::Arc;

use exactsim::SimRankError;
use exactsim_graph::generators::barabasi_albert;
use exactsim_service::protocol::{codes, execute, parse_line, serve_line, Outcome, ProtoError};
use exactsim_service::{
    AlgorithmKind, Request, ServiceConfig, ServiceError, SimRankService, StoreError,
};

fn demo_service() -> SimRankService {
    let graph = Arc::new(barabasi_albert(60, 3, true, 7).unwrap());
    SimRankService::new(graph, ServiceConfig::fast_demo()).unwrap()
}

#[test]
fn every_command_parses_to_its_request() {
    let table: &[(&str, Request)] = &[
        (
            "query 7",
            Request::Query {
                node: 7,
                algo: None,
            },
        ),
        (
            "query 7 prsim",
            Request::Query {
                node: 7,
                algo: Some(AlgorithmKind::PrSim),
            },
        ),
        (
            "  query   7   MC  ", // whitespace + case-insensitive algo names
            Request::Query {
                node: 7,
                algo: Some(AlgorithmKind::MonteCarlo),
            },
        ),
        (
            "topk 3 10",
            Request::TopK {
                node: 3,
                k: 10,
                algo: None,
            },
        ),
        (
            "topk 3 10 exactsim",
            Request::TopK {
                node: 3,
                k: 10,
                algo: Some(AlgorithmKind::ExactSim),
            },
        ),
        (
            // The router's scatter verb: shard-restricted top-k, partition
            // carried on the line so the serving process stays stateless.
            "shardtopk 3 10 1 4",
            Request::ShardTopK {
                node: 3,
                k: 10,
                shard: 1,
                num_shards: 4,
                algo: None,
            },
        ),
        (
            "shardtopk 3 10 1 4 prsim",
            Request::ShardTopK {
                node: 3,
                k: 10,
                shard: 1,
                num_shards: 4,
                algo: Some(AlgorithmKind::PrSim),
            },
        ),
        ("addedge 1 2", Request::AddEdge { u: 1, v: 2 }),
        ("deledge 1 2", Request::DelEdge { u: 1, v: 2 }),
        ("addnode", Request::AddNode { count: 1 }), // count defaults to 1
        ("addnode 5", Request::AddNode { count: 5 }),
        ("commit", Request::Commit),
        ("epoch", Request::Epoch),
        ("ping", Request::Ping),
        ("save", Request::Save),
        ("snapshot", Request::Save), // alias
        ("stats", Request::Stats),
        ("metrics", Request::Metrics),
        ("slowlog", Request::SlowLog { n: None }),
        ("slowlog 5", Request::SlowLog { n: Some(5) }),
        (
            // The inner request is canonicalized at parse time.
            "trace   query   4   prsim",
            Request::Trace {
                line: "query 4 prsim".into(),
            },
        ),
        (
            "trace commit",
            Request::Trace {
                line: "commit".into(),
            },
        ),
        ("help", Request::Help),
        ("quit", Request::Quit),
        ("exit", Request::Quit), // alias
        ("shutdown", Request::Shutdown),
    ];
    for (line, expected) in table {
        assert_eq!(
            parse_line(line).unwrap().as_ref(),
            Some(expected),
            "line `{line}`"
        );
    }
    // Lines the protocol ignores: no request, no error, no reply.
    assert_eq!(parse_line("").unwrap(), None);
    assert_eq!(parse_line("   ").unwrap(), None);
    assert_eq!(parse_line("# a comment").unwrap(), None);
}

#[test]
fn every_request_formats_to_a_line_that_round_trips() {
    let table: &[Request] = &[
        Request::Query {
            node: 0,
            algo: None,
        },
        Request::Query {
            node: 4_294_967_295,
            algo: Some(AlgorithmKind::MonteCarlo),
        },
        Request::TopK {
            node: 9,
            k: 0,
            algo: None,
        },
        Request::TopK {
            node: 9,
            k: 25,
            algo: Some(AlgorithmKind::PrSim),
        },
        Request::ShardTopK {
            node: 9,
            k: 25,
            shard: 0,
            num_shards: 1,
            algo: None,
        },
        Request::ShardTopK {
            node: 9,
            k: 25,
            shard: 3,
            num_shards: 4,
            algo: Some(AlgorithmKind::MonteCarlo),
        },
        Request::AddEdge { u: 3, v: 4 },
        Request::DelEdge { u: 4, v: 3 },
        Request::AddNode { count: 1 },
        Request::AddNode { count: 1_000_000 },
        Request::Commit,
        Request::Epoch,
        Request::Ping,
        Request::Save,
        Request::Stats,
        Request::Metrics,
        Request::SlowLog { n: None },
        Request::SlowLog { n: Some(12) },
        Request::Trace {
            line: "topk 9 25 prsim".into(),
        },
        Request::Help,
        Request::Quit,
        Request::Shutdown,
    ];
    for request in table {
        let line = request.to_line();
        assert_eq!(
            parse_line(&line).unwrap().as_ref(),
            Some(request),
            "round trip through `{line}`"
        );
    }
}

#[test]
fn malformed_lines_map_to_stable_codes() {
    let table: &[(&str, &str)] = &[
        ("query", codes::BAD_REQUEST),               // missing node
        ("query x", codes::BAD_REQUEST),             // unparsable node
        ("query -1", codes::BAD_REQUEST),            // node ids are u32
        ("query 1 prsim extra", codes::BAD_REQUEST), // too many arguments
        ("query 1 bogus", codes::UNKNOWN_ALGORITHM),
        ("topk 1", codes::BAD_REQUEST),   // missing k
        ("topk 1 x", codes::BAD_REQUEST), // unparsable k
        ("topk 1 5 bogus", codes::UNKNOWN_ALGORITHM),
        ("shardtopk 1 5", codes::BAD_REQUEST), // missing shard/num_shards
        ("shardtopk 1 5 0", codes::BAD_REQUEST), // missing num_shards
        ("shardtopk 1 5 0 0", codes::BAD_REQUEST), // num_shards must be >= 1
        ("shardtopk 1 5 4 4", codes::BAD_REQUEST), // shard out of partition
        ("shardtopk 1 5 0 2 bogus", codes::UNKNOWN_ALGORITHM),
        ("addedge 1", codes::BAD_REQUEST), // missing head
        ("addedge a b", codes::BAD_REQUEST),
        ("deledge 1", codes::BAD_REQUEST),
        ("addnode x", codes::BAD_REQUEST),   // count must be a u64
        ("addnode 0", codes::BAD_REQUEST),   // zero growth is a typo
        ("addnode 1 2", codes::BAD_REQUEST), // at most one argument
        // Bare commands reject trailing tokens too: `commit 5` is a typo,
        // not a commit.
        ("commit 5", codes::BAD_REQUEST),
        ("epoch now", codes::BAD_REQUEST),
        ("ping now", codes::BAD_REQUEST),
        ("save please", codes::BAD_REQUEST),
        ("snapshot x", codes::BAD_REQUEST),
        ("stats -v", codes::BAD_REQUEST),
        ("metrics now", codes::BAD_REQUEST),
        ("slowlog x", codes::BAD_REQUEST), // count must be a usize
        ("slowlog 1 2", codes::BAD_REQUEST), // at most one argument
        ("trace", codes::BAD_REQUEST),     // nothing to trace
        ("trace stats", codes::BAD_REQUEST), // only query/topk/commit
        ("trace trace query 1", codes::BAD_REQUEST), // no nesting
        ("trace query", codes::BAD_REQUEST), // inner parse errors surface
        ("trace query 1 bogus", codes::UNKNOWN_ALGORITHM),
        ("help me", codes::BAD_REQUEST),
        ("quit now", codes::BAD_REQUEST),
        ("shutdown now", codes::BAD_REQUEST),
        ("frobnicate", codes::UNKNOWN_COMMAND),
        ("QUERY 1", codes::UNKNOWN_COMMAND), // commands are lowercase
    ];
    for (line, code) in table {
        let err = parse_line(line).unwrap_err();
        assert_eq!(err.code, *code, "line `{line}` -> {}", err.message);
        // Every parse error serializes to one {"error","code"} JSON line.
        let json = err.to_json();
        assert!(json.starts_with("{\"error\":\""), "{json}");
        assert!(json.ends_with(&format!("\"code\":\"{code}\"}}")), "{json}");
    }
}

/// Pins the full `{"error","code"}` vocabulary: each service/store error
/// variant maps to exactly the documented stable code.
#[test]
fn every_error_variant_maps_to_its_documented_code() {
    let service_table: &[(ServiceError, &str)] = &[
        (
            ServiceError::Algorithm(SimRankError::SourceOutOfRange {
                source: 99,
                num_nodes: 10,
            }),
            codes::OUT_OF_RANGE,
        ),
        (
            ServiceError::Algorithm(SimRankError::EmptyGraph),
            codes::ALGORITHM,
        ),
        (
            ServiceError::UnknownAlgorithm("bogus".into()),
            codes::UNKNOWN_ALGORITHM,
        ),
        (
            ServiceError::InvalidRequest("usage".into()),
            codes::BAD_REQUEST,
        ),
        (ServiceError::Internal("panicked".into()), codes::INTERNAL),
    ];
    for (error, code) in service_table {
        let mapped = ProtoError::from(error.clone());
        assert_eq!(mapped.code, *code, "{error:?}");
    }

    let store_table: &[(StoreError, &str)] = &[
        (
            StoreError::NodeOutOfRange {
                node: 9,
                num_nodes: 3,
            },
            codes::OUT_OF_RANGE,
        ),
        (StoreError::SelfLoop(3), codes::BAD_REQUEST),
        (
            // Client-caused: asked for more node ids than the u32 space has.
            StoreError::NodeSpaceExhausted {
                requested: u64::from(u32::MAX),
                num_nodes: 3,
            },
            codes::BAD_REQUEST,
        ),
        (StoreError::NotDurable, codes::NOT_DURABLE),
        (
            StoreError::Io {
                path: "/tmp/x".into(),
                op: "write",
                message: "disk full".into(),
            },
            codes::IO,
        ),
        (
            StoreError::SnapshotCorrupt {
                path: "/tmp/x.snap".into(),
                detail: "bad checksum".into(),
            },
            codes::STORAGE,
        ),
        (StoreError::InitFailed("nope".into()), codes::STORAGE),
        (
            StoreError::PageCorrupt {
                path: "/tmp/epoch-0.pages".into(),
                detail: "bad page checksum".into(),
            },
            codes::STORAGE,
        ),
        (StoreError::PoolExhausted { capacity: 4 }, codes::STORAGE),
    ];
    for (error, code) in store_table {
        let mapped = ProtoError::from(error.clone());
        assert_eq!(mapped.code, *code, "{error:?}");
    }

    // The router-facing code is part of the stable vocabulary even though no
    // local error maps to it: a router answers for an unreachable shard with
    // exactly this code, and clients key on the literal string.
    assert_eq!(codes::SHARD_UNAVAILABLE, "shard_unavailable");

    // The error message is JSON-escaped on the wire.
    let hostile = ProtoError::bad_request("a \"quoted\"\nline");
    assert_eq!(
        hostile.to_json(),
        "{\"error\":\"a \\\"quoted\\\"\\nline\",\"code\":\"bad_request\"}"
    );
}

#[test]
fn execute_answers_each_command_with_its_wire_shape() {
    let service = demo_service();

    // query / topk answer JSON with the serving epoch embedded.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::Query {
            node: 0,
            algo: None,
        },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"algorithm\":\"exactsim\""), "{json}");
            assert!(json.contains("\"epoch\":0"), "{json}");
            assert!(json.contains("\"source\":0"), "{json}");
        }
        other => panic!("query -> {other:?}"),
    }
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::TopK {
            node: 1,
            k: 3,
            algo: None,
        },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"k\":3"), "{json}");
            assert!(json.contains("\"results\":["), "{json}");
        }
        other => panic!("topk -> {other:?}"),
    }

    // The shard-restricted top-k echoes its partition slot so a gathering
    // router can attribute every candidate list.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::ShardTopK {
            node: 1,
            k: 5,
            shard: 1,
            num_shards: 4,
            algo: None,
        },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"shard\":1,\"num_shards\":4"), "{json}");
            assert!(json.contains("\"results\":["), "{json}");
        }
        other => panic!("shardtopk -> {other:?}"),
    }

    // The update protocol: stage, inspect, publish.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::AddEdge { u: 0, v: 59 },
    ) {
        Outcome::Reply(json) => assert!(
            json.contains("\"op\":\"addedge\"") && json.contains("\"staged\":\"pending\""),
            "{json}"
        ),
        other => panic!("addedge -> {other:?}"),
    }
    match execute(&service, AlgorithmKind::ExactSim, &Request::Epoch) {
        Outcome::Reply(json) => assert!(json.contains("\"pending_insertions\":1"), "{json}"),
        other => panic!("epoch -> {other:?}"),
    }
    match execute(&service, AlgorithmKind::ExactSim, &Request::Ping) {
        Outcome::Reply(json) => assert!(
            json.contains("\"op\":\"ping\"") && json.contains("\"epoch\":0"),
            "{json}"
        ),
        other => panic!("ping -> {other:?}"),
    }
    match execute(&service, AlgorithmKind::ExactSim, &Request::Commit) {
        Outcome::Reply(json) => assert!(
            json.contains("\"op\":\"commit\"") && json.contains("\"epoch\":1"),
            "{json}"
        ),
        other => panic!("commit -> {other:?}"),
    }

    // Protocol-level failures come back as error replies, not panics.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::Query {
            node: 9999,
            algo: None,
        },
    ) {
        Outcome::Reply(json) => {
            assert!(
                json.contains(&format!("\"code\":\"{}\"", codes::OUT_OF_RANGE)),
                "{json}"
            )
        }
        other => panic!("out-of-range query -> {other:?}"),
    }
    // `save` on an in-memory store is the NOT_DURABLE path.
    match execute(&service, AlgorithmKind::ExactSim, &Request::Save) {
        Outcome::Reply(json) => {
            assert!(
                json.contains(&format!("\"code\":\"{}\"", codes::NOT_DURABLE)),
                "{json}"
            )
        }
        other => panic!("save -> {other:?}"),
    }

    // stats is the service's JSON snapshot (connection counters included).
    match execute(&service, AlgorithmKind::ExactSim, &Request::Stats) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"connections_accepted\":0"), "{json}");
            assert!(json.contains("\"latency_saturated\":0"), "{json}");
            // The serving topology is explicit: a plain (unsharded) service
            // reports its worker/kernel-thread configuration and shards=1.
            assert!(json.contains("\"shards\":1"), "{json}");
            assert!(json.contains("\"workers\":"), "{json}");
            assert!(json.contains("\"kernel_threads\":"), "{json}");
            // The write path bumped its counters: exactly one addedge and
            // one commit were executed earlier in this test.
            assert!(json.contains("\"updates_staged\":1"), "{json}");
            assert!(json.contains("\"commit_requests\":1"), "{json}");
            // No listener in this fixture, so nothing was ever shed.
            assert!(json.contains("\"shed_rate\":0.0000"), "{json}");
        }
        other => panic!("stats -> {other:?}"),
    }

    // metrics is the one multi-line outcome: Prometheus text exposition
    // framed by a `# EOF` terminator line.
    match execute(&service, AlgorithmKind::ExactSim, &Request::Metrics) {
        Outcome::Text(payload) => {
            assert!(
                payload.contains("# TYPE simrank_queries_total counter"),
                "{payload}"
            );
            assert!(payload.ends_with("# EOF\n"), "{payload}");
        }
        other => panic!("metrics -> {other:?}"),
    }

    // slowlog reports its threshold and the retained ring (empty here: the
    // fast_demo queries above are far under the 100 ms default threshold).
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::SlowLog { n: None },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"op\":\"slowlog\""), "{json}");
            assert!(json.contains("\"threshold_us\":100000"), "{json}");
            assert!(json.contains("\"entries\":["), "{json}");
        }
        other => panic!("slowlog -> {other:?}"),
    }

    // trace wraps the inner reply with a stage breakdown.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::Trace {
            line: "query 0".into(),
        },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"op\":\"trace\""), "{json}");
            assert!(json.contains("\"request\":\"query 0\""), "{json}");
            assert!(json.contains("\"spans\":["), "{json}");
            assert!(json.contains("\"reply\":{"), "{json}");
        }
        other => panic!("trace -> {other:?}"),
    }

    // Session-control outcomes.
    assert!(matches!(
        execute(&service, AlgorithmKind::ExactSim, &Request::Help),
        Outcome::Help(text) if text.contains("query <node> [algo]")
    ));
    assert_eq!(
        execute(&service, AlgorithmKind::ExactSim, &Request::Quit),
        Outcome::Quit
    );
    assert!(matches!(
        execute(&service, AlgorithmKind::ExactSim, &Request::Shutdown),
        Outcome::Shutdown(reply) if reply.contains("\"op\":\"shutdown\"")
    ));
}

/// The `addnode` verb end to end: stage growth, watch it in `epoch`, publish
/// it with `commit`, and query one of the new (isolated) ids.
#[test]
fn addnode_grows_the_served_graph_through_the_wire_protocol() {
    let service = demo_service();
    let n = 60; // demo_service graph size

    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::AddNode { count: 2 },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"op\":\"addnode\""), "{json}");
            assert!(json.contains("\"added\":2"), "{json}");
            assert!(json.contains("\"pending_nodes\":2"), "{json}");
        }
        other => panic!("addnode -> {other:?}"),
    }
    // Staged edges may target the new ids before the commit publishes them.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::AddEdge { u: 0, v: n + 1 },
    ) {
        Outcome::Reply(json) => assert!(json.contains("\"staged\":\"pending\""), "{json}"),
        other => panic!("addedge to new id -> {other:?}"),
    }
    match execute(&service, AlgorithmKind::ExactSim, &Request::Epoch) {
        Outcome::Reply(json) => assert!(json.contains("\"pending_nodes\":2"), "{json}"),
        other => panic!("epoch -> {other:?}"),
    }
    match execute(&service, AlgorithmKind::ExactSim, &Request::Commit) {
        Outcome::Reply(json) => {
            assert!(json.contains("\"epoch\":1"), "{json}");
            assert!(json.contains("\"nodes_added\":2"), "{json}");
        }
        other => panic!("commit -> {other:?}"),
    }
    // The new top id is now queryable (born isolated except the staged edge).
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::Query {
            node: n + 1,
            algo: None,
        },
    ) {
        Outcome::Reply(json) => {
            assert!(json.contains(&format!("\"source\":{}", n + 1)), "{json}");
            assert!(json.contains("\"epoch\":1"), "{json}");
        }
        other => panic!("query new id -> {other:?}"),
    }
    // Growth past the u32 id space is a typed client error, not a panic.
    match execute(
        &service,
        AlgorithmKind::ExactSim,
        &Request::AddNode {
            count: u64::from(u32::MAX),
        },
    ) {
        Outcome::Reply(json) => assert!(
            json.contains(&format!("\"code\":\"{}\"", codes::BAD_REQUEST)),
            "{json}"
        ),
        other => panic!("overflowing addnode -> {other:?}"),
    }
}

#[test]
fn serve_line_is_the_shared_front_end_loop_body() {
    let service = demo_service();
    // Silent lines produce no outcome at all.
    assert_eq!(serve_line(&service, AlgorithmKind::ExactSim, ""), None);
    assert_eq!(serve_line(&service, AlgorithmKind::ExactSim, "# hi"), None);
    // Malformed lines become error replies (never Err, never panic).
    match serve_line(&service, AlgorithmKind::ExactSim, "topk").unwrap() {
        Outcome::Reply(json) => {
            assert!(
                json.contains(&format!("\"code\":\"{}\"", codes::BAD_REQUEST)),
                "{json}"
            )
        }
        other => panic!("malformed -> {other:?}"),
    }
    // The default algorithm applies when the request names none.
    match serve_line(&service, AlgorithmKind::MonteCarlo, "query 2").unwrap() {
        Outcome::Reply(json) => assert!(json.contains("\"algorithm\":\"mc\""), "{json}"),
        other => panic!("query -> {other:?}"),
    }
}
