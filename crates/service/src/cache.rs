//! Sharded LRU result cache.
//!
//! Cached values are full single-source similarity columns wrapped in
//! `Arc<QueryResponse>`, keyed by `(epoch, algorithm, source, epsilon-tier)`
//! — the epoch component makes entries from superseded graph snapshots
//! unreachable the moment a new epoch is published, and a generation
//! [`ShardedLruCache::clear`] reclaims their memory eagerly. The
//! cache is sharded: each shard is an independent `Mutex<LruShard>` selected
//! by key hash, so concurrent queries for different sources rarely contend on
//! the same lock. Within a shard, recency is tracked with an intrusive
//! doubly-linked list over a slab (`O(1)` get/insert/evict, no per-operation
//! allocation beyond the stored entry).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use exactsim_graph::NodeId;

use crate::response::{AlgorithmKind, QueryResponse};

/// Quantizes an additive-error target ε into a deci-decade tier, so that
/// configurations with practically identical accuracy share cache entries
/// while meaningfully different ones do not: tier = round(−10·log₁₀ ε)
/// (ε = 1e-2 → 20, ε = 5e-3 → 23, ε = 1e-7 → 70).
pub fn epsilon_tier(epsilon: f64) -> u16 {
    if epsilon.is_nan() || epsilon <= 0.0 || !epsilon.is_finite() {
        return u16::MAX;
    }
    (-10.0 * epsilon.log10())
        .round()
        .clamp(0.0, u16::MAX as f64) as u16
}

/// Cache key: one single-source answer per graph epoch, algorithm, source,
/// and accuracy tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The graph epoch the answer was (or would be) computed against. A
    /// commit on the backing store bumps the epoch, so entries of older
    /// epochs can never answer post-commit queries — stale results are
    /// unreachable even before the cache is swept.
    pub epoch: u64,
    /// The algorithm that produced (or would produce) the answer.
    pub algorithm: AlgorithmKind,
    /// The query source node.
    pub source: NodeId,
    /// Quantized accuracy, from [`epsilon_tier`].
    pub epsilon_tier: u16,
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Arc<QueryResponse>,
    prev: usize,
    next: usize,
}

/// One shard: a classic HashMap + intrusive-list LRU.
struct LruShard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity.min(1024)),
            slab: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<QueryResponse>> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.slab[idx].value))
    }

    /// Inserts (or refreshes) an entry; returns `true` if an old entry was
    /// evicted to make room.
    fn insert(&mut self, key: CacheKey, value: Arc<QueryResponse>) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops every entry, returning how many were resident. The slab and its
    /// free list are released too: a generation sweep is the natural moment
    /// to return the memory of a whole epoch's worth of columns.
    fn clear(&mut self) -> usize {
        let dropped = self.map.len();
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dropped
    }
}

/// The sharded LRU cache.
pub struct ShardedLruCache {
    shards: Vec<Mutex<LruShard>>,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ShardedLruCache {
    /// Creates a cache holding at most `capacity` entries spread over (up to)
    /// `shards` independent LRU shards. The shard count is clamped to the
    /// capacity and the capacity is distributed exactly (the first
    /// `capacity % shards` shards hold one extra entry), so the configured
    /// total is a hard bound — each entry is a full similarity column, so
    /// callers use the capacity to bound memory.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        ShardedLruCache {
            shards: (0..shards)
                .map(|i| Mutex::new(LruShard::new(base + usize::from(i < extra))))
                .collect(),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<LruShard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<QueryResponse>> {
        self.shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
    }

    /// Inserts an entry, evicting the least recently used entry of the
    /// target shard if it is full.
    pub fn insert(&self, key: CacheKey, value: Arc<QueryResponse>) {
        let evicted = self
            .shard_for(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// `true` if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (a generation invalidation, e.g. when the
    /// backing graph publishes a new epoch) and returns how many entries
    /// were swept. Concurrent inserts racing the sweep may land before or
    /// after it — epoch-tagged keys keep either order correct.
    pub fn clear(&self) -> usize {
        let swept: usize = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").clear())
            .sum();
        self.invalidations
            .fetch_add(swept as u64, Ordering::Relaxed);
        swept
    }

    /// Total entries evicted under capacity pressure since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total entries dropped by [`ShardedLruCache::clear`] sweeps since
    /// creation (distinct from capacity [`ShardedLruCache::evictions`]).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of shards (for diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn resp(source: NodeId, tag: f64) -> Arc<QueryResponse> {
        Arc::new(QueryResponse {
            algorithm: AlgorithmKind::ExactSim,
            epoch: 0,
            source,
            scores: vec![tag],
            query_time: Duration::ZERO,
        })
    }

    fn key(source: NodeId) -> CacheKey {
        CacheKey {
            epoch: 0,
            algorithm: AlgorithmKind::ExactSim,
            source,
            epsilon_tier: 20,
        }
    }

    #[test]
    fn epsilon_tiers_separate_orders_of_magnitude() {
        assert_eq!(epsilon_tier(1e-2), 20);
        assert_eq!(epsilon_tier(1e-7), 70);
        assert_ne!(epsilon_tier(1e-2), epsilon_tier(5e-3));
        assert_eq!(epsilon_tier(1.05e-2), epsilon_tier(1e-2)); // same tier
        assert_eq!(epsilon_tier(0.0), u16::MAX);
        assert_eq!(epsilon_tier(f64::NAN), u16::MAX);
    }

    #[test]
    fn evicts_in_lru_order_under_capacity_pressure() {
        // One shard so the eviction order is globally observable.
        let cache = ShardedLruCache::new(3, 1);
        cache.insert(key(0), resp(0, 0.0));
        cache.insert(key(1), resp(1, 1.0));
        cache.insert(key(2), resp(2, 2.0));
        assert_eq!(cache.len(), 3);

        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(3), resp(3, 3.0));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(1)).is_none(), "LRU entry 1 should be gone");
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());

        // Eviction proceeds strictly in recency order.
        cache.insert(key(4), resp(4, 4.0));
        cache.insert(key(5), resp(5, 5.0));
        assert_eq!(cache.evictions(), 3);
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(5)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let cache = ShardedLruCache::new(2, 1);
        cache.insert(key(0), resp(0, 0.0));
        cache.insert(key(0), resp(0, 9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(&key(0)).unwrap().scores, vec![9.0]);
    }

    #[test]
    fn distinct_tiers_algorithms_and_epochs_occupy_distinct_entries() {
        let cache = ShardedLruCache::new(16, 4);
        let a = CacheKey {
            epoch: 0,
            algorithm: AlgorithmKind::ExactSim,
            source: 1,
            epsilon_tier: 20,
        };
        let b = CacheKey {
            epsilon_tier: 30,
            ..a
        };
        let c = CacheKey {
            algorithm: AlgorithmKind::MonteCarlo,
            ..a
        };
        let d = CacheKey { epoch: 1, ..a };
        cache.insert(a, resp(1, 1.0));
        cache.insert(b, resp(1, 2.0));
        cache.insert(c, resp(1, 3.0));
        cache.insert(d, resp(1, 4.0));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(&a).unwrap().scores, vec![1.0]);
        assert_eq!(cache.get(&b).unwrap().scores, vec![2.0]);
        assert_eq!(cache.get(&c).unwrap().scores, vec![3.0]);
        assert_eq!(cache.get(&d).unwrap().scores, vec![4.0]);
    }

    #[test]
    fn clear_sweeps_every_shard_and_counts_invalidations() {
        let cache = ShardedLruCache::new(32, 4);
        for s in 0..20u32 {
            cache.insert(key(s), resp(s, s as f64));
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.clear(), 20);
        assert!(cache.is_empty());
        assert_eq!(cache.invalidations(), 20);
        assert_eq!(cache.evictions(), 0, "a sweep is not a capacity eviction");
        for s in 0..20u32 {
            assert!(cache.get(&key(s)).is_none(), "entry {s} survived clear");
        }
    }

    #[test]
    fn cache_remains_fully_usable_after_clear() {
        let cache = ShardedLruCache::new(3, 1);
        for s in 0..3u32 {
            cache.insert(key(s), resp(s, s as f64));
        }
        cache.clear();
        // Reinsert past capacity: LRU eviction still works on the fresh slab.
        for s in 10..15u32 {
            cache.insert(key(s), resp(s, s as f64));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.get(&key(14)).unwrap().scores, vec![14.0]);
        assert!(cache.get(&key(10)).is_none());
        // A second clear sweeps the reinserted generation.
        assert_eq!(cache.clear(), 3);
        assert_eq!(cache.invalidations(), 6);
    }

    #[test]
    fn clear_on_an_empty_cache_is_a_noop() {
        let cache = ShardedLruCache::new(8, 2);
        assert_eq!(cache.clear(), 0);
        assert_eq!(cache.invalidations(), 0);
    }

    #[test]
    fn total_capacity_is_a_hard_bound_and_slab_slots_are_reused() {
        let cache = ShardedLruCache::new(10, 4); // shard capacities 3,3,2,2
        assert_eq!(cache.shard_count(), 4);
        for s in 0..200u32 {
            cache.insert(key(s), resp(s, s as f64));
        }
        assert!(
            cache.len() <= 10,
            "len {} exceeds configured capacity",
            cache.len()
        );
        assert_eq!(cache.evictions() as usize, 200 - cache.len());
    }

    #[test]
    fn tiny_capacities_clamp_the_shard_count() {
        // capacity 1 with 16 requested shards must still hold at most 1 entry.
        let cache = ShardedLruCache::new(1, 16);
        assert_eq!(cache.shard_count(), 1);
        for s in 0..10u32 {
            cache.insert(key(s), resp(s, s as f64));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 9);
    }

    #[test]
    fn concurrent_access_is_coherent() {
        let cache = Arc::new(ShardedLruCache::new(64, 8));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let s = (t * 31 + i) % 40;
                    cache.insert(key(s), resp(s, s as f64));
                    if let Some(hit) = cache.get(&key(s)) {
                        assert_eq!(hit.scores, vec![s as f64], "cross-thread value mix-up");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
    }
}
