//! A fixed worker pool over std threads and channels.
//!
//! No external dependencies: jobs are boxed closures pushed into an `mpsc`
//! channel whose receiver is shared by all workers behind a mutex (the
//! classic "channel of jobs" pool). Dropping the pool closes the channel;
//! workers drain whatever is still queued, then exit, and `Drop` joins them —
//! so shutdown is graceful by construction.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("simrank-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender only taken in Drop")
            .send(Box::new(job))
            .expect("workers outlive the sender by construction");
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while *waiting*, never while running a job.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a job panicked while... impossible: lock is held only to recv
        };
        match job {
            // A panicking job must not take the worker thread (and a slot of
            // pool capacity) with it; the panic is contained to the job.
            Ok(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            Err(_) => return, // channel closed and drained: shut down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            // A panicked worker already unwound; don't double-panic in Drop.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_drains_queued_jobs_before_joining() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // Drop joins after the queue drains.
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("job panic must stay contained"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(1).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            1,
            "the single worker must survive the panicking job"
        );
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            7
        );
    }
}
