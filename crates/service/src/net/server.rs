//! Listener, acceptor, and per-connection handler threads.

use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{self, Outcome, ProtoError};
use crate::response::AlgorithmKind;
use crate::service::SimRankService;
use crate::stats::ServiceStats;
use exactsim_obs::json::escape_json;
use exactsim_obs::log as oplog;

/// Handlers poll the shutdown flag at this cadence between blocking reads.
const READ_POLL: Duration = Duration::from_millis(100);
/// The acceptor polls for shutdown at this cadence when no client connects.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Request lines longer than this are rejected and the connection closed —
/// the protocol has no business with multi-kilobyte commands, and the cap
/// keeps a hostile client from growing an unbounded buffer.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Configuration of the TCP front-end.
#[derive(Clone, Debug)]
pub struct NetOptions {
    /// Maximum concurrently-served connections (the semaphore bound).
    /// Connections past the bound are answered with a `capacity` error and
    /// closed.
    pub max_conns: usize,
    /// Algorithm used when a request names none.
    pub default_algo: AlgorithmKind,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            max_conns: 64,
            default_algo: AlgorithmKind::ExactSim,
        }
    }
}

/// A front-end the TCP listener can serve. The plain [`SimRankService`]
/// implements it (one process, one graph); the router crate implements it
/// over a shard fan-out. Implementations answer whole request lines and
/// expose a [`ServiceStats`] for the listener to account connections and
/// bytes against, so `stats` replies look the same whichever host answers.
pub trait ProtocolHost: Send + Sync + 'static {
    /// Answers one trimmed, non-empty request line. `None` means "no reply"
    /// (the stdin front-end's blank-line behaviour); the TCP listener treats
    /// it the same way.
    fn serve_line(&self, default_algo: AlgorithmKind, line: &str) -> Option<Outcome>;

    /// The counters the listener bumps for connections, requests, and bytes.
    fn net_stats(&self) -> &ServiceStats;

    /// Runs once after the acceptor and every handler have drained (durable
    /// snapshot flush, shard drain fan-out, ...).
    fn on_drain(&self);
}

impl ProtocolHost for SimRankService {
    fn serve_line(&self, default_algo: AlgorithmKind, line: &str) -> Option<Outcome> {
        protocol::serve_line(self, default_algo, line)
    }

    fn net_stats(&self) -> &ServiceStats {
        self.raw_stats()
    }

    fn on_drain(&self) {
        flush_shutdown_snapshot(self);
    }
}

/// A counting semaphore over connection-handler permits. `try_acquire` never
/// blocks: the acceptor load-sheds instead of queueing, so the listener can
/// always make progress whatever the handlers are doing.
struct Semaphore {
    permits: usize,
    active: AtomicUsize,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits,
            active: AtomicUsize::new(0),
        }
    }

    fn try_acquire(&self) -> bool {
        self.active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.permits).then_some(n + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Shared<H: ProtocolHost> {
    host: H,
    options: NetOptions,
    shutdown: Arc<AtomicBool>,
    permits: Semaphore,
}

impl<H: ProtocolHost> Shared<H> {
    fn stats(&self) -> &ServiceStats {
        self.host.net_stats()
    }
}

/// Handle to a running TCP server. Dropping the handle does **not** stop the
/// server; call [`NetServerHandle::request_shutdown`] then
/// [`NetServerHandle::join`] for a graceful stop. The handle is host-agnostic
/// (not generic over [`ProtocolHost`]) so binaries can store one whatever
/// front-end they booted.
pub struct NetServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
}

impl NetServerHandle {
    /// The address the listener is bound to (resolves `:0` to the real
    /// ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (by this handle, or by a
    /// `shutdown` protocol command on any connection).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Asks the server to stop: the acceptor closes, handlers drain their
    /// in-flight request and hang up. Idempotent; returns immediately —
    /// [`NetServerHandle::join`] observes completion.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the acceptor and every handler thread have finished and
    /// the final snapshot flush (durable stores only) has happened. Call
    /// after [`NetServerHandle::request_shutdown`], or let a remote
    /// `shutdown` command trigger the drain.
    pub fn join(self) {
        let _ = self.acceptor.join();
    }
}

/// Binds `addr` and serves the [`crate::protocol`] grammar over TCP until a
/// shutdown is requested. Returns once the listener is bound and accepting —
/// queries can race the returned handle immediately. `host` is usually a
/// [`SimRankService`]; the router crate passes its shard fan-out instead.
pub fn serve<H: ProtocolHost>(
    host: H,
    addr: impl ToSocketAddrs,
    options: NetOptions,
) -> io::Result<NetServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        host,
        permits: Semaphore::new(options.max_conns.max(1)),
        options,
        shutdown: Arc::clone(&shutdown),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("simrank-net-acceptor".into())
            .spawn(move || accept_loop(listener, shared))?
    };
    Ok(NetServerHandle {
        addr,
        shutdown,
        acceptor,
    })
}

fn accept_loop<H: ProtocolHost>(listener: TcpListener, shared: Arc<Shared<H>>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                // The listener is non-blocking (so this loop can poll the
                // shutdown flag); handler sockets do their own timed reads.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if !shared.permits.try_acquire() {
                    ServiceStats::bump(&shared.stats().connections_rejected);
                    reject_at_capacity(stream, shared.options.max_conns);
                    continue;
                }
                ServiceStats::bump(&shared.stats().connections_accepted);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("simrank-conn-{peer}"))
                    .spawn(move || {
                        handle_connection(&stream, &conn_shared);
                        // Permit + close accounting live together on every
                        // exit path (EOF, quit, error, drain) — the handler
                        // owns its permit for its whole lifetime.
                        conn_shared.permits.release();
                        ServiceStats::bump(&conn_shared.stats().connections_closed);
                    });
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        // Could not spawn a thread: undo the accept.
                        shared.permits.release();
                        ServiceStats::bump(&shared.stats().connections_closed);
                    }
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept errors (ECONNABORTED and friends) — keep
            // listening; a dead listener ends with the shutdown flag anyway.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain: the flag is set, handlers finish their in-flight request and
    // exit within one READ_POLL tick.
    drop(listener);
    for handle in handlers {
        let _ = handle.join();
    }
    shared.host.on_drain();
}

/// Folds the WAL into a fresh snapshot on durable stores, logging the
/// outcome through the [`exactsim_obs::log`] logger (so `--log-json` covers
/// it); a silent no-op on in-memory ones. A clean stop leaves nothing to
/// replay on the next boot. Shared by the TCP drain and the stdin
/// front-end's `shutdown` path so the two cannot diverge.
pub fn flush_shutdown_snapshot(service: &SimRankService) {
    if service.store().durability().is_some() {
        match service.store().save() {
            Ok(epoch) => oplog::info(
                "simrank-serve",
                "shutdown snapshot written",
                &[("epoch", epoch.into())],
            ),
            Err(e) => oplog::error(
                "simrank-serve",
                "shutdown snapshot failed",
                &[("error", e.to_string().into())],
            ),
        }
    }
}

/// Answers an over-capacity connection with one `capacity` error line.
fn reject_at_capacity(stream: TcpStream, max_conns: usize) {
    let error = ProtoError {
        code: protocol::codes::CAPACITY,
        message: format!("server at connection capacity ({max_conns}); retry later"),
    };
    let mut writer = BufWriter::new(stream);
    let _ = writeln!(writer, "{}", error.to_json());
    let _ = writer.flush();
}

/// Serves one connection until EOF, `quit`, a fatal socket error, or server
/// shutdown. Never panics on request contents; a panicking computation is
/// answered as an `internal` protocol error and the connection lives on.
fn handle_connection<H: ProtocolHost>(stream: &TcpStream, shared: &Shared<H>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // `take` bounds how much one `read_until` call can pull: a client
    // streaming bytes with no newline would otherwise keep the call (and
    // the buffer) growing forever — with continuous data the read timeout
    // never fires. The limit is re-armed per iteration, so `buf` is capped
    // at one limit's worth past MAX_LINE_BYTES before the oversized check
    // fires.
    let mut reader = BufReader::new(read_half.take(MAX_LINE_BYTES as u64 + 1));
    let mut writer = BufWriter::new(stream);
    // Raw bytes, not `read_line`: on a timeout mid-line, `read_until` keeps
    // the partial bytes in `buf` for the next attempt (read_line's UTF-8
    // guard would drop a partially-read multi-byte character).
    let mut buf: Vec<u8> = Vec::new();
    // Requests this connection served, recorded into the keep-alive
    // distribution when it finishes (any exit path of the loop).
    let mut requests: u64 = 0;
    while !shared.shutdown.load(Ordering::Acquire) {
        reader.get_mut().set_limit(MAX_LINE_BYTES as u64 + 1);
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => {
                shared
                    .stats()
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                // Also the exhausted-limit case: the limit is one past the
                // cap, so an over-long line trips this before a newline.
                if buf.len() > MAX_LINE_BYTES {
                    oversized_line(&mut writer, shared.stats());
                    break;
                }
                let line = String::from_utf8_lossy(&buf).into_owned();
                let done = serve_one(&line, shared, &mut writer, &mut requests);
                buf.clear();
                if done {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // Timed out waiting for (the rest of) a line: keep whatever
                // partial bytes arrived and re-check the shutdown flag.
                if buf.len() > MAX_LINE_BYTES {
                    oversized_line(&mut writer, shared.stats());
                    break;
                }
            }
            Err(_) => break,
        }
    }
    shared.stats().requests_per_conn.record_value(requests);
}

fn oversized_line(writer: &mut BufWriter<&TcpStream>, stats: &ServiceStats) {
    let error = ProtoError::bad_request(format!(
        "request line exceeds {MAX_LINE_BYTES} bytes; closing connection"
    ));
    let _ = write_reply(writer, stats, &error.to_json());
}

/// Parses, executes, and answers one request line. Returns `true` when the
/// connection (or the whole server) should stop.
fn serve_one<H: ProtocolHost>(
    line: &str,
    shared: &Shared<H>,
    writer: &mut BufWriter<&TcpStream>,
    requests: &mut u64,
) -> bool {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return false;
    }
    ServiceStats::bump(&shared.stats().net_requests);
    *requests += 1;
    // The in-flight leader re-raises computation panics (after waking its
    // followers); over TCP that must cost an `internal` error reply, not the
    // handler thread (which would leak the permit and hang up mid-session).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.host.serve_line(shared.options.default_algo, trimmed)
    }))
    .unwrap_or_else(|_| {
        Some(Outcome::Reply(
            ProtoError {
                code: protocol::codes::INTERNAL,
                message: "computation panicked".into(),
            }
            .to_json(),
        ))
    });
    match outcome {
        None => false,
        Some(Outcome::Reply(reply)) => write_reply(writer, shared.stats(), &reply),
        Some(Outcome::Text(payload)) => write_text(writer, shared.stats(), &payload),
        Some(Outcome::Help(text)) => write_reply(
            writer,
            shared.stats(),
            &format!("{{\"help\":\"{}\"}}", escape_json(text)),
        ),
        Some(Outcome::Quit) => true,
        Some(Outcome::Shutdown(reply)) => {
            let _ = write_reply(writer, shared.stats(), &reply);
            shared.shutdown.store(true, Ordering::Release);
            true
        }
    }
}

/// Writes one reply line; returns `true` (stop serving) on a dead socket.
fn write_reply(writer: &mut BufWriter<&TcpStream>, stats: &ServiceStats, reply: &str) -> bool {
    stats
        .bytes_out
        .fetch_add(reply.len() as u64 + 1, Ordering::Relaxed);
    if writeln!(writer, "{reply}").is_err() {
        return true;
    }
    writer.flush().is_err()
}

/// Writes one multi-line payload (already newline-terminated — the `metrics`
/// exposition); returns `true` on a dead socket.
fn write_text(writer: &mut BufWriter<&TcpStream>, stats: &ServiceStats, payload: &str) -> bool {
    stats
        .bytes_out
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    if writer.write_all(payload.as_bytes()).is_err() {
        return true;
    }
    writer.flush().is_err()
}
