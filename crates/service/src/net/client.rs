//! A minimal blocking client session for the newline-framed line protocol.
//!
//! One implementation shared by `simrank-client`, the end-to-end tests, and
//! the network demo, so a framing change cannot silently drift between
//! them.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use exactsim_obs::fault;

/// Evaluates a network fault site, mapping an injected failure onto the
/// `io::Error` the real operation would have produced.
fn injected(site: &str) -> io::Result<()> {
    match fault::check(site) {
        Some(_) => Err(fault::injected_io_error(site)),
        None => Ok(()),
    }
}

/// A blocking line-protocol session over one TCP connection: send one
/// request line, read one JSON reply line (see [`crate::protocol`] for the
/// grammar and [`crate::net`] for the framing).
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl LineClient {
    /// Connects to a `simrank-serve --listen` server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<LineClient> {
        injected(fault::sites::NET_CONNECT)?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(LineClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// [`LineClient::connect`] with explicit connect and read deadlines, for
    /// callers that must answer *something* when a server is down rather
    /// than block — the router treats either timeout as a
    /// `shard_unavailable` condition. A `read_timeout` of `None` keeps reads
    /// blocking.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        connect_timeout: Duration,
        read_timeout: Option<Duration>,
    ) -> io::Result<LineClient> {
        injected(fault::sites::NET_CONNECT)?;
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(read_timeout)?;
                    return Ok(LineClient {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: BufWriter::new(stream),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sends one request line (the newline is appended here).
    pub fn send(&mut self, request: &str) -> io::Result<()> {
        injected(fault::sites::NET_WRITE)?;
        writeln!(self.writer, "{request}")?;
        self.writer.flush()
    }

    /// Reads one reply line, without sending anything first — capacity
    /// rejections arrive proactively, before any request.
    /// [`io::ErrorKind::UnexpectedEof`] means the server closed the
    /// connection.
    pub fn receive(&mut self) -> io::Result<String> {
        injected(fault::sites::NET_READ)?;
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            _ => Ok(line.trim_end().to_string()),
        }
    }

    /// Sends one request and reads its one-line reply.
    pub fn round_trip(&mut self, request: &str) -> io::Result<String> {
        self.send(request)?;
        self.receive()
    }

    /// Sends one request and reads a multi-line reply up to (and including)
    /// the line equal to `terminator`. The protocol's only multi-line reply
    /// is `metrics`, whose Prometheus payload ends with a `# EOF` line:
    ///
    /// ```no_run
    /// # let mut client = exactsim_service::net::LineClient::connect("127.0.0.1:7878").unwrap();
    /// let scrape = client.round_trip_multi("metrics", "# EOF").unwrap();
    /// assert!(scrape.ends_with("# EOF\n"));
    /// ```
    pub fn round_trip_multi(&mut self, request: &str, terminator: &str) -> io::Result<String> {
        self.send(request)?;
        let mut payload = String::new();
        loop {
            let line = self.receive()?;
            payload.push_str(&line);
            payload.push('\n');
            if line == terminator {
                return Ok(payload);
            }
        }
    }
}
