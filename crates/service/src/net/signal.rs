//! Minimal SIGTERM/SIGINT-to-flag plumbing for the serving binaries.
//!
//! The offline build has no `libc`/`signal-hook` crates, so this declares
//! `signal(2)` directly (std already links libc on every unix target). The
//! handler does the only async-signal-safe thing there is to do: set a
//! static atomic flag. The binary's supervision loop polls the flag and
//! turns it into a graceful [`crate::net`] drain.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; read via [`install`]'s returned reference.
static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, SHUTDOWN_SIGNAL};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() -> &'static AtomicBool {
        // SAFETY: `signal` is the POSIX libc entry point std itself links;
        // the handler only touches a static atomic (async-signal-safe).
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        &SHUTDOWN_SIGNAL
    }
}

#[cfg(not(unix))]
mod imp {
    use super::AtomicBool;

    pub(super) fn install() -> &'static AtomicBool {
        // No signal wiring off-unix; the flag simply never trips and
        // shutdown comes from the `shutdown` protocol command instead.
        &super::SHUTDOWN_SIGNAL
    }
}

/// Installs SIGTERM/SIGINT handlers (unix; a no-op elsewhere) and returns
/// the flag they set. Idempotent — safe to call more than once.
pub fn install() -> &'static AtomicBool {
    imp::install()
}
