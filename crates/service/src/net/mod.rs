//! TCP front-end: the [`crate::protocol`] grammar served over real sockets.
//!
//! [`serve`] binds a listener and spawns an acceptor thread; each accepted
//! connection gets its own handler thread (plain `std::net` blocking I/O —
//! the offline build has no async runtime), bounded by a counting semaphore
//! of `max_conns` permits. A connection that arrives while all permits are
//! held is answered with one `{"error", "code": "capacity"}` line and closed
//! (load-shedding at accept time, so a slow client can never wedge the
//! acceptor). All connections multiplex onto the **one shared**
//! [`crate::SimRankService`]: the result cache, in-flight dedup, epoch
//! refresh, and worker pool are common across every socket and the stdin
//! path alike, and per-connection counters land in the same
//! [`crate::ServiceStats`].
//!
//! ## Framing
//!
//! Newline-framed both ways: one request per `\n`-terminated line, one JSON
//! object per reply line (`help` answers `{"help": ...}` over TCP). Request
//! lines are capped at 64 KiB; an over-long line is answered with a
//! `bad_request` error and the connection is closed. The one multi-line
//! reply is `metrics` (Prometheus text exposition): its payload is streamed
//! verbatim and terminated by a `# EOF` line, which
//! [`LineClient::round_trip_multi`] uses as the framing sentinel.
//!
//! ## Shutdown
//!
//! Graceful shutdown is triggered by the `shutdown` protocol command (from
//! any connection) or by [`NetServerHandle::request_shutdown`] (the binary
//! wires SIGTERM/SIGINT to it). The acceptor stops accepting, every handler
//! finishes the request it is processing and closes (handlers poll the
//! shutdown flag between reads on a 100 ms read timeout), and — when the
//! backing store is durable — the WAL is folded into a fresh snapshot before
//! [`NetServerHandle::join`] returns, so a clean stop leaves nothing to
//! replay on the next boot.

mod client;
mod server;
pub mod signal;

pub use client::LineClient;
pub use server::{flush_shutdown_snapshot, serve, NetOptions, NetServerHandle, ProtocolHost};
