//! Service observability: counters and a fixed-bucket latency histogram.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering): recording a
//! served query must never contend with other queries. Quantiles come from a
//! power-of-two-bucketed histogram over microseconds — p50/p99 are resolved
//! to the upper bound of the containing bucket, i.e. within a factor of two,
//! which is the standard fixed-memory trade-off (HdrHistogram-lite).
//!
//! The histogram primitive itself lives in [`exactsim_obs::metrics`] (it is
//! re-exported here as [`LatencyHistogram`]); the labeled per-algorithm /
//! per-stage series and the Prometheus exposition live in the service's
//! `metrics` module, leaving this module as the aggregate snapshot the
//! `stats` protocol verb reports.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exactsim_store::{DurabilityInfo, PoolStats};

// The histogram primitive and the JSON escaping helper both moved to the
// workspace-wide `exactsim-obs` crate (so the store, the kernels, and the
// metrics registry can share them); they are re-exported here under their
// historical names for the service API.
pub use exactsim_obs::json::escape_json;
pub use exactsim_obs::metrics::{Histogram as LatencyHistogram, SATURATION_BOUND_US};

/// Live counters of a [`crate::SimRankService`].
///
/// Latency quantiles come from a [`LatencyHistogram`]: bucket `0` is sub-µs,
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs, and the reported p50/p99 are
/// bucket *upper* bounds (within 2× of the true quantile). Observations past
/// the top bucket (`≥ 2^39 µs`) saturate into an explicit counter surfaced
/// as [`StatsSnapshot::latency_saturated`] instead of being folded into the
/// top bucket.
///
/// The `connections_*` / `net_requests` counters are bumped by the
/// [`crate::net`] listener; on a stdin-only server they stay zero.
#[derive(Default)]
pub struct ServiceStats {
    pub(crate) queries: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) dedup_joins: AtomicU64,
    pub(crate) computations: AtomicU64,
    pub(crate) index_builds: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) epoch_refreshes: AtomicU64,
    /// `addedge`/`deledge` requests that staged (or cancelled/no-op'd) an
    /// update — the write half of a scenario's read/write mix.
    pub(crate) updates_staged: AtomicU64,
    /// `commit` requests accepted (whether or not they advanced the epoch).
    pub(crate) commit_requests: AtomicU64,
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) net_requests: AtomicU64,
    /// Payload bytes read from TCP connections (request lines incl. newline).
    pub(crate) bytes_in: AtomicU64,
    /// Payload bytes written to TCP connections (reply lines incl. newline).
    pub(crate) bytes_out: AtomicU64,
    /// Histograms live behind `Arc` so the metrics registry can expose the
    /// same buckets that back the snapshot quantiles — one source of truth.
    pub(crate) latency: Arc<LatencyHistogram>,
    /// Requests served per TCP connection (recorded when each closes) — the
    /// keep-alive effectiveness distribution.
    pub(crate) requests_per_conn: Arc<LatencyHistogram>,
}

/// The statically-configured serving topology, reported explicitly by the
/// `stats` verb so operators never have to re-derive it from boot flags:
/// how many batch workers the service runs, how many threads the ExactSim
/// kernel uses per query, and how many shards the deployment has (always 1
/// for a plain single-process service; a router reports its real width).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingShape {
    /// Batch-executor worker threads (resolved, not the `0 = per-core` flag).
    pub workers: usize,
    /// ExactSim kernel threads per query (`SimRankConfig::threads`).
    pub kernel_threads: usize,
    /// Shards behind this endpoint (1 unless answered by a router).
    pub shards: usize,
}

impl Default for ServingShape {
    fn default() -> Self {
        ServingShape {
            workers: 0,
            kernel_threads: 1,
            shards: 1,
        }
    }
}

impl ServiceStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot (individual counters are exact;
    /// ratios between them can be off by in-flight queries).
    #[allow(clippy::too_many_arguments)] // one call site per host, all named state
    pub fn snapshot(
        &self,
        epoch: u64,
        evictions: u64,
        invalidations: u64,
        cached_entries: usize,
        durability: Option<DurabilityInfo>,
        index_memory_bytes: [Option<u64>; 3],
        shape: ServingShape,
        pool: Option<PoolStats>,
    ) -> StatsSnapshot {
        let queries = self.queries.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let dedup_joins = self.dedup_joins.load(Ordering::Relaxed);
        let connections_accepted = self.connections_accepted.load(Ordering::Relaxed);
        let connections_rejected = self.connections_rejected.load(Ordering::Relaxed);
        StatsSnapshot {
            epoch,
            shape,
            pool,
            data_dir: durability
                .as_ref()
                .map(|d| d.data_dir.display().to_string()),
            wal_len: durability.as_ref().map(|d| d.wal_records),
            last_snapshot_epoch: durability.as_ref().map(|d| d.last_snapshot_epoch),
            queries,
            cache_hits,
            dedup_joins,
            computations: self.computations.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            epoch_refreshes: self.epoch_refreshes.load(Ordering::Relaxed),
            updates_staged: self.updates_staged.load(Ordering::Relaxed),
            commit_requests: self.commit_requests.load(Ordering::Relaxed),
            evictions,
            invalidations,
            cached_entries,
            hit_rate: if queries == 0 {
                0.0
            } else {
                (cache_hits + dedup_joins) as f64 / queries as f64
            },
            index_memory_bytes,
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            latency_saturated: self.latency.saturated(),
            connections_accepted,
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            connections_rejected,
            shed_rate: if connections_accepted + connections_rejected == 0 {
                0.0
            } else {
                connections_rejected as f64 / (connections_accepted + connections_rejected) as f64
            },
            net_requests: self.net_requests.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests_per_conn_p50: self.requests_per_conn.quantile_value(0.50),
        }
    }
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// The graph epoch the service is currently serving.
    pub epoch: u64,
    /// The configured serving topology (worker threads, kernel threads,
    /// shard count) — explicit so operators read it instead of inferring it
    /// from the boot flags.
    pub shape: ServingShape,
    /// Buffer-pool counters of the paged storage backend (`None` when the
    /// store serves from the in-memory CSR). `hits`/`misses`/`evictions` are
    /// monotonic across epochs — the pool outlives page files.
    pub pool: Option<PoolStats>,
    /// Data directory of the backing store (`None` for in-memory stores).
    pub data_dir: Option<String>,
    /// Delta records currently in the write-ahead log (`None` when not
    /// durable). Together with `last_snapshot_epoch` this tells an operator
    /// how much replay a restart would do.
    pub wal_len: Option<u64>,
    /// Epoch of the newest on-disk snapshot file (`None` when not durable).
    pub last_snapshot_epoch: Option<u64>,
    /// Queries served (hits + joins + computations + errors).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that joined an in-flight computation instead of recomputing.
    pub dedup_joins: u64,
    /// Underlying single-source computations actually performed.
    pub computations: u64,
    /// Algorithm indices built (lazily, at most one per algorithm).
    pub index_builds: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Times the service rebuilt its per-epoch state after a store commit.
    pub epoch_refreshes: u64,
    /// `addedge`/`deledge` requests that reached the store's staging area
    /// (including cancels and no-ops) — the write half of a workload mix.
    pub updates_staged: u64,
    /// `commit` requests accepted, whether or not each advanced the epoch.
    pub commit_requests: u64,
    /// Cache entries evicted under capacity pressure.
    pub evictions: u64,
    /// Cache entries swept by epoch-generation invalidations.
    pub invalidations: u64,
    /// Entries currently resident in the cache.
    pub cached_entries: usize,
    /// `(cache_hits + dedup_joins) / queries` — the fraction of queries that
    /// did *not* pay for a computation.
    pub hit_rate: f64,
    /// Per-algorithm index heap footprint for the serving epoch, in
    /// `[exactsim, prsim, mc]` order ([`AlgorithmKind::ALL`] of the response
    /// module). `None` until that algorithm's index has been built this
    /// epoch; ExactSim is index-free and reports `Some(0)` once constructed.
    ///
    /// [`AlgorithmKind::ALL`]: crate::response::AlgorithmKind::ALL
    pub index_memory_bytes: [Option<u64>; 3],
    /// Median serve latency (bucket upper bound), if any query was served.
    pub p50: Option<Duration>,
    /// 99th-percentile serve latency (bucket upper bound).
    pub p99: Option<Duration>,
    /// Observations past the histogram's top bucket (`≥ 2^39 µs`). When this
    /// is nonzero, a reported quantile of `2^39 µs` is a *lower* bound.
    pub latency_saturated: u64,
    /// TCP connections accepted by the network listener (0 without one).
    pub connections_accepted: u64,
    /// TCP connections that have finished (EOF, `quit`, error, or drain);
    /// `connections_accepted - connections_closed` is the live gauge.
    pub connections_closed: u64,
    /// TCP connections turned away because `--max-conns` handlers were busy.
    pub connections_rejected: u64,
    /// `connections_rejected / (connections_accepted + connections_rejected)`
    /// — the fraction of offered connections the listener load-shed. Zero
    /// before any connection attempt (and always zero without a listener).
    pub shed_rate: f64,
    /// Protocol requests served over TCP connections (a subset of the
    /// activity in `queries`: updates/stats/etc. count here too).
    pub net_requests: u64,
    /// Payload bytes read from TCP connections (request lines, newlines
    /// included). Zero without a network listener.
    pub bytes_in: u64,
    /// Payload bytes written to TCP connections (reply lines, newlines
    /// included).
    pub bytes_out: u64,
    /// Median requests served per finished TCP connection (bucket upper
    /// bound, like every quantile here), `None` before any connection
    /// closed. A median of 1 means clients are not reusing connections.
    pub requests_per_conn_p50: Option<u64>,
}

impl StatsSnapshot {
    /// Serializes to one line of JSON for the `stats` protocol command
    /// (hand-rolled like [`crate::response`]; the offline build has no
    /// serde). Latencies are microsecond bucket upper bounds, `null` before
    /// the first served query.
    pub fn to_json(&self) -> String {
        let us = |d: Option<Duration>| match d {
            Some(d) => d.as_micros().to_string(),
            None => "null".to_string(),
        };
        let opt_u64 = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let data_dir = match &self.data_dir {
            Some(dir) => format!("\"{}\"", escape_json(dir)),
            None => "null".to_string(),
        };
        let pool = match &self.pool {
            Some(p) => format!(
                concat!(
                    "{{\"pages\":{},\"resident\":{},\"pinned\":{},",
                    "\"hits\":{},\"misses\":{},\"evictions\":{},",
                    "\"pool_hit_rate\":{:.4}}}"
                ),
                p.capacity,
                p.resident,
                p.pinned,
                p.hits,
                p.misses,
                p.evictions,
                p.hit_rate(),
            ),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"epoch\":{},\"shards\":{},\"workers\":{},\"kernel_threads\":{},",
                "\"queries\":{},\"cache_hits\":{},\"dedup_joins\":{},",
                "\"computations\":{},\"index_builds\":{},\"errors\":{},",
                "\"epoch_refreshes\":{},\"updates_staged\":{},\"commit_requests\":{},",
                "\"evictions\":{},\"invalidations\":{},",
                "\"cached_entries\":{},\"hit_rate\":{:.4},",
                "\"memory_bytes\":{{\"exactsim\":{},\"prsim\":{},\"mc\":{}}},",
                "\"p50_us\":{},\"p99_us\":{},",
                "\"latency_saturated\":{},",
                "\"connections_accepted\":{},\"connections_closed\":{},",
                "\"connections_rejected\":{},\"shed_rate\":{:.4},\"net_requests\":{},",
                "\"bytes_in\":{},\"bytes_out\":{},\"requests_per_conn_p50\":{},",
                "\"pool\":{},",
                "\"data_dir\":{},\"wal_len\":{},\"last_snapshot_epoch\":{}}}"
            ),
            self.epoch,
            self.shape.shards,
            self.shape.workers,
            self.shape.kernel_threads,
            self.queries,
            self.cache_hits,
            self.dedup_joins,
            self.computations,
            self.index_builds,
            self.errors,
            self.epoch_refreshes,
            self.updates_staged,
            self.commit_requests,
            self.evictions,
            self.invalidations,
            self.cached_entries,
            self.hit_rate,
            opt_u64(self.index_memory_bytes[0]),
            opt_u64(self.index_memory_bytes[1]),
            opt_u64(self.index_memory_bytes[2]),
            us(self.p50),
            us(self.p99),
            self.latency_saturated,
            self.connections_accepted,
            self.connections_closed,
            self.connections_rejected,
            self.shed_rate,
            self.net_requests,
            self.bytes_in,
            self.bytes_out,
            opt_u64(self.requests_per_conn_p50),
            pool,
            data_dir,
            opt_u64(self.wal_len),
            opt_u64(self.last_snapshot_epoch),
        )
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph epoch:        {}", self.epoch)?;
        writeln!(
            f,
            "topology:           {} shard(s), {} workers, {} kernel thread(s)",
            self.shape.shards, self.shape.workers, self.shape.kernel_threads
        )?;
        writeln!(f, "queries served:     {}", self.queries)?;
        writeln!(
            f,
            "cache hit rate:     {:.1}% ({} hits, {} dedup joins)",
            self.hit_rate * 100.0,
            self.cache_hits,
            self.dedup_joins
        )?;
        writeln!(f, "computations:       {}", self.computations)?;
        writeln!(f, "index builds:       {}", self.index_builds)?;
        writeln!(
            f,
            "cache:              {} entries resident, {} evicted, {} invalidated",
            self.cached_entries, self.evictions, self.invalidations
        )?;
        writeln!(f, "epoch refreshes:    {}", self.epoch_refreshes)?;
        if self.updates_staged > 0 || self.commit_requests > 0 {
            writeln!(
                f,
                "writes:             {} updates staged, {} commits",
                self.updates_staged, self.commit_requests
            )?;
        }
        let mem = |v: Option<u64>| match v {
            Some(bytes) => format!("{bytes} B"),
            None => "unbuilt".to_string(),
        };
        writeln!(
            f,
            "index memory:       exactsim {}, prsim {}, mc {}",
            mem(self.index_memory_bytes[0]),
            mem(self.index_memory_bytes[1]),
            mem(self.index_memory_bytes[2])
        )?;
        writeln!(f, "errors:             {}", self.errors)?;
        if self.connections_accepted > 0 || self.connections_rejected > 0 {
            writeln!(
                f,
                "tcp connections:    {} accepted, {} live, {} rejected ({:.1}% shed), {} requests",
                self.connections_accepted,
                self.connections_accepted
                    .saturating_sub(self.connections_closed),
                self.connections_rejected,
                self.shed_rate * 100.0,
                self.net_requests
            )?;
            let per_conn = match self.requests_per_conn_p50 {
                Some(p50) => format!(", <= {p50} requests/conn (p50)"),
                None => String::new(),
            };
            writeln!(
                f,
                "tcp bytes:          {} in, {} out{per_conn}",
                self.bytes_in, self.bytes_out
            )?;
        }
        if let Some(p) = &self.pool {
            writeln!(
                f,
                "buffer pool:        {}/{} pages resident ({} pinned), {:.1}% hit rate, {} evictions",
                p.resident,
                p.capacity,
                p.pinned,
                p.hit_rate() * 100.0,
                p.evictions
            )?;
        }
        match (&self.data_dir, self.wal_len, self.last_snapshot_epoch) {
            (Some(dir), Some(wal), Some(snap)) => writeln!(
                f,
                "durability:         {dir} (wal {wal} records, snapshot at epoch {snap})"
            )?,
            _ => writeln!(f, "durability:         in-memory (no data dir)")?,
        }
        let fmt_latency = |d: Option<Duration>| match d {
            Some(d) => format!("<= {d:?}"),
            None => "n/a".to_string(),
        };
        writeln!(f, "latency p50:        {}", fmt_latency(self.p50))?;
        write!(f, "latency p99:        {}", fmt_latency(self.p99))?;
        if self.latency_saturated > 0 {
            write!(
                f,
                "\nlatency saturated:  {} observations past the top bucket",
                self.latency_saturated
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        for us in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // Median of {0,1,2,3,100,1000,100000} µs is 3 µs → bucket [2,4) → 4.
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(4)));
        // Max quantile lands in the 100ms-ish bucket containing 100000 µs.
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= Duration::from_micros(100_000));
        assert!(p100 <= Duration::from_micros(262_144));
    }

    #[test]
    fn latencies_past_the_top_bucket_saturate_instead_of_clamping() {
        let h = LatencyHistogram::default();
        // One bucketable observation and two past the nominal 2^39 µs bound.
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(SATURATION_BOUND_US));
        h.record(Duration::from_micros(u64::MAX));
        assert_eq!(h.count(), 3);
        assert_eq!(h.saturated(), 2);
        // The median is the bucketable observation; the max quantile lands in
        // the saturated tail and reports the saturation bound (a lower
        // bound, flagged by saturated() > 0 — not a fake upper bound).
        assert_eq!(h.quantile(0.0), Some(Duration::from_micros(16)));
        assert_eq!(
            h.quantile(1.0),
            Some(Duration::from_micros(SATURATION_BOUND_US))
        );

        let stats = ServiceStats::new();
        stats.latency.record(Duration::from_micros(u64::MAX));
        let snap = stats.snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None);
        assert_eq!(snap.latency_saturated, 1);
        assert!(snap.to_json().contains("\"latency_saturated\":1"));
        assert!(snap.to_string().contains("latency saturated:  1"));
    }

    #[test]
    fn connection_counters_surface_in_json_and_display() {
        let stats = ServiceStats::new();
        stats.connections_accepted.store(5, Ordering::Relaxed);
        stats.connections_closed.store(3, Ordering::Relaxed);
        stats.connections_rejected.store(2, Ordering::Relaxed);
        stats.net_requests.store(40, Ordering::Relaxed);
        let snap = stats.snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None);
        assert_eq!(snap.connections_accepted, 5);
        assert_eq!(snap.net_requests, 40);
        let json = snap.to_json();
        assert!(json.contains("\"connections_accepted\":5"), "{json}");
        assert!(json.contains("\"connections_rejected\":2"), "{json}");
        assert!(json.contains("\"net_requests\":40"), "{json}");
        // 2 of 7 offered connections were shed.
        assert!((snap.shed_rate - 2.0 / 7.0).abs() < 1e-12);
        assert!(json.contains("\"shed_rate\":0.2857"), "{json}");
        let rendered = snap.to_string();
        assert!(
            rendered.contains("5 accepted, 2 live, 2 rejected (28.6% shed), 40 requests"),
            "{rendered}"
        );
        // A stdin-only server never shows the TCP line.
        let quiet = ServiceStats::new()
            .snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None)
            .to_string();
        assert!(!quiet.contains("tcp connections"));
    }

    #[test]
    fn byte_and_per_connection_counters_surface_in_json_and_display() {
        let stats = ServiceStats::new();
        stats.connections_accepted.store(2, Ordering::Relaxed);
        stats.connections_closed.store(2, Ordering::Relaxed);
        stats.bytes_in.store(120, Ordering::Relaxed);
        stats.bytes_out.store(4096, Ordering::Relaxed);
        // Two finished connections: 3 requests and 5 requests.
        stats.requests_per_conn.record_value(3);
        stats.requests_per_conn.record_value(5);
        let snap = stats.snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None);
        assert_eq!(snap.bytes_in, 120);
        assert_eq!(snap.bytes_out, 4096);
        // p50 of {3, 5} resolves to the upper bound of 3's bucket [2, 4).
        assert_eq!(snap.requests_per_conn_p50, Some(4));
        let json = snap.to_json();
        assert!(json.contains("\"bytes_in\":120"), "{json}");
        assert!(json.contains("\"bytes_out\":4096"), "{json}");
        assert!(json.contains("\"requests_per_conn_p50\":4"), "{json}");
        let rendered = snap.to_string();
        assert!(
            rendered.contains("tcp bytes:          120 in, 4096 out, <= 4 requests/conn (p50)"),
            "{rendered}"
        );
        // Before any connection finishes, the quantile serializes as null and
        // the Display suffix is omitted.
        let fresh = ServiceStats::new();
        fresh.connections_accepted.store(1, Ordering::Relaxed);
        let early = fresh.snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None);
        assert!(early.to_json().contains("\"requests_per_conn_p50\":null"));
        assert!(early
            .to_string()
            .contains("tcp bytes:          0 in, 0 out\n"));
    }

    #[test]
    fn write_counters_and_shed_rate_surface_in_json_and_display() {
        let stats = ServiceStats::new();
        stats.updates_staged.store(12, Ordering::Relaxed);
        stats.commit_requests.store(3, Ordering::Relaxed);
        let snap = stats.snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None);
        assert_eq!(snap.updates_staged, 12);
        assert_eq!(snap.commit_requests, 3);
        let json = snap.to_json();
        assert!(json.contains("\"updates_staged\":12"), "{json}");
        assert!(json.contains("\"commit_requests\":3"), "{json}");
        assert!(
            snap.to_string()
                .contains("writes:             12 updates staged, 3 commits"),
            "{snap}"
        );
        // A read-only server omits the Display line and sheds nothing.
        let quiet =
            ServiceStats::new().snapshot(0, 0, 0, 0, None, [None; 3], Default::default(), None);
        assert!(!quiet.to_string().contains("writes:"));
        assert_eq!(quiet.shed_rate, 0.0);
        assert!(quiet.to_json().contains("\"shed_rate\":0.0000"));
    }

    #[test]
    fn index_memory_surfaces_in_json_and_display() {
        let stats = ServiceStats::new();
        let snap = stats.snapshot(
            0,
            0,
            0,
            0,
            None,
            [Some(0), Some(4096), None],
            ServingShape::default(),
            None,
        );
        let json = snap.to_json();
        assert!(
            json.contains("\"memory_bytes\":{\"exactsim\":0,\"prsim\":4096,\"mc\":null}"),
            "{json}"
        );
        let rendered = snap.to_string();
        assert!(
            rendered.contains("index memory:       exactsim 0 B, prsim 4096 B, mc unbuilt"),
            "{rendered}"
        );
    }

    #[test]
    fn snapshot_hit_rate_counts_hits_and_joins() {
        let stats = ServiceStats::new();
        stats.queries.store(10, Ordering::Relaxed);
        stats.cache_hits.store(6, Ordering::Relaxed);
        stats.dedup_joins.store(3, Ordering::Relaxed);
        stats.computations.store(1, Ordering::Relaxed);
        stats.epoch_refreshes.store(2, Ordering::Relaxed);
        let snap = stats.snapshot(
            7,
            0,
            4,
            5,
            None,
            [Some(0), Some(1024), None],
            ServingShape::default(),
            None,
        );
        assert!((snap.hit_rate - 0.9).abs() < 1e-12);
        assert_eq!(snap.cached_entries, 5);
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.invalidations, 4);
        assert_eq!(snap.epoch_refreshes, 2);
        let rendered = snap.to_string();
        assert!(rendered.contains("90.0%"));
        assert!(rendered.contains("computations:       1"));
        assert!(rendered.contains("graph epoch:        7"));
        assert!(rendered.contains("in-memory"));
    }

    #[test]
    fn zero_queries_mean_zero_hit_rate() {
        let snap = ServiceStats::new().snapshot(
            0,
            0,
            0,
            0,
            None,
            [None; 3],
            ServingShape::default(),
            None,
        );
        assert_eq!(snap.hit_rate, 0.0);
        assert_eq!(snap.p50, None);
    }

    #[test]
    fn json_snapshot_is_wire_shaped() {
        let stats = ServiceStats::new();
        stats.queries.store(4, Ordering::Relaxed);
        stats.cache_hits.store(2, Ordering::Relaxed);
        stats.latency.record(Duration::from_micros(100));
        let json = stats
            .snapshot(3, 1, 0, 2, None, [None; 3], ServingShape::default(), None)
            .to_json();
        assert!(json.starts_with("{\"epoch\":3,"));
        assert!(json.contains("\"queries\":4"));
        assert!(json.contains("\"hit_rate\":0.5000"));
        assert!(json.contains("\"p50_us\":128"));
        assert!(json.ends_with('}'));
        // Not durable: the operator fields serialize as null.
        assert!(json.contains("\"data_dir\":null"));
        assert!(json.contains("\"wal_len\":null"));
        assert!(json.contains("\"last_snapshot_epoch\":null"));
        // Before any query, quantiles serialize as null.
        let empty = ServiceStats::new()
            .snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None)
            .to_json();
        assert!(empty.contains("\"p99_us\":null"));
    }

    #[test]
    fn serving_shape_surfaces_in_json_and_display() {
        let shape = ServingShape {
            workers: 4,
            kernel_threads: 2,
            shards: 3,
        };
        let snap = ServiceStats::new().snapshot(0, 0, 0, 0, None, [None; 3], shape, None);
        let json = snap.to_json();
        // Shape rides immediately after the epoch so scrapers that read a
        // prefix still see it.
        assert!(
            json.starts_with("{\"epoch\":0,\"shards\":3,\"workers\":4,\"kernel_threads\":2,"),
            "{json}"
        );
        let rendered = snap.to_string();
        assert!(rendered.contains("3 shard(s), 4 workers, 2 kernel thread(s)"));
        // The single-process default reports one shard.
        let plain = ServiceStats::new()
            .snapshot(0, 0, 0, 0, None, [None; 3], ServingShape::default(), None)
            .to_json();
        assert!(plain.contains("\"shards\":1"), "{plain}");
    }

    #[test]
    fn pool_stats_surface_in_json_and_display() {
        let pool = PoolStats {
            capacity: 64,
            resident: 64,
            pinned: 2,
            hits: 900,
            misses: 100,
            evictions: 36,
        };
        let snap = ServiceStats::new().snapshot(
            0,
            0,
            0,
            0,
            None,
            [None; 3],
            ServingShape::default(),
            Some(pool),
        );
        let json = snap.to_json();
        assert!(
            json.contains(concat!(
                "\"pool\":{\"pages\":64,\"resident\":64,\"pinned\":2,",
                "\"hits\":900,\"misses\":100,\"evictions\":36,",
                "\"pool_hit_rate\":0.9000}"
            )),
            "{json}"
        );
        assert!(
            snap.to_string().contains(
                "buffer pool:        64/64 pages resident (2 pinned), 90.0% hit rate, 36 evictions"
            ),
            "{snap}"
        );
        // An in-memory (unpaged) store reports no pool at all — scrapers can
        // key backend detection on the null.
        let unpaged = ServiceStats::new().snapshot(
            0,
            0,
            0,
            0,
            None,
            [None; 3],
            ServingShape::default(),
            None,
        );
        assert!(unpaged.to_json().contains("\"pool\":null"));
        assert!(!unpaged.to_string().contains("buffer pool:"));
    }

    #[test]
    fn durable_stats_surface_the_data_dir_wal_and_snapshot_epoch() {
        let stats = ServiceStats::new();
        let info = DurabilityInfo {
            data_dir: std::path::PathBuf::from("/var/lib/simrank \"x\""),
            wal_records: 12,
            last_snapshot_epoch: 3,
        };
        let snap = stats.snapshot(
            5,
            0,
            0,
            0,
            Some(info),
            [None; 3],
            ServingShape::default(),
            None,
        );
        assert_eq!(snap.wal_len, Some(12));
        assert_eq!(snap.last_snapshot_epoch, Some(3));
        let json = snap.to_json();
        assert!(json.contains("\"wal_len\":12"), "{json}");
        assert!(json.contains("\"last_snapshot_epoch\":3"), "{json}");
        // Path quotes are escaped so the reply stays valid JSON.
        assert!(
            json.contains("\"data_dir\":\"/var/lib/simrank \\\"x\\\"\""),
            "{json}"
        );
        assert!(snap.to_string().contains("wal 12 records"));
    }
}
