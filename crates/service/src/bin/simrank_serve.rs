//! `simrank-serve` — a line-protocol REPL over [`exactsim_service::SimRankService`].
//!
//! ```text
//! simrank-serve [--dataset KEY | --ba N M] [--scale F] [--seed S]
//!               [--algo exactsim|prsim|mc] [--epsilon E]
//!               [--workers W] [--cache-capacity C] [--walk-budget B]
//!               [--data-dir DIR]
//! ```
//!
//! Protocol: one request per stdin line. Every command answers with exactly
//! one JSON object per stdout line — `{"error": "..."}` for a rejected
//! request (malformed input, out-of-range node ids, …; the server never
//! panics on bad input) — so scripted clients can read stdout line-by-line.
//! Startup banners and the human-oriented `help` output go to stderr only.
//!
//! ```text
//! query <node> [algo]      full single-source column (scores truncated to 32)
//! topk <node> <k> [algo]   top-k most similar nodes
//! addedge <u> <v>          stage the insertion of edge u -> v
//! deledge <u> <v>          stage the deletion of edge u -> v
//! commit                   publish staged updates as a new graph epoch
//! epoch                    current epoch + pending update counts
//! save | snapshot          fold the WAL into a fresh snapshot file
//! stats                    serving counters (hit rate, p50/p99, epoch,
//!                          durability state) as JSON
//! help                     this summary (stderr)
//! quit                     exit (EOF also exits)
//! ```
//!
//! Updates flow over the same front-end as queries: `addedge`/`deledge`
//! stage into the store's delta buffer (validated and deduplicated, no
//! effect on serving), and `commit` atomically swaps in the new epoch —
//! queries keep being answered throughout, and cached results from older
//! epochs can no longer be returned.
//!
//! With `--data-dir DIR` the store is durable: every commit is WAL-logged
//! and fsynced before it is published, and on boot the server recovers the
//! newest valid snapshot plus the WAL — a restarted server answers
//! bit-identically to the pre-restart process at the same epoch. On the
//! first boot the directory is initialized from the graph flags; on later
//! boots the graph flags are ignored in favor of the recovered state.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use exactsim::exactsim::ExactSimConfig;
use exactsim::SimRankError;
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_service::{
    AlgorithmKind, GraphStore, Opened, ServiceConfig, ServiceError, SimRankService, StoreError,
};

struct Options {
    dataset: Option<String>,
    ba: Option<(usize, usize)>,
    scale: f64,
    seed: u64,
    algo: AlgorithmKind,
    epsilon: f64,
    workers: usize,
    cache_capacity: usize,
    walk_budget: u64,
    data_dir: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            dataset: None,
            ba: None,
            scale: 0.01,
            seed: 42,
            algo: AlgorithmKind::ExactSim,
            epsilon: 1e-2,
            workers: 0,
            cache_capacity: 1024,
            walk_budget: 2_000_000,
            data_dir: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    fn next_value(flag: &str, args: &mut dyn Iterator<Item = String>) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => opts.dataset = Some(next_value("--dataset", &mut args)?),
            "--ba" => {
                let n = next_value("--ba", &mut args)?;
                let m = next_value("--ba", &mut args)?;
                opts.ba = Some((
                    n.parse().map_err(|_| format!("bad node count `{n}`"))?,
                    m.parse().map_err(|_| format!("bad edges-per-node `{m}`"))?,
                ));
            }
            "--scale" => {
                let v = next_value("--scale", &mut args)?;
                opts.scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
            }
            "--seed" => {
                let v = next_value("--seed", &mut args)?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--algo" => {
                let v = next_value("--algo", &mut args)?;
                opts.algo = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--epsilon" => {
                let v = next_value("--epsilon", &mut args)?;
                opts.epsilon = v.parse().map_err(|_| format!("bad epsilon `{v}`"))?;
            }
            "--workers" => {
                let v = next_value("--workers", &mut args)?;
                opts.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--cache-capacity" => {
                let v = next_value("--cache-capacity", &mut args)?;
                opts.cache_capacity = v.parse().map_err(|_| format!("bad capacity `{v}`"))?;
            }
            "--walk-budget" => {
                let v = next_value("--walk-budget", &mut args)?;
                opts.walk_budget = v.parse().map_err(|_| format!("bad walk budget `{v}`"))?;
            }
            "--data-dir" => {
                opts.data_dir = Some(PathBuf::from(next_value("--data-dir", &mut args)?));
            }
            "--help" | "-h" => {
                eprintln!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.dataset.is_some() && opts.ba.is_some() {
        return Err("--dataset and --ba are mutually exclusive".to_string());
    }
    Ok(opts)
}

const HELP: &str = "simrank-serve: line-protocol SimRank query server\n\
  --dataset KEY        serve a Table 2 dataset stand-in (GQ, WV, ...)\n\
  --ba N M             serve a Barabasi-Albert graph with N nodes, M edges/node\n\
  --scale F            dataset scale factor (default 0.01)\n\
  --seed S             graph generation seed (default 42)\n\
  --algo A             default algorithm: exactsim | prsim | mc\n\
  --epsilon E          ExactSim/PRSim error target (default 1e-2)\n\
  --workers W          batch worker threads (0 = one per core)\n\
  --cache-capacity C   result cache entries (default 1024)\n\
  --walk-budget B      cap on ExactSim walk pairs per query (default 2000000;\n\
                       0 = unlimited / paper-exact — small epsilons need the\n\
                       cap lifted or the error target will not be met)\n\
  --data-dir DIR       durable store: recover DIR on boot (or initialize it\n\
                       from the graph flags), WAL-log every commit\n\
protocol: query <node> [algo] | topk <node> <k> [algo]\n\
          addedge <u> <v> | deledge <u> <v> | commit | epoch\n\
          save | snapshot | stats | help | quit";

/// With `--data-dir`, recovery takes precedence: a directory that already
/// holds a store restarts the server into its last committed epoch and the
/// graph flags are not consulted; a fresh (or missing) directory is
/// initialized from the flags. Without `--data-dir` the store is in-memory.
fn build_store(opts: &Options) -> Result<GraphStore, String> {
    let Some(dir) = &opts.data_dir else {
        return Ok(GraphStore::new(Arc::new(build_graph(opts)?)));
    };
    let (store, how) = GraphStore::open_or_create(dir, || {
        build_graph(opts)
            .map(Arc::new)
            .map_err(StoreError::InitFailed)
    })
    .map_err(|e| match e {
        StoreError::InitFailed(msg) => msg,
        e => format!("cannot recover {}: {e}", dir.display()),
    })?;
    match how {
        Opened::Recovered => eprintln!(
            "simrank-serve: recovered {} at epoch {} ({} WAL records)",
            dir.display(),
            store.epoch(),
            store.durability().map_or(0, |info| info.wal_records),
        ),
        Opened::Created => eprintln!(
            "simrank-serve: initialized durable store in {}",
            dir.display()
        ),
    }
    Ok(store)
}

fn build_graph(opts: &Options) -> Result<DiGraph, String> {
    if let Some((n, m)) = opts.ba {
        return barabasi_albert(n, m, true, opts.seed).map_err(|e| e.to_string());
    }
    let key = opts.dataset.as_deref().unwrap_or("GQ");
    let spec =
        exactsim_datasets::dataset_by_key(key).ok_or_else(|| format!("unknown dataset `{key}`"))?;
    let generated = spec
        .generate_scaled(opts.scale)
        .map_err(|e| e.to_string())?;
    Ok(generated.graph)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("simrank-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // With --data-dir, recovery takes precedence: a directory that already
    // holds a store restarts the server into its last committed epoch and
    // the graph flags are not consulted. A fresh directory is initialized
    // from the flags. Without --data-dir the store is in-memory.
    let store = match build_store(&opts) {
        Ok(store) => store,
        Err(msg) => {
            eprintln!("simrank-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServiceConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        exactsim: ExactSimConfig {
            epsilon: opts.epsilon,
            // The budget keeps interactive latency bounded but caps accuracy:
            // below the epsilon the budget can satisfy, walk allocations are
            // scaled down proportionally (see ExactSim::apply_budget). 0 lifts
            // the cap and serves the paper-exact sample counts.
            walk_budget: (opts.walk_budget > 0).then_some(opts.walk_budget),
            ..ExactSimConfig::default()
        },
        prsim: exactsim::prsim::PrSimConfig {
            epsilon: opts.epsilon,
            ..Default::default()
        },
        ..ServiceConfig::default()
    };
    let service = match SimRankService::with_store(Arc::new(store), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simrank-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "simrank-serve ready: {} nodes, {} edges, default algo {}, {} workers (type `help`)",
        service.graph().num_nodes(),
        service.graph().num_edges(),
        opts.algo,
        service.workers(),
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let mut out = stdout.lock();
        match serve_line(&service, opts.algo, line.trim()) {
            Action::Reply(reply) => {
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
            }
            Action::Silent => {}
            Action::Quit => break,
        }
    }
    eprintln!("--- final stats ---\n{}", service.stats());
    ExitCode::SUCCESS
}

enum Action {
    Reply(String),
    Silent,
    Quit,
}

/// A protocol-level failure: a stable machine-readable code plus a human
/// message. Every rejected request — malformed input, unknown algorithms,
/// out-of-range node ids — becomes one `{"error": ..., "code": ...}` reply
/// line; the server never panics on request contents.
struct ProtoError {
    code: &'static str,
    message: String,
}

fn bad_request(message: String) -> ProtoError {
    ProtoError {
        code: "bad_request",
        message,
    }
}

impl From<ServiceError> for ProtoError {
    fn from(e: ServiceError) -> Self {
        let code = match &e {
            ServiceError::Algorithm(SimRankError::SourceOutOfRange { .. }) => "out_of_range",
            ServiceError::Algorithm(_) => "algorithm",
            ServiceError::UnknownAlgorithm(_) => "unknown_algorithm",
            ServiceError::InvalidRequest(_) => "bad_request",
            ServiceError::Internal(_) => "internal",
        };
        ProtoError {
            code,
            message: e.to_string(),
        }
    }
}

impl From<StoreError> for ProtoError {
    fn from(e: StoreError) -> Self {
        let code = match &e {
            StoreError::NodeOutOfRange { .. } => "out_of_range",
            StoreError::SelfLoop(_) => "bad_request",
            StoreError::NotDurable => "not_durable",
            StoreError::Io { .. } => "io",
            // Recovery-time corruption classes; a running server only sees
            // these if the disk goes bad underneath it.
            StoreError::SnapshotCorrupt { .. }
            | StoreError::WalCorrupt { .. }
            | StoreError::UnsupportedVersion { .. }
            | StoreError::NoSnapshot { .. }
            | StoreError::StoreExists { .. }
            | StoreError::Locked { .. }
            | StoreError::InitFailed(_) => "storage",
        };
        ProtoError {
            code,
            message: e.to_string(),
        }
    }
}

fn serve_line(service: &SimRankService, default_algo: AlgorithmKind, line: &str) -> Action {
    if line.is_empty() || line.starts_with('#') {
        return Action::Silent;
    }
    let parts: Vec<&str> = line.split_whitespace().collect();
    let algo_arg = |idx: usize| -> Result<AlgorithmKind, ProtoError> {
        match parts.get(idx) {
            Some(name) => name.parse().map_err(ProtoError::from),
            None => Ok(default_algo),
        }
    };
    let node_arg = |s: &&str| -> Result<u32, ProtoError> {
        s.parse::<u32>()
            .map_err(|_| bad_request(format!("bad node id `{s}`")))
    };
    match parts[0] {
        "quit" | "exit" => Action::Quit,
        "help" => {
            eprintln!("{HELP}");
            Action::Silent
        }
        "stats" => Action::Reply(service.stats().to_json()),
        "addedge" | "deledge" => {
            let deleting = parts[0] == "deledge";
            let result = match (parts.get(1), parts.get(2)) {
                (Some(u), Some(v)) => {
                    node_arg(u)
                        .and_then(|u| Ok((u, node_arg(v)?)))
                        .and_then(|(u, v)| {
                            if deleting {
                                service.store().stage_delete(u, v)
                            } else {
                                service.store().stage_insert(u, v)
                            }
                            .map_err(ProtoError::from)
                        })
                }
                _ => Err(bad_request(format!("usage: {} <u> <v>", parts[0]))),
            };
            match result {
                Ok(staged) => {
                    let staged = match staged {
                        exactsim_service::Staged::Pending => "pending",
                        exactsim_service::Staged::Cancelled => "cancelled",
                        exactsim_service::Staged::NoOp => "noop",
                    };
                    let (ins, del) = service.store().pending_counts();
                    Action::Reply(format!(
                        "{{\"op\":\"{}\",\"staged\":\"{staged}\",\"pending_insertions\":{ins},\"pending_deletions\":{del}}}",
                        parts[0],
                    ))
                }
                Err(e) => error_reply(&e),
            }
        }
        "commit" => match service.commit() {
            Ok(report) => Action::Reply(format!(
                "{{\"op\":\"commit\",\"epoch\":{},\"advanced\":{},\"edges_inserted\":{},\"edges_deleted\":{},\"num_edges\":{},\"build_us\":{}}}",
                report.epoch,
                report.advanced(),
                report.edges_inserted,
                report.edges_deleted,
                report.num_edges,
                report.build_time.as_micros(),
            )),
            Err(e) => error_reply(&ProtoError::from(e)),
        },
        "save" | "snapshot" => match service.store().save() {
            Ok(epoch) => {
                let wal_len = service
                    .store()
                    .durability()
                    .map_or(0, |info| info.wal_records);
                Action::Reply(format!(
                    "{{\"op\":\"save\",\"last_snapshot_epoch\":{epoch},\"wal_len\":{wal_len}}}"
                ))
            }
            Err(e) => error_reply(&ProtoError::from(e)),
        },
        "epoch" => {
            let (ins, del) = service.store().pending_counts();
            Action::Reply(format!(
                "{{\"epoch\":{},\"pending_insertions\":{ins},\"pending_deletions\":{del}}}",
                service.epoch(),
            ))
        }
        "query" => {
            let result = parts
                .get(1)
                .ok_or_else(|| bad_request("usage: query <node> [algo]".to_string()))
                .and_then(node_arg)
                .and_then(|node| Ok((node, algo_arg(2)?)))
                .and_then(|(node, algo)| service.query(algo, node).map_err(ProtoError::from));
            match result {
                Ok(response) => Action::Reply(response.to_json(Some(32))),
                Err(e) => error_reply(&e),
            }
        }
        "topk" => {
            let result = match (parts.get(1), parts.get(2)) {
                (Some(node), Some(k)) => node_arg(node)
                    .and_then(|node| {
                        let k = k
                            .parse::<usize>()
                            .map_err(|_| bad_request(format!("bad k `{k}`")))?;
                        Ok((node, k))
                    })
                    .and_then(|(node, k)| Ok((node, k, algo_arg(3)?)))
                    .and_then(|(node, k, algo)| {
                        service.top_k(algo, node, k).map_err(ProtoError::from)
                    }),
                _ => Err(bad_request("usage: topk <node> <k> [algo]".to_string())),
            };
            match result {
                Ok(response) => Action::Reply(response.to_json()),
                Err(e) => error_reply(&e),
            }
        }
        other => error_reply(&ProtoError {
            code: "unknown_command",
            message: format!("unknown command `{other}` (try help)"),
        }),
    }
}

fn error_reply(e: &ProtoError) -> Action {
    Action::Reply(format!(
        "{{\"error\":\"{}\",\"code\":\"{}\"}}",
        exactsim_service::stats::escape_json(&e.message),
        e.code
    ))
}
