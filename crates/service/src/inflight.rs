//! In-flight query deduplication.
//!
//! When several threads concurrently miss the cache on the same key, exactly
//! one of them (the *leader*) performs the computation; the rest (the
//! *followers*) block on the leader's slot and receive a clone of its result.
//! This is the standard "single-flight" pattern: under a thundering herd of
//! identical queries the service performs one computation, not N.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::cache::CacheKey;
use crate::error::ServiceError;
use crate::response::QueryResponse;

pub(crate) type QueryResult = Result<Arc<QueryResponse>, ServiceError>;

/// One in-flight computation, shared between the leader and its followers.
pub(crate) struct Slot {
    result: Mutex<Option<QueryResult>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes the result.
    pub(crate) fn wait(&self) -> QueryResult {
        let mut guard = self.result.lock().expect("in-flight slot poisoned");
        while guard.is_none() {
            guard = self.ready.wait(guard).expect("in-flight slot poisoned");
        }
        guard.as_ref().expect("checked above").clone()
    }

    fn publish(&self, result: QueryResult) {
        let mut guard = self.result.lock().expect("in-flight slot poisoned");
        *guard = Some(result);
        self.ready.notify_all();
    }
}

/// Outcome of [`InflightTable::join_or_lead`].
pub(crate) enum Ticket {
    /// This thread must compute and then call [`InflightTable::complete`].
    Lead(Arc<Slot>),
    /// Another thread is computing; wait on the slot.
    Follow(Arc<Slot>),
}

/// The table of currently-computing keys.
#[derive(Default)]
pub(crate) struct InflightTable {
    map: Mutex<HashMap<CacheKey, Arc<Slot>>>,
}

impl InflightTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Either registers the caller as the leader for `key` or returns the
    /// existing leader's slot to wait on.
    pub(crate) fn join_or_lead(&self, key: CacheKey) -> Ticket {
        let mut map = self.map.lock().expect("in-flight table poisoned");
        match map.get(&key) {
            Some(slot) => Ticket::Follow(Arc::clone(slot)),
            None => {
                let slot = Arc::new(Slot::new());
                map.insert(key, Arc::clone(&slot));
                Ticket::Lead(slot)
            }
        }
    }

    /// Publishes the leader's result and retires the key. Callers must have
    /// already inserted successful results into the cache *before* calling
    /// this, so that a thread arriving after retirement finds the cache
    /// populated (the hand-off has no window in which neither holds the
    /// answer).
    pub(crate) fn complete(&self, key: &CacheKey, slot: &Arc<Slot>, result: QueryResult) {
        {
            let mut map = self.map.lock().expect("in-flight table poisoned");
            map.remove(key);
        }
        slot.publish(result);
    }

    /// Number of keys currently being computed (diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.map.lock().expect("in-flight table poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::AlgorithmKind;
    use std::time::Duration;

    fn key() -> CacheKey {
        CacheKey {
            epoch: 0,
            algorithm: AlgorithmKind::ExactSim,
            source: 1,
            epsilon_tier: 20,
        }
    }

    #[test]
    fn first_caller_leads_latecomers_follow() {
        let table = InflightTable::new();
        let Ticket::Lead(slot) = table.join_or_lead(key()) else {
            panic!("first caller must lead");
        };
        let Ticket::Follow(_) = table.join_or_lead(key()) else {
            panic!("second caller must follow");
        };
        assert_eq!(table.len(), 1);
        table.complete(&key(), &slot, Err(ServiceError::InvalidRequest("x".into())));
        assert_eq!(table.len(), 0);
        // Key retired: next caller leads again.
        assert!(matches!(table.join_or_lead(key()), Ticket::Lead(_)));
    }

    #[test]
    fn followers_receive_the_leaders_result_across_threads() {
        let table = Arc::new(InflightTable::new());
        let Ticket::Lead(slot) = table.join_or_lead(key()) else {
            panic!("lead expected");
        };
        let mut handles = Vec::new();
        for _ in 0..4 {
            let table = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                match table.join_or_lead(key()) {
                    Ticket::Follow(slot) => slot.wait(),
                    // A thread may arrive after completion; lead-and-bail.
                    Ticket::Lead(slot) => {
                        let r = Err(ServiceError::InvalidRequest("late".into()));
                        table.complete(&key(), &slot, r.clone());
                        r
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        let published = Arc::new(QueryResponse {
            algorithm: AlgorithmKind::ExactSim,
            epoch: 0,
            source: 1,
            scores: vec![1.0, 0.5],
            query_time: Duration::from_micros(5),
        });
        table.complete(&key(), &slot, Ok(Arc::clone(&published)));
        for h in handles {
            if let Ok(resp) = h.join().unwrap() {
                assert_eq!(resp.scores, published.scores);
            }
        }
    }
}
