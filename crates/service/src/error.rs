//! Service-level error type.
//!
//! [`ServiceError`] is `Clone` because one computation's outcome may be
//! broadcast to many deduplicated waiters (see `crate::inflight`).

use std::fmt;

use exactsim::SimRankError;

/// Errors produced by the query-serving layer.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The underlying algorithm rejected the request (bad source, empty
    /// graph, invalid configuration, …).
    Algorithm(SimRankError),
    /// A request named an algorithm the service does not know.
    UnknownAlgorithm(String),
    /// A request was malformed (CLI / protocol layer).
    InvalidRequest(String),
    /// The serving machinery itself failed (computation panicked, worker
    /// lost) — never caused by the request contents.
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Algorithm(e) => write!(f, "algorithm error: {e}"),
            ServiceError::UnknownAlgorithm(name) => write!(f, "unknown algorithm `{name}`"),
            ServiceError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal serving error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Algorithm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimRankError> for ServiceError {
    fn from(e: SimRankError) -> Self {
        ServiceError::Algorithm(e)
    }
}
