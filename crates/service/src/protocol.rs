//! The `simrank-serve` wire protocol, shared by every front-end.
//!
//! One request per newline-terminated line; every request is answered with
//! exactly one JSON object on one line (the only exceptions: `help`, whose
//! rendering is front-end specific, and `quit`, which just closes). The same
//! grammar is spoken on stdin (the original REPL), over TCP
//! ([`crate::net`]), and by `simrank-client` — extracting it here is what
//! lets all of them share one parser and one error-code vocabulary.
//!
//! ```text
//! request   = query | topk | shardtopk | addedge | deledge | addnode
//!           | commit | epoch | ping | save | stats | metrics | slowlog
//!           | trace | help | quit | shutdown
//! query     = "query" node [algo]
//! topk      = "topk" node k [algo]
//! shardtopk = "shardtopk" node k shard num_shards [algo]
//! addedge   = "addedge" node node
//! deledge   = "deledge" node node
//! addnode   = "addnode" [count]       count = u64 (>= 1, default 1)
//! slowlog   = "slowlog" [n]
//! trace     = "trace" (query | topk | commit)
//! node      = u32        k = usize      algo = "exactsim" | "prsim" | "mc"
//! shard     = usize (< num_shards)      num_shards = usize (>= 1)
//! ```
//!
//! `shardtopk` is the router-facing half of a scatter/gathered top-k: it
//! answers the top-k of the candidate subset that `shard` owns in a
//! `num_shards`-way deterministic partition (`exactsim_graph::partition`).
//! The server needs no shard configuration of its own — ownership is a pure
//! function of `(node, num_shards)` recomputed per request — which is what
//! lets an unmodified `simrank-serve` process act as a remote shard.
//!
//! `metrics` is the one reply that spans multiple lines (Prometheus text
//! exposition is inherently line-oriented): its payload is terminated by a
//! `# EOF` line so stream clients can frame it.
//!
//! Rejected requests never panic and never close the connection; they answer
//! `{"error": "<message>", "code": "<code>"}` with a stable machine-readable
//! code from the table below.
//!
//! | code | meaning |
//! |---|---|
//! | [`codes::BAD_REQUEST`] | malformed request line (usage errors, bad numbers) |
//! | [`codes::UNKNOWN_COMMAND`] | first word is not a command |
//! | [`codes::UNKNOWN_ALGORITHM`] | an algorithm name the service does not know |
//! | [`codes::OUT_OF_RANGE`] | node id outside the graph's id space |
//! | [`codes::ALGORITHM`] | the algorithm rejected the request for another reason |
//! | [`codes::NOT_DURABLE`] | `save` on a store without a `--data-dir` |
//! | [`codes::IO`] | persistence I/O failure |
//! | [`codes::STORAGE`] | store-level failure (corruption classes, lock) |
//! | [`codes::INTERNAL`] | the serving machinery itself failed |
//! | [`codes::CAPACITY`] | TCP listener at `--max-conns`, connection refused |
//! | [`codes::SHARD_UNAVAILABLE`] | a router could not reach a shard backend |

use std::fmt;

use exactsim::SimRankError;

use crate::error::ServiceError;
use crate::metrics::{STAGE_PARSE, STAGE_SERIALIZE};
use crate::response::AlgorithmKind;
use crate::service::SimRankService;
use exactsim_obs::json::escape_json;
use exactsim_obs::trace;
use exactsim_store::StoreError;

/// The stable machine-readable error codes of `{"error","code"}` replies.
pub mod codes {
    /// Malformed request line: usage errors, unparsable numbers.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The first word of the line is not a protocol command.
    pub const UNKNOWN_COMMAND: &str = "unknown_command";
    /// An algorithm name the service does not serve.
    pub const UNKNOWN_ALGORITHM: &str = "unknown_algorithm";
    /// A node id outside the graph's id space.
    pub const OUT_OF_RANGE: &str = "out_of_range";
    /// The algorithm rejected the request for a non-range reason.
    pub const ALGORITHM: &str = "algorithm";
    /// `save` was asked of an in-memory (no `--data-dir`) store.
    pub const NOT_DURABLE: &str = "not_durable";
    /// Persistence I/O failure underneath a durable store.
    pub const IO: &str = "io";
    /// Store-level failure: recovery-time corruption classes, WAL lock, …
    pub const STORAGE: &str = "storage";
    /// The serving machinery itself failed (panicked computation, lost
    /// worker) — never caused by request contents.
    pub const INTERNAL: &str = "internal";
    /// The TCP listener is at its `--max-conns` bound; the connection is
    /// answered with this error and closed without serving requests.
    pub const CAPACITY: &str = "capacity";
    /// A sharded router could not reach a shard backend (connection refused,
    /// timed out, or dropped mid-request). Always a *typed, prompt* reply —
    /// a down shard must never turn into a hang. Only routers emit it; a
    /// plain single-process server never does.
    pub const SHARD_UNAVAILABLE: &str = "shard_unavailable";
}

/// One parsed protocol request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `query <node> [algo]` — full single-source column.
    Query {
        /// Query source node.
        node: u32,
        /// Explicit algorithm, or `None` for the server default.
        algo: Option<AlgorithmKind>,
    },
    /// `topk <node> <k> [algo]` — the k most similar nodes.
    TopK {
        /// Query source node.
        node: u32,
        /// How many results.
        k: usize,
        /// Explicit algorithm, or `None` for the server default.
        algo: Option<AlgorithmKind>,
    },
    /// `shardtopk <node> <k> <shard> <num_shards> [algo]` — the top-k of the
    /// candidate subset `shard` owns in a `num_shards`-way partition.
    /// Router-facing: a gather merges `num_shards` of these into the
    /// unsharded `topk` answer, bit-for-bit.
    ShardTopK {
        /// Query source node.
        node: u32,
        /// How many results (per shard: the merge needs each shard's k best).
        k: usize,
        /// Which shard's candidate subset to rank.
        shard: usize,
        /// The partition width ownership is computed against.
        num_shards: usize,
        /// Explicit algorithm, or `None` for the server default.
        algo: Option<AlgorithmKind>,
    },
    /// `addedge <u> <v>` — stage the insertion of edge `u -> v`.
    AddEdge {
        /// Edge tail.
        u: u32,
        /// Edge head.
        v: u32,
    },
    /// `deledge <u> <v>` — stage the deletion of edge `u -> v`.
    DelEdge {
        /// Edge tail.
        u: u32,
        /// Edge head.
        v: u32,
    },
    /// `addnode [count]` — stage the growth of the node-id space by `count`
    /// (default 1) fresh, initially isolated nodes at the top of the id
    /// space. Staged edges may reference the new ids immediately; the growth
    /// publishes with the next `commit`.
    AddNode {
        /// How many node ids to add (>= 1).
        count: u64,
    },
    /// `commit` — publish staged updates as a new graph epoch.
    Commit,
    /// `epoch` — current epoch plus pending update counts.
    Epoch,
    /// `ping` — liveness probe. Answers from already-published state (one
    /// atomic epoch read), never touches the store or the commit barrier, so
    /// it stays cheap and non-blocking even mid-commit — which is exactly
    /// what a health checker needs: a hung `ping` means the process is sick,
    /// not that a commit is in flight.
    Ping,
    /// `save` (alias `snapshot`) — fold the WAL into a fresh snapshot.
    Save,
    /// `stats` — serving counters as one JSON line.
    Stats,
    /// `metrics` — every registered series in Prometheus text exposition
    /// format. The only multi-line reply; terminated by a `# EOF` line.
    Metrics,
    /// `slowlog [n]` — the newest `n` (default: all retained) slow-query
    /// records, newest first.
    SlowLog {
        /// How many records to return (`None` = all retained).
        n: Option<usize>,
    },
    /// `trace <request>` — execute the inner request with per-stage tracing
    /// enabled and reply with the stage breakdown plus the inner reply. Only
    /// `query`, `topk`, and `commit` run instrumented paths worth tracing.
    Trace {
        /// The canonical wire line of the inner request.
        line: String,
    },
    /// `help` — the protocol summary (rendering is front-end specific).
    Help,
    /// `quit` (alias `exit`) — close this session; the server keeps running.
    Quit,
    /// `shutdown` — gracefully stop the *whole server*: stop accepting,
    /// drain in-flight work, flush a snapshot when the store is durable.
    Shutdown,
}

impl Request {
    /// The canonical wire line for this request (no trailing newline).
    /// Parsing the result always round-trips: `parse_line(&r.to_line())`
    /// yields `r` again.
    pub fn to_line(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Query { node, algo: None } => write!(f, "query {node}"),
            Request::Query {
                node,
                algo: Some(a),
            } => write!(f, "query {node} {a}"),
            Request::TopK {
                node,
                k,
                algo: None,
            } => write!(f, "topk {node} {k}"),
            Request::TopK {
                node,
                k,
                algo: Some(a),
            } => write!(f, "topk {node} {k} {a}"),
            Request::ShardTopK {
                node,
                k,
                shard,
                num_shards,
                algo: None,
            } => write!(f, "shardtopk {node} {k} {shard} {num_shards}"),
            Request::ShardTopK {
                node,
                k,
                shard,
                num_shards,
                algo: Some(a),
            } => write!(f, "shardtopk {node} {k} {shard} {num_shards} {a}"),
            Request::AddEdge { u, v } => write!(f, "addedge {u} {v}"),
            Request::DelEdge { u, v } => write!(f, "deledge {u} {v}"),
            Request::AddNode { count } => write!(f, "addnode {count}"),
            Request::Commit => f.write_str("commit"),
            Request::Epoch => f.write_str("epoch"),
            Request::Ping => f.write_str("ping"),
            Request::Save => f.write_str("save"),
            Request::Stats => f.write_str("stats"),
            Request::Metrics => f.write_str("metrics"),
            Request::SlowLog { n: None } => f.write_str("slowlog"),
            Request::SlowLog { n: Some(n) } => write!(f, "slowlog {n}"),
            Request::Trace { line } => write!(f, "trace {line}"),
            Request::Help => f.write_str("help"),
            Request::Quit => f.write_str("quit"),
            Request::Shutdown => f.write_str("shutdown"),
        }
    }
}

/// A protocol-level failure: a stable machine-readable code (see [`codes`])
/// plus a human message. Every rejected request becomes one
/// `{"error": ..., "code": ...}` reply line; a server never panics on
/// request contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable description (JSON-escaped on the wire).
    pub message: String,
}

impl ProtoError {
    /// A [`codes::BAD_REQUEST`] error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtoError {
            code: codes::BAD_REQUEST,
            message: message.into(),
        }
    }

    /// The one-line `{"error","code"}` JSON reply for this failure.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\":\"{}\",\"code\":\"{}\"}}",
            escape_json(&self.message),
            self.code
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.code)
    }
}

impl From<ServiceError> for ProtoError {
    fn from(e: ServiceError) -> Self {
        let code = match &e {
            ServiceError::Algorithm(SimRankError::SourceOutOfRange { .. }) => codes::OUT_OF_RANGE,
            ServiceError::Algorithm(_) => codes::ALGORITHM,
            ServiceError::UnknownAlgorithm(_) => codes::UNKNOWN_ALGORITHM,
            ServiceError::InvalidRequest(_) => codes::BAD_REQUEST,
            ServiceError::Internal(_) => codes::INTERNAL,
        };
        ProtoError {
            code,
            message: e.to_string(),
        }
    }
}

impl From<StoreError> for ProtoError {
    fn from(e: StoreError) -> Self {
        let code = match &e {
            StoreError::NodeOutOfRange { .. } => codes::OUT_OF_RANGE,
            StoreError::SelfLoop(_) => codes::BAD_REQUEST,
            StoreError::NodeSpaceExhausted { .. } => codes::BAD_REQUEST,
            StoreError::NotDurable => codes::NOT_DURABLE,
            StoreError::Io { .. } => codes::IO,
            // Recovery-time corruption classes; a running server only sees
            // these if the disk goes bad underneath it.
            StoreError::SnapshotCorrupt { .. }
            | StoreError::WalCorrupt { .. }
            | StoreError::PageCorrupt { .. }
            | StoreError::PoolExhausted { .. }
            | StoreError::UnsupportedVersion { .. }
            | StoreError::NoSnapshot { .. }
            | StoreError::StoreExists { .. }
            | StoreError::Locked { .. }
            | StoreError::InitFailed(_) => codes::STORAGE,
        };
        ProtoError {
            code,
            message: e.to_string(),
        }
    }
}

/// The protocol command summary, shown by `help` (front-ends decide where:
/// the stdin REPL prints it to stderr, the TCP path replies `{"help": ...}`).
pub const PROTOCOL_HELP: &str = "\
query <node> [algo]      full single-source column (scores truncated to 32)
topk <node> <k> [algo]   top-k most similar nodes
shardtopk <node> <k> <shard> <num_shards> [algo]
                         top-k restricted to the candidates owned by shard
                         in a num_shards-way partition (router-facing)
addedge <u> <v>          stage the insertion of edge u -> v
deledge <u> <v>          stage the deletion of edge u -> v
addnode [count]          stage count (default 1) new isolated node ids
commit                   publish staged updates as a new graph epoch
epoch                    current epoch + pending update counts
ping                     liveness probe; replies from published state only
                         (no store access, no commit barrier)
save | snapshot          fold the WAL into a fresh snapshot file
stats                    serving counters (hit rate, p50/p99, epoch,
                         connections, durability state) as JSON
metrics                  all series in Prometheus text format (multi-line,
                         terminated by a `# EOF` line)
slowlog [n]              newest n slow-query records (default all retained)
trace <request>          run a query/topk/commit with per-stage tracing and
                         reply with the stage breakdown
help                     this summary
quit                     close this session (EOF too); server keeps running
shutdown                 gracefully stop the server: drain in-flight work,
                         flush a snapshot when durable";

/// Parses one request line. Returns `Ok(None)` for lines the protocol
/// ignores (empty lines and `#` comments), `Err` for malformed input.
pub fn parse_line(line: &str) -> Result<Option<Request>, ProtoError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let parts: Vec<&str> = line.split_whitespace().collect();
    let node_arg = |s: &&str| -> Result<u32, ProtoError> {
        s.parse::<u32>()
            .map_err(|_| ProtoError::bad_request(format!("bad node id `{s}`")))
    };
    let algo_arg = |idx: usize| -> Result<Option<AlgorithmKind>, ProtoError> {
        match parts.get(idx) {
            Some(name) => name.parse().map(Some).map_err(ProtoError::from),
            None => Ok(None),
        }
    };
    let arity = |max: usize, usage: &str| -> Result<(), ProtoError> {
        if parts.len() > max {
            Err(ProtoError::bad_request(format!("usage: {usage}")))
        } else {
            Ok(())
        }
    };
    let request = match parts[0] {
        "query" => {
            arity(3, "query <node> [algo]")?;
            let node = parts
                .get(1)
                .ok_or_else(|| ProtoError::bad_request("usage: query <node> [algo]"))
                .and_then(node_arg)?;
            Request::Query {
                node,
                algo: algo_arg(2)?,
            }
        }
        "topk" => {
            arity(4, "topk <node> <k> [algo]")?;
            let (node, k) = match (parts.get(1), parts.get(2)) {
                (Some(node), Some(k)) => {
                    let node = node_arg(node)?;
                    let k = k
                        .parse::<usize>()
                        .map_err(|_| ProtoError::bad_request(format!("bad k `{k}`")))?;
                    (node, k)
                }
                _ => return Err(ProtoError::bad_request("usage: topk <node> <k> [algo]")),
            };
            Request::TopK {
                node,
                k,
                algo: algo_arg(3)?,
            }
        }
        "shardtopk" => {
            const USAGE: &str = "shardtopk <node> <k> <shard> <num_shards> [algo]";
            arity(6, USAGE)?;
            let (node, k, shard, num_shards) =
                match (parts.get(1), parts.get(2), parts.get(3), parts.get(4)) {
                    (Some(node), Some(k), Some(shard), Some(num_shards)) => {
                        let node = node_arg(node)?;
                        let k = k
                            .parse::<usize>()
                            .map_err(|_| ProtoError::bad_request(format!("bad k `{k}`")))?;
                        let shard = shard
                            .parse::<usize>()
                            .map_err(|_| ProtoError::bad_request(format!("bad shard `{shard}`")))?;
                        let num_shards = num_shards.parse::<usize>().map_err(|_| {
                            ProtoError::bad_request(format!("bad shard count `{num_shards}`"))
                        })?;
                        (node, k, shard, num_shards)
                    }
                    _ => return Err(ProtoError::bad_request(format!("usage: {USAGE}"))),
                };
            // Partition sanity is a parse-time property: an empty partition
            // or an out-of-partition shard can never be served by anyone.
            if num_shards == 0 {
                return Err(ProtoError::bad_request("num_shards must be >= 1"));
            }
            if shard >= num_shards {
                return Err(ProtoError::bad_request(format!(
                    "shard {shard} out of partition 0..{num_shards}"
                )));
            }
            Request::ShardTopK {
                node,
                k,
                shard,
                num_shards,
                algo: algo_arg(5)?,
            }
        }
        "addedge" | "deledge" => {
            arity(3, "addedge|deledge <u> <v>")?;
            let (u, v) = match (parts.get(1), parts.get(2)) {
                (Some(u), Some(v)) => (node_arg(u)?, node_arg(v)?),
                _ => {
                    return Err(ProtoError::bad_request(format!(
                        "usage: {} <u> <v>",
                        parts[0]
                    )))
                }
            };
            if parts[0] == "addedge" {
                Request::AddEdge { u, v }
            } else {
                Request::DelEdge { u, v }
            }
        }
        "addnode" => {
            arity(2, "addnode [count]")?;
            let count = match parts.get(1) {
                Some(count) => count
                    .parse::<u64>()
                    .map_err(|_| ProtoError::bad_request(format!("bad count `{count}`")))?,
                None => 1,
            };
            if count == 0 {
                return Err(ProtoError::bad_request("count must be >= 1"));
            }
            Request::AddNode { count }
        }
        // Bare commands are as strict as the argument-taking ones: `commit 5`
        // or `shutdown now` is a typo to reject, not a request to execute.
        "commit" => {
            arity(1, "commit")?;
            Request::Commit
        }
        "epoch" => {
            arity(1, "epoch")?;
            Request::Epoch
        }
        "ping" => {
            arity(1, "ping")?;
            Request::Ping
        }
        "save" | "snapshot" => {
            arity(1, "save")?;
            Request::Save
        }
        "stats" => {
            arity(1, "stats")?;
            Request::Stats
        }
        "metrics" => {
            arity(1, "metrics")?;
            Request::Metrics
        }
        "slowlog" => {
            arity(2, "slowlog [n]")?;
            let n = match parts.get(1) {
                Some(n) => Some(
                    n.parse::<usize>()
                        .map_err(|_| ProtoError::bad_request(format!("bad count `{n}`")))?,
                ),
                None => None,
            };
            Request::SlowLog { n }
        }
        "trace" => {
            if parts.len() < 2 {
                return Err(ProtoError::bad_request("usage: trace <request>"));
            }
            // Parse the inner request now so malformed lines fail at parse
            // time with the inner error, and store its *canonical* form —
            // `Display`/`to_line` round-trips stay exact even if the operator
            // typed extra whitespace.
            let inner = parse_line(&parts[1..].join(" "))?
                .ok_or_else(|| ProtoError::bad_request("usage: trace <request>"))?;
            match inner {
                Request::Query { .. } | Request::TopK { .. } | Request::Commit => (),
                _ => {
                    return Err(ProtoError::bad_request(
                        "only query, topk, and commit can be traced",
                    ))
                }
            }
            Request::Trace {
                line: inner.to_line(),
            }
        }
        "help" => {
            arity(1, "help")?;
            Request::Help
        }
        "quit" | "exit" => {
            arity(1, "quit")?;
            Request::Quit
        }
        "shutdown" => {
            arity(1, "shutdown")?;
            Request::Shutdown
        }
        other => {
            return Err(ProtoError {
                code: codes::UNKNOWN_COMMAND,
                message: format!("unknown command `{other}` (try help)"),
            })
        }
    };
    Ok(Some(request))
}

/// What a front-end should do after executing one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Send this one-line reply and keep serving.
    Reply(String),
    /// Send this multi-line text payload verbatim and keep serving. Only the
    /// `metrics` verb produces this; the payload's final line is `# EOF`, so
    /// line-oriented clients know where the reply ends.
    Text(String),
    /// Render the protocol help (payload = [`PROTOCOL_HELP`]); the stdin
    /// REPL prints it to stderr, the TCP path replies `{"help": ...}`.
    Help(&'static str),
    /// Close this session; the server keeps running.
    Quit,
    /// Send this one-line acknowledgment, then gracefully stop the whole
    /// server (drain handlers, flush a snapshot when durable).
    Shutdown(String),
}

/// Executes one parsed request against a service. Every failure becomes a
/// `{"error","code"}` [`Outcome::Reply`]; this function never panics on
/// request contents.
pub fn execute(
    service: &SimRankService,
    default_algo: AlgorithmKind,
    request: &Request,
) -> Outcome {
    match request {
        Request::Help => Outcome::Help(PROTOCOL_HELP),
        Request::Quit => Outcome::Quit,
        Request::Shutdown => Outcome::Shutdown("{\"op\":\"shutdown\",\"draining\":true}".into()),
        Request::Stats => Outcome::Reply(service.stats().to_json()),
        Request::Metrics => Outcome::Text(service.metrics_text()),
        Request::SlowLog { n } => {
            let slowlog = service.slowlog();
            let entries = slowlog.recent(n.unwrap_or(usize::MAX));
            let rendered: Vec<String> = entries.iter().map(|r| r.to_json()).collect();
            Outcome::Reply(format!(
                "{{\"op\":\"slowlog\",\"threshold_us\":{},\"total_recorded\":{},\"entries\":[{}]}}",
                slowlog.threshold().as_micros(),
                slowlog.total_recorded(),
                rendered.join(","),
            ))
        }
        Request::Trace { line } => {
            trace::begin();
            let outcome = {
                let inner = {
                    let _parse =
                        trace::stage("parse", Some(service.metrics().query_stage(STAGE_PARSE)));
                    parse_line(line)
                };
                match inner {
                    Ok(Some(request)) => execute(service, default_algo, &request),
                    // Canonical lines always re-parse; keep the error paths
                    // total anyway.
                    Ok(None) => {
                        Outcome::Reply(ProtoError::bad_request("usage: trace <request>").to_json())
                    }
                    Err(e) => Outcome::Reply(e.to_json()),
                }
            };
            let report = trace::finish();
            match outcome {
                Outcome::Reply(reply) => {
                    let (total_us, spans) = match report {
                        Some(report) => (report.total_us, trace::spans_to_json(&report.spans)),
                        None => (0, "[]".to_string()),
                    };
                    Outcome::Reply(format!(
                        "{{\"op\":\"trace\",\"request\":\"{}\",\"total_us\":{total_us},\"spans\":{spans},\"reply\":{reply}}}",
                        escape_json(line),
                    ))
                }
                // Traceable requests (query/topk/commit) always produce a
                // Reply; anything else passes through untouched.
                other => other,
            }
        }
        Request::Ping => {
            Outcome::Reply(format!("{{\"op\":\"ping\",\"epoch\":{}}}", service.epoch(),))
        }
        Request::Epoch => {
            let (ins, del) = service.store().pending_counts();
            let nodes = service.store().pending_nodes();
            Outcome::Reply(format!(
                "{{\"epoch\":{},\"pending_insertions\":{ins},\"pending_deletions\":{del},\"pending_nodes\":{nodes}}}",
                service.epoch(),
            ))
        }
        Request::AddEdge { u, v } | Request::DelEdge { u, v } => {
            let (op, result) = if matches!(request, Request::AddEdge { .. }) {
                ("addedge", service.store().stage_insert(*u, *v))
            } else {
                ("deledge", service.store().stage_delete(*u, *v))
            };
            match result {
                Ok(staged) => {
                    crate::stats::ServiceStats::bump(&service.raw_stats().updates_staged);
                    let staged = match staged {
                        exactsim_store::Staged::Pending => "pending",
                        exactsim_store::Staged::Cancelled => "cancelled",
                        exactsim_store::Staged::NoOp => "noop",
                    };
                    let (ins, del) = service.store().pending_counts();
                    Outcome::Reply(format!(
                        "{{\"op\":\"{op}\",\"staged\":\"{staged}\",\"pending_insertions\":{ins},\"pending_deletions\":{del}}}",
                    ))
                }
                Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
            }
        }
        Request::AddNode { count } => match service.store().stage_add_nodes(*count) {
            Ok(pending_nodes) => {
                crate::stats::ServiceStats::bump(&service.raw_stats().updates_staged);
                Outcome::Reply(format!(
                    "{{\"op\":\"addnode\",\"staged\":\"pending\",\"added\":{count},\"pending_nodes\":{pending_nodes}}}"
                ))
            }
            Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
        },
        Request::Commit => match service.commit() {
            Ok(report) => {
                crate::stats::ServiceStats::bump(&service.raw_stats().commit_requests);
                Outcome::Reply(format!(
                "{{\"op\":\"commit\",\"epoch\":{},\"advanced\":{},\"edges_inserted\":{},\"edges_deleted\":{},\"nodes_added\":{},\"num_edges\":{},\"build_us\":{}}}",
                report.epoch,
                report.advanced(),
                report.edges_inserted,
                report.edges_deleted,
                report.nodes_added,
                report.num_edges,
                report.build_time.as_micros(),
                ))
            }
            Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
        },
        Request::Save => match service.store().save() {
            Ok(epoch) => {
                let wal_len = service
                    .store()
                    .durability()
                    .map_or(0, |info| info.wal_records);
                Outcome::Reply(format!(
                    "{{\"op\":\"save\",\"last_snapshot_epoch\":{epoch},\"wal_len\":{wal_len}}}"
                ))
            }
            Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
        },
        Request::Query { node, algo } => match service.query(algo.unwrap_or(default_algo), *node) {
            Ok(response) => {
                let _ser = trace::stage(
                    "serialize",
                    Some(service.metrics().query_stage(STAGE_SERIALIZE)),
                );
                Outcome::Reply(response.to_json(Some(32)))
            }
            Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
        },
        Request::TopK { node, k, algo } => {
            match service.top_k(algo.unwrap_or(default_algo), *node, *k) {
                Ok(response) => {
                    let _ser = trace::stage(
                        "serialize",
                        Some(service.metrics().query_stage(STAGE_SERIALIZE)),
                    );
                    Outcome::Reply(response.to_json())
                }
                Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
            }
        }
        Request::ShardTopK {
            node,
            k,
            shard,
            num_shards,
            algo,
        } => {
            match service.shard_top_k(algo.unwrap_or(default_algo), *node, *k, *shard, *num_shards)
            {
                Ok(response) => {
                    let _ser = trace::stage(
                        "serialize",
                        Some(service.metrics().query_stage(STAGE_SERIALIZE)),
                    );
                    Outcome::Reply(response.to_json())
                }
                Err(e) => Outcome::Reply(ProtoError::from(e).to_json()),
            }
        }
    }
}

/// Parses and executes one raw line: the shared serve loop body of every
/// front-end. `Ok(None)` means the line was empty/comment (no reply).
pub fn serve_line(
    service: &SimRankService,
    default_algo: AlgorithmKind,
    line: &str,
) -> Option<Outcome> {
    let parsed = {
        let _parse = trace::stage("parse", Some(service.metrics().query_stage(STAGE_PARSE)));
        parse_line(line)
    };
    match parsed {
        Ok(None) => None,
        Ok(Some(request)) => Some(execute(service, default_algo, &request)),
        Err(e) => Some(Outcome::Reply(e.to_json())),
    }
}
