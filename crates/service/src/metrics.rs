//! The service's labeled metric families and their Prometheus registry.
//!
//! One [`ServiceMetrics`] is built per [`crate::SimRankService`] at
//! construction time, registering **every** series eagerly — a scrape taken
//! before the first request already shows each family at zero, so monitoring
//! can alert on a series' absence without a warm-up race.
//!
//! ## Metric-name contract
//!
//! | series | type | labels |
//! |---|---|---|
//! | `simrank_queries_total` | counter | `algo`, `outcome` ∈ `hit\|miss\|dedup\|error` |
//! | `simrank_query_latency_us` | histogram | `algo`, `outcome` ∈ `hit\|miss\|dedup` |
//! | `simrank_query_stage_us` | histogram | `stage` ∈ `parse\|cache\|dedup\|index_build\|kernel\|serialize` |
//! | `simrank_serve_latency_us` | histogram | — (the aggregate behind `stats` p50/p99) |
//! | `simrank_commits_total` | counter | — (effective commits only) |
//! | `simrank_commit_stage_us` | histogram | `stage` ∈ `stage\|wal_append\|fsync\|csr_merge\|publish\|cache_sweep` |
//! | `simrank_slow_queries_total` | counter | — |
//! | `simrank_epoch` | gauge | — |
//! | `simrank_connections_accepted_total` … | counter | — (also `closed`, `rejected`) |
//! | `simrank_net_requests_total` | counter | — |
//! | `simrank_net_bytes_total` | counter | `direction` ∈ `in\|out` |
//! | `simrank_requests_per_connection` | histogram | — (unit: requests, not µs) |
//! | `simrank_pool_pages` | gauge | — (frame capacity; paged stores only) |
//! | `simrank_pool_resident_pages` | gauge | — (paged stores only) |
//! | `simrank_pool_pinned_pages` | gauge | — (paged stores only) |
//! | `simrank_pool_fetches_total` | counter | `result` ∈ `hit\|miss` (paged stores only) |
//! | `simrank_pool_evictions_total` | counter | — (paged stores only) |
//! | `simrank_kernel_scratch_checkouts_total` | counter | `result` ∈ `hit\|miss` |
//! | `simrank_kernel_solver_iterations_total` | counter | — |
//! | `simrank_kernel_mc_walks_total` | counter | — |
//! | `simrank_kernel_walk_pairs_total` | counter | — |
//!
//! `algo` label values are the wire names of
//! [`AlgorithmKind`]: `exactsim`, `prsim`, `mc`.
//! The kernel counters are process-global (they come from
//! [`exactsim::counters`]), so two services in one process report the same
//! kernel series — correct for Prometheus semantics (the scrape describes
//! the process), just worth knowing in embedding scenarios.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use exactsim_obs::metrics::{Counter, Histogram, Registry};
use exactsim_store::{CommitReport, GraphStore};

use crate::response::AlgorithmKind;
use crate::stats::ServiceStats;

/// Query outcome labels, indexed by the `OUTCOME_*` constants.
pub(crate) const OUTCOMES: [&str; 4] = ["hit", "miss", "dedup", "error"];
/// Served from the result cache.
pub(crate) const OUTCOME_HIT: usize = 0;
/// Computed by the leader.
pub(crate) const OUTCOME_MISS: usize = 1;
/// Joined an in-flight computation.
pub(crate) const OUTCOME_DEDUP: usize = 2;
/// Finished with an error (no latency series: error latencies are noise).
pub(crate) const OUTCOME_ERROR: usize = 3;

/// Query-path stage labels, indexed by the `STAGE_*` constants.
pub(crate) const QUERY_STAGES: [&str; 6] = [
    "parse",
    "cache",
    "dedup",
    "index_build",
    "kernel",
    "serialize",
];
/// Parsing the request line.
pub(crate) const STAGE_PARSE: usize = 0;
/// Result-cache probe.
pub(crate) const STAGE_CACHE: usize = 1;
/// Waiting on another query's in-flight computation.
pub(crate) const STAGE_DEDUP: usize = 2;
/// Building the algorithm's index for this epoch (first use only).
pub(crate) const STAGE_INDEX_BUILD: usize = 3;
/// The single-source kernel itself.
pub(crate) const STAGE_KERNEL: usize = 4;
/// Rendering the reply JSON.
pub(crate) const STAGE_SERIALIZE: usize = 5;

/// Commit-path stage labels, indexed by the `COMMIT_STAGE_*` constants.
/// The first five mirror [`exactsim_store::CommitTimings`]; `cache_sweep` is
/// the service-side sweep when the next query adopts the new epoch.
pub(crate) const COMMIT_STAGES: [&str; 6] = [
    "stage",
    "wal_append",
    "fsync",
    "csr_merge",
    "publish",
    "cache_sweep",
];
/// Copying the staged delta lists.
pub(crate) const COMMIT_STAGE_STAGE: usize = 0;
/// Buffered WAL write.
pub(crate) const COMMIT_STAGE_WAL_APPEND: usize = 1;
/// WAL fsync — the durability point.
pub(crate) const COMMIT_STAGE_FSYNC: usize = 2;
/// CSR merge of the delta into a new graph.
pub(crate) const COMMIT_STAGE_CSR_MERGE: usize = 3;
/// Publishing the new `(graph, epoch)` pair.
pub(crate) const COMMIT_STAGE_PUBLISH: usize = 4;
/// Service-side cache sweep on epoch adoption.
pub(crate) const COMMIT_STAGE_CACHE_SWEEP: usize = 5;

/// All labeled metric families of one service, plus the registry that
/// renders them.
pub(crate) struct ServiceMetrics {
    registry: Registry,
    /// `simrank_queries_total{algo, outcome}`, `[algo][outcome]`.
    query_outcomes: [[Arc<Counter>; 4]; 3],
    /// `simrank_query_latency_us{algo, outcome}`, `[algo][hit|miss|dedup]`.
    query_latency: [[Arc<Histogram>; 3]; 3],
    /// `simrank_query_stage_us{stage}`.
    query_stage: [Arc<Histogram>; 6],
    /// `simrank_commit_stage_us{stage}`.
    commit_stage: [Arc<Histogram>; 6],
    /// `simrank_commits_total`.
    commits: Arc<Counter>,
    /// `simrank_slow_queries_total`.
    slow_queries: Arc<Counter>,
}

impl ServiceMetrics {
    /// Builds the registry and eagerly registers every series.
    pub(crate) fn new(stats: &Arc<ServiceStats>, store: &Arc<GraphStore>) -> Self {
        let registry = Registry::new();

        let query_outcomes = std::array::from_fn(|algo_idx| {
            let algo = AlgorithmKind::ALL[algo_idx].wire_name();
            std::array::from_fn(|outcome_idx| {
                registry.counter(
                    "simrank_queries_total",
                    "Queries served, by algorithm and outcome",
                    &[("algo", algo), ("outcome", OUTCOMES[outcome_idx])],
                )
            })
        });
        let query_latency = std::array::from_fn(|algo_idx| {
            let algo = AlgorithmKind::ALL[algo_idx].wire_name();
            std::array::from_fn(|outcome_idx| {
                registry.histogram(
                    "simrank_query_latency_us",
                    "End-to-end query latency in microseconds, by algorithm and outcome",
                    &[("algo", algo), ("outcome", OUTCOMES[outcome_idx])],
                )
            })
        });
        let query_stage = std::array::from_fn(|stage_idx| {
            registry.histogram(
                "simrank_query_stage_us",
                "Query-path stage durations in microseconds",
                &[("stage", QUERY_STAGES[stage_idx])],
            )
        });
        registry.register_histogram(
            "simrank_serve_latency_us",
            "Aggregate serve latency in microseconds (all algorithms and outcomes)",
            &[],
            Arc::clone(&stats.latency),
        );

        let commits = registry.counter(
            "simrank_commits_total",
            "Store commits that published a new epoch",
            &[],
        );
        let commit_stage = std::array::from_fn(|stage_idx| {
            registry.histogram(
                "simrank_commit_stage_us",
                "Commit-path stage durations in microseconds (fsync is the durability point)",
                &[("stage", COMMIT_STAGES[stage_idx])],
            )
        });
        let slow_queries = registry.counter(
            "simrank_slow_queries_total",
            "Queries recorded by the slow-query log",
            &[],
        );

        let epoch_store = Arc::clone(store);
        registry.gauge_fn(
            "simrank_epoch",
            "Graph epoch currently published by the backing store",
            &[],
            move || epoch_store.epoch() as f64,
        );

        // Buffer-pool series exist only on paged stores: the backend is
        // fixed at boot, so absence cleanly signals "in-memory" to scrapers
        // (the eager-registration rule covers series that *can* move). The
        // hit/miss/eviction counters are monotonic across epochs because the
        // pool outlives every per-epoch page file.
        if store.is_paged() {
            type PoolReader = fn(&exactsim_store::PoolStats) -> u64;
            let pool_gauges: [(&str, &str, PoolReader); 3] = [
                (
                    "simrank_pool_pages",
                    "Buffer-pool frame capacity in pages",
                    |p| p.capacity,
                ),
                (
                    "simrank_pool_resident_pages",
                    "Buffer-pool frames currently holding a page",
                    |p| p.resident,
                ),
                (
                    "simrank_pool_pinned_pages",
                    "Buffer-pool frames pinned by live neighbor guards",
                    |p| p.pinned,
                ),
            ];
            for (name, help, read) in pool_gauges {
                let pool_store = Arc::clone(store);
                registry.gauge_fn(name, help, &[], move || {
                    pool_store.pool_stats().map_or(0, |p| read(&p)) as f64
                });
            }
            for (result, read) in [
                (
                    "hit",
                    (|p: &exactsim_store::PoolStats| p.hits) as PoolReader,
                ),
                ("miss", |p: &exactsim_store::PoolStats| p.misses),
            ] {
                let pool_store = Arc::clone(store);
                registry.counter_fn(
                    "simrank_pool_fetches_total",
                    "Buffer-pool page fetches, by hit/miss",
                    &[("result", result)],
                    move || pool_store.pool_stats().map_or(0, |p| read(&p)),
                );
            }
            let pool_store = Arc::clone(store);
            registry.counter_fn(
                "simrank_pool_evictions_total",
                "Resident pages evicted by the clock replacer",
                &[],
                move || pool_store.pool_stats().map_or(0, |p| p.evictions),
            );
        }

        // Connection/byte counters are bumped on ServiceStats by the net
        // listener; expose them as scrape-time reads so there is exactly one
        // bump site per event.
        type StatReader = fn(&ServiceStats) -> u64;
        let stat_counters: [(&str, &str, StatReader); 5] = [
            (
                "simrank_connections_accepted_total",
                "TCP connections accepted",
                |s| s.connections_accepted.load(Ordering::Relaxed),
            ),
            (
                "simrank_connections_closed_total",
                "TCP connections finished (EOF, quit, error, or drain)",
                |s| s.connections_closed.load(Ordering::Relaxed),
            ),
            (
                "simrank_connections_rejected_total",
                "TCP connections turned away at the connection cap",
                |s| s.connections_rejected.load(Ordering::Relaxed),
            ),
            (
                "simrank_net_requests_total",
                "Protocol requests served over TCP",
                |s| s.net_requests.load(Ordering::Relaxed),
            ),
            (
                "simrank_epoch_refreshes_total",
                "Times the service rebuilt its per-epoch state after a commit",
                |s| s.epoch_refreshes.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, read) in stat_counters {
            let stats = Arc::clone(stats);
            registry.counter_fn(name, help, &[], move || read(&stats));
        }
        for (direction, read) in [
            (
                "in",
                (|s: &ServiceStats| s.bytes_in.load(Ordering::Relaxed)) as fn(&ServiceStats) -> u64,
            ),
            ("out", |s: &ServiceStats| {
                s.bytes_out.load(Ordering::Relaxed)
            }),
        ] {
            let stats = Arc::clone(stats);
            registry.counter_fn(
                "simrank_net_bytes_total",
                "Payload bytes over TCP, by direction",
                &[("direction", direction)],
                move || read(&stats),
            );
        }
        registry.register_histogram(
            "simrank_requests_per_connection",
            "Requests served per finished TCP connection (unit: requests)",
            &[],
            Arc::clone(&stats.requests_per_conn),
        );

        // Kernel counters are process-global statics in the core crate.
        for (result, read) in [
            (
                "hit",
                (|| exactsim::counters::snapshot().scratch_pool_hits) as fn() -> u64,
            ),
            ("miss", || {
                exactsim::counters::snapshot().scratch_pool_misses
            }),
        ] {
            registry.counter_fn(
                "simrank_kernel_scratch_checkouts_total",
                "Scratch-workspace checkouts, by pool hit/miss",
                &[("result", result)],
                read,
            );
        }
        registry.counter_fn(
            "simrank_kernel_solver_iterations_total",
            "Solver level/iteration steps executed by the kernels",
            &[],
            || exactsim::counters::snapshot().solver_iterations,
        );
        registry.counter_fn(
            "simrank_kernel_mc_walks_total",
            "Monte-Carlo walks sampled by index builds",
            &[],
            || exactsim::counters::snapshot().mc_walks,
        );
        registry.counter_fn(
            "simrank_kernel_walk_pairs_total",
            "ExactSim diagonal walk pairs simulated",
            &[],
            || exactsim::counters::snapshot().walk_pairs,
        );

        ServiceMetrics {
            registry,
            query_outcomes,
            query_latency,
            query_stage,
            commit_stage,
            commits,
            slow_queries,
        }
    }

    /// Renders the Prometheus text exposition (ends with a `# EOF` line).
    pub(crate) fn render(&self) -> String {
        self.registry.render()
    }

    /// Records one finished query: outcome counter plus (for non-error
    /// outcomes) the per-algorithm latency histogram.
    pub(crate) fn record_query(&self, algorithm: AlgorithmKind, outcome: usize, latency: Duration) {
        self.query_outcomes[algorithm.index()][outcome].inc();
        if outcome != OUTCOME_ERROR {
            self.query_latency[algorithm.index()][outcome].record(latency);
        }
    }

    /// The stage histogram for one query-path stage (`STAGE_*`).
    pub(crate) fn query_stage(&self, stage: usize) -> &Arc<Histogram> {
        &self.query_stage[stage]
    }

    /// The stage histogram for one commit-path stage (`COMMIT_STAGE_*`).
    pub(crate) fn commit_stage(&self, stage: usize) -> &Arc<Histogram> {
        &self.commit_stage[stage]
    }

    /// Records an effective commit's per-stage breakdown. Empty commits are
    /// ignored; the WAL stages are skipped for in-memory stores (their
    /// timings are identically zero, and recording them would fake fsyncs).
    pub(crate) fn record_commit(&self, report: &CommitReport) {
        if !report.advanced() {
            return;
        }
        self.commits.inc();
        let t = &report.timings;
        self.commit_stage[COMMIT_STAGE_STAGE].record(t.staging);
        self.commit_stage[COMMIT_STAGE_CSR_MERGE].record(t.csr_merge);
        self.commit_stage[COMMIT_STAGE_PUBLISH].record(t.publish);
        if t.wal_append != Duration::ZERO || t.fsync != Duration::ZERO {
            self.commit_stage[COMMIT_STAGE_WAL_APPEND].record(t.wal_append);
            self.commit_stage[COMMIT_STAGE_FSYNC].record(t.fsync);
        }
    }

    /// Bumps the slow-query counter (the ring itself lives on the service).
    pub(crate) fn record_slow_query(&self) {
        self.slow_queries.inc();
    }
}
