//! # exactsim-service
//!
//! A concurrent query-serving subsystem that turns the `exactsim` algorithm
//! library into a long-lived engine, following the preprocess-once /
//! query-many split of incremental-view-maintenance systems: index
//! construction happens (lazily) once per algorithm, and a serving layer
//! answers heavy single-source / top-k SimRank traffic on top of it.
//!
//! The moving parts:
//!
//! | module | role |
//! |---|---|
//! | [`service`] | [`SimRankService`]: resolves its graph through an epoch-based [`exactsim_store::GraphStore`] and keeps per-epoch lazily-built algorithm indices behind `Arc<dyn SingleSourceAlgorithm + Send + Sync>` |
//! | [`cache`] | sharded LRU result cache keyed by `(epoch, algorithm, source, epsilon-tier)` with generation invalidation |
//! | `inflight` (private) | in-flight query deduplication: concurrent requests for the same key block on one computation |
//! | [`executor`] | worker-pool batch executor (std threads + channels, no external deps) |
//! | [`stats`] | [`ServiceStats`]: queries served, cache hit rate, p50/p99 latency from a fixed-bucket histogram, per-connection counters |
//! | `metrics` (private) | the labeled metric families (Prometheus text exposition via the `metrics` verb) wired over [`exactsim_obs`] |
//! | [`response`] | serializable [`QueryResponse`] / [`TopKResponse`] wire types |
//! | [`protocol`] | the line protocol itself: request grammar, parser, error codes, executor — shared by the stdin REPL, the TCP listener, and `simrank-client` |
//! | [`net`] | TCP front-end: acceptor + per-connection handler threads bounded by a `max_conns` semaphore, graceful drain on `shutdown`/SIGTERM |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use exactsim_graph::generators::barabasi_albert;
//! use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};
//!
//! let graph = Arc::new(barabasi_albert(200, 3, true, 42).unwrap());
//! let service = SimRankService::new(graph, ServiceConfig::fast_demo()).unwrap();
//!
//! // Single-source query: the first call computes, the second is a cache hit
//! // returning the exact same scores.
//! let a = service.query(AlgorithmKind::ExactSim, 7).unwrap();
//! let b = service.query(AlgorithmKind::ExactSim, 7).unwrap();
//! assert_eq!(a.scores, b.scores);
//! assert_eq!(service.stats().cache_hits, 1);
//!
//! // Top-k rides on the same cached single-source vectors.
//! let top = service.top_k(AlgorithmKind::ExactSim, 7, 5).unwrap();
//! assert!(top.entries.len() <= 5);
//! ```
//!
//! ## Online updates
//!
//! The service answers queries against immutable epoch snapshots published
//! by an [`exactsim_store::GraphStore`]. Stage edge updates on
//! [`SimRankService::store`], then [`SimRankService::commit`]:
//!
//! ```
//! use std::sync::Arc;
//! use exactsim_graph::generators::barabasi_albert;
//! use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};
//!
//! let graph = Arc::new(barabasi_albert(200, 3, true, 42).unwrap());
//! let service = SimRankService::new(graph, ServiceConfig::fast_demo()).unwrap();
//! let before = service.query(AlgorithmKind::ExactSim, 7).unwrap();
//!
//! service.store().stage_insert(7, 100).unwrap();
//! let report = service.commit().unwrap();
//! assert_eq!(report.epoch, 1);
//!
//! // The serving loop never stopped; the next query sees the new epoch and
//! // the stale cached column for source 7 can no longer be returned.
//! let after = service.query(AlgorithmKind::ExactSim, 7).unwrap();
//! assert_eq!(service.epoch(), 1);
//! assert_ne!(before.scores, after.scores);
//! ```
//!
//! ## Concurrency model
//!
//! * Each epoch's graph is immutable and shared (`Arc<DiGraph>`); algorithm
//!   indices are built at most once per epoch under a `OnceLock`.
//! * Queries may be issued from any number of threads; a sharded mutex LRU
//!   keeps cache contention low, and the in-flight table guarantees that at
//!   any moment at most one thread computes a given `(epoch, algorithm,
//!   source, epsilon-tier)` key — latecomers block and receive the leader's
//!   result.
//! * A commit never blocks readers: queries capture one epoch state up
//!   front and finish on it; the first query to observe the new epoch swaps
//!   the serving state and sweeps the cache generation.
//! * Batches are fanned out over a fixed worker pool and stream back over a
//!   channel in completion order.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod cache;
pub mod error;
pub mod executor;
pub(crate) mod inflight;
pub(crate) mod metrics;
pub mod net;
pub mod protocol;
pub mod response;
pub mod service;
pub mod stats;

pub use cache::{epsilon_tier, CacheKey, ShardedLruCache};
pub use error::ServiceError;
pub use executor::WorkerPool;
pub use net::{NetOptions, NetServerHandle, ProtocolHost};
pub use protocol::{Outcome, ProtoError, Request};
pub use response::{AlgorithmKind, QueryResponse, ShardTopKResponse, TopKResponse};
pub use service::{BatchAnswer, BatchItem, BatchRequest, ServiceConfig, SimRankService};
pub use stats::{ServiceStats, ServingShape, StatsSnapshot};

// Re-exported so protocol front-ends can drive updates and persistence
// without naming the store crate themselves.
pub use exactsim_store::{
    CommitReport, DurabilityInfo, GraphHandle, GraphSnapshot, GraphStore, Opened, PagedOptions,
    PoolStats, Staged, StoreError,
};
