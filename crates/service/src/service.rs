//! The long-lived SimRank query engine.
//!
//! [`SimRankService`] owns an immutable, shared graph (`Arc<DiGraph>`) and
//! builds each algorithm's index lazily — at most once, on first use, behind
//! a `OnceLock` — as `Arc<dyn SingleSourceAlgorithm + Send + Sync>`. Every
//! query flows through three layers:
//!
//! 1. the **sharded LRU cache** ([`crate::cache`]): a hit returns the shared
//!    `Arc<QueryResponse>` without touching the algorithm;
//! 2. the **in-flight table** ([`crate::inflight`]): concurrent misses on the
//!    same key elect one leader; followers block and share its result;
//! 3. the **algorithm**: the leader computes, inserts into the cache, then
//!    publishes to followers (insert-before-publish means there is no window
//!    in which neither cache nor in-flight table can answer).
//!
//! Batches fan out over a fixed [`WorkerPool`] and stream back over a
//! channel in completion order.

use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use exactsim::exactsim::ExactSimConfig;
use exactsim::mc::MonteCarloConfig;
use exactsim::prsim::PrSimConfig;
use exactsim::suite::{
    ExactSimAlgorithm, MonteCarloAlgorithm, PrSimAlgorithm, SingleSourceAlgorithm,
};
use exactsim::SimRankError;
use exactsim_graph::{DiGraph, NodeId};

use crate::cache::{epsilon_tier, CacheKey, ShardedLruCache};
use crate::error::ServiceError;
use crate::executor::WorkerPool;
use crate::inflight::{InflightTable, Ticket};
use crate::response::{AlgorithmKind, QueryResponse, TopKResponse};
use crate::stats::{ServiceStats, StatsSnapshot};

/// A `'static`, thread-safe, shareable algorithm handle.
type AlgorithmHandle = Arc<dyn SingleSourceAlgorithm + Send + Sync>;

/// Configuration of a [`SimRankService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads of the batch executor (`0` = one per available core).
    pub workers: usize,
    /// Total result-cache capacity in entries (each entry holds one full
    /// single-source column, i.e. `n` floats — size the capacity to the
    /// graph).
    pub cache_capacity: usize,
    /// Number of independent cache shards.
    pub cache_shards: usize,
    /// Configuration used when serving [`AlgorithmKind::ExactSim`].
    pub exactsim: ExactSimConfig,
    /// Configuration used when serving [`AlgorithmKind::PrSim`].
    pub prsim: PrSimConfig,
    /// Configuration used when serving [`AlgorithmKind::MonteCarlo`].
    pub mc: MonteCarloConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 1024,
            cache_shards: 16,
            exactsim: ExactSimConfig::default(),
            prsim: PrSimConfig::default(),
            mc: MonteCarloConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A configuration tuned for demos and tests: ExactSim at ε = 10⁻² with a
    /// capped walk budget, so queries on graphs of a few thousand nodes take
    /// milliseconds instead of the paper's ε = 10⁻⁷ ground-truth regime.
    pub fn fast_demo() -> Self {
        ServiceConfig {
            exactsim: ExactSimConfig {
                epsilon: 1e-2,
                walk_budget: Some(100_000),
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    /// The accuracy tier a given algorithm's answers are cached under.
    pub fn tier_for(&self, algorithm: AlgorithmKind) -> u16 {
        match algorithm {
            AlgorithmKind::ExactSim => epsilon_tier(self.exactsim.epsilon),
            AlgorithmKind::PrSim => epsilon_tier(self.prsim.epsilon),
            // MC's statistical error scales as 1/√r for r walks per node.
            AlgorithmKind::MonteCarlo => {
                epsilon_tier(1.0 / (self.mc.walks_per_node.max(1) as f64).sqrt())
            }
        }
    }
}

/// One request of a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRequest {
    /// Which algorithm should answer.
    pub algorithm: AlgorithmKind,
    /// The query source node.
    pub source: NodeId,
    /// `Some(k)` for a top-k answer, `None` for the full column.
    pub top_k: Option<usize>,
}

/// The answer to one [`BatchRequest`].
#[derive(Clone, Debug)]
pub enum BatchAnswer {
    /// Full single-source column (shared with the cache).
    Full(Arc<QueryResponse>),
    /// Top-k extraction.
    TopK(TopKResponse),
}

/// One completed batch item, streamed back in completion order.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// Index of the request in the submitted batch.
    pub index: usize,
    /// The request this answers.
    pub request: BatchRequest,
    /// The answer or the error.
    pub outcome: Result<BatchAnswer, ServiceError>,
}

struct Inner {
    graph: Arc<DiGraph>,
    config: ServiceConfig,
    /// Lazily-built per-algorithm indices, in [`AlgorithmKind::ALL`] order.
    /// Build errors are cached too: the configuration cannot change after
    /// construction, so retrying an invalid one is pointless.
    algorithms: [OnceLock<Result<AlgorithmHandle, SimRankError>>; 3],
    cache: ShardedLruCache,
    inflight: InflightTable,
    stats: ServiceStats,
}

impl Inner {
    fn handle(&self, kind: AlgorithmKind) -> Result<AlgorithmHandle, ServiceError> {
        let cell = &self.algorithms[kind.index()];
        cell.get_or_init(|| {
            let graph = Arc::clone(&self.graph);
            Ok(match kind {
                // ExactSim is index-free: constructing its handle is pure
                // validation and does not count as an index build.
                AlgorithmKind::ExactSim => {
                    Arc::new(ExactSimAlgorithm::new(graph, self.config.exactsim.clone())?)
                        as AlgorithmHandle
                }
                AlgorithmKind::PrSim => {
                    ServiceStats::bump(&self.stats.index_builds);
                    Arc::new(PrSimAlgorithm::build(graph, self.config.prsim)?) as AlgorithmHandle
                }
                AlgorithmKind::MonteCarlo => {
                    ServiceStats::bump(&self.stats.index_builds);
                    Arc::new(MonteCarloAlgorithm::build(graph, self.config.mc)?) as AlgorithmHandle
                }
            })
        })
        .clone()
        .map_err(ServiceError::Algorithm)
    }

    fn key_for(&self, algorithm: AlgorithmKind, source: NodeId) -> CacheKey {
        CacheKey {
            algorithm,
            source,
            epsilon_tier: self.config.tier_for(algorithm),
        }
    }

    fn compute(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
    ) -> Result<Arc<QueryResponse>, ServiceError> {
        let handle = self.handle(algorithm)?;
        let output = handle.query(source)?;
        // Counted only on success so that
        // queries = cache_hits + dedup_joins + computations + errors.
        ServiceStats::bump(&self.stats.computations);
        Ok(Arc::new(QueryResponse::from_output(
            algorithm, source, output,
        )))
    }

    fn query(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
    ) -> Result<Arc<QueryResponse>, ServiceError> {
        let serve_start = Instant::now();
        ServiceStats::bump(&self.stats.queries);
        let key = self.key_for(algorithm, source);

        if let Some(hit) = self.cache.get(&key) {
            ServiceStats::bump(&self.stats.cache_hits);
            self.stats.latency.record(serve_start.elapsed());
            return Ok(hit);
        }

        let result = match self.inflight.join_or_lead(key) {
            Ticket::Lead(slot) => {
                // Double-check the cache: between our miss and winning the
                // lead, the previous leader may have inserted and retired.
                if let Some(hit) = self.cache.get(&key) {
                    ServiceStats::bump(&self.stats.cache_hits);
                    self.inflight.complete(&key, &slot, Ok(Arc::clone(&hit)));
                    self.stats.latency.record(serve_start.elapsed());
                    return Ok(hit);
                }
                // A panicking computation must still retire the key and wake
                // the followers — otherwise the key is wedged forever (every
                // later query joins a computation that will never complete).
                let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.compute(algorithm, source)
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        self.inflight.complete(
                            &key,
                            &slot,
                            Err(ServiceError::Internal("computation panicked".into())),
                        );
                        // Keep the books balanced (queries = hits + joins +
                        // computations + errors) even on the unwind path.
                        ServiceStats::bump(&self.stats.errors);
                        self.stats.latency.record(serve_start.elapsed());
                        std::panic::resume_unwind(payload);
                    }
                };
                if let Ok(response) = &result {
                    // Insert BEFORE retiring the in-flight key: see module docs.
                    self.cache.insert(key, Arc::clone(response));
                }
                self.inflight.complete(&key, &slot, result.clone());
                result
            }
            Ticket::Follow(slot) => {
                let result = slot.wait();
                if result.is_ok() {
                    ServiceStats::bump(&self.stats.dedup_joins);
                }
                result
            }
        };
        if result.is_err() {
            ServiceStats::bump(&self.stats.errors);
        }
        self.stats.latency.record(serve_start.elapsed());
        result
    }
}

/// The concurrent SimRank query-serving engine. Cheap to clone (all clones
/// share one graph, one cache, one worker pool).
#[derive(Clone)]
pub struct SimRankService {
    inner: Arc<Inner>,
    /// Kept outside `Inner` so batch jobs (which capture `Arc<Inner>`) never
    /// keep the pool itself alive: when the last service clone drops, the
    /// pool's channel closes, workers drain and are joined — even if those
    /// workers still hold `Inner` references through queued jobs.
    pool: Arc<WorkerPool>,
}

impl SimRankService {
    /// Creates a service for `graph`. Validates the configurations eagerly
    /// (fail fast at startup, not on first query); indices are still built
    /// lazily on first use of each algorithm.
    pub fn new(graph: Arc<DiGraph>, config: ServiceConfig) -> Result<Self, ServiceError> {
        if graph.num_nodes() == 0 {
            return Err(ServiceError::Algorithm(SimRankError::EmptyGraph));
        }
        // ExactSim construction is pure validation (the solver is index-free)
        // and also covers the graph-dependent checks a bare
        // `config.exactsim.validate()` cannot see, e.g. a
        // `DiagonalMode::Exact` vector whose length mismatches the graph —
        // without this, that error would surface on the first query and be
        // cached forever in the `OnceLock`.
        exactsim::exactsim::ExactSim::new(graph.as_ref(), config.exactsim.clone())?;
        config.prsim.validate()?;
        config.mc.validate()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        let cache = ShardedLruCache::new(config.cache_capacity, config.cache_shards);
        Ok(SimRankService {
            inner: Arc::new(Inner {
                graph,
                config,
                algorithms: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
                cache,
                inflight: InflightTable::new(),
                stats: ServiceStats::new(),
            }),
            pool: Arc::new(WorkerPool::new(workers)),
        })
    }

    /// The graph this service answers queries about.
    pub fn graph(&self) -> &Arc<DiGraph> {
        &self.inner.graph
    }

    /// The configuration the service was created with.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Number of batch worker threads.
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Serves one single-source query through cache → dedup → computation.
    ///
    /// The returned response is shared with the cache; results for the same
    /// `(algorithm, source)` under an unchanged configuration are
    /// bit-identical to a direct library call because every algorithm
    /// derives its randomness deterministically from `(seed, source)`.
    pub fn query(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
    ) -> Result<Arc<QueryResponse>, ServiceError> {
        self.inner.query(algorithm, source)
    }

    /// Serves a top-k query (rides on the cached single-source column).
    pub fn top_k(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
        k: usize,
    ) -> Result<TopKResponse, ServiceError> {
        Ok(self.query(algorithm, source)?.top_k(k))
    }

    /// Submits a batch; answers stream back over the returned channel in
    /// completion order (each [`BatchItem`] carries its original index).
    /// Dropping the receiver abandons the remaining answers but not the
    /// cache/stat effects of their computations.
    pub fn submit_batch(&self, requests: Vec<BatchRequest>) -> Receiver<BatchItem> {
        let (tx, rx) = channel();
        for (index, request) in requests.into_iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let tx = tx.clone();
            self.pool.execute(move || {
                let outcome = inner
                    .query(request.algorithm, request.source)
                    .map(|response| match request.top_k {
                        Some(k) => BatchAnswer::TopK(response.top_k(k)),
                        None => BatchAnswer::Full(response),
                    });
                // The receiver may be gone; that only cancels delivery.
                let _ = tx.send(BatchItem {
                    index,
                    request,
                    outcome,
                });
            });
        }
        rx
    }

    /// Runs a batch to completion and returns the answers ordered by their
    /// original request index. A request whose worker died before reporting
    /// (it panicked mid-computation) comes back as a
    /// [`ServiceError::Internal`] outcome rather than silently missing.
    pub fn run_batch(&self, requests: Vec<BatchRequest>) -> Vec<BatchItem> {
        let expected = requests.len();
        let rx = self.submit_batch(requests.clone());
        let mut items: Vec<BatchItem> = rx.iter().take(expected).collect();
        if items.len() < expected {
            let mut answered = vec![false; expected];
            for item in &items {
                answered[item.index] = true;
            }
            for (index, request) in requests.into_iter().enumerate() {
                if !answered[index] {
                    items.push(BatchItem {
                        index,
                        request,
                        outcome: Err(ServiceError::Internal(
                            "worker lost before returning a result".into(),
                        )),
                    });
                }
            }
        }
        items.sort_by_key(|item| item.index);
        items
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner
            .stats
            .snapshot(self.inner.cache.evictions(), self.inner.cache.len())
    }

    /// Number of keys currently being computed (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.inner.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::barabasi_albert;

    fn demo_service(n: usize, seed: u64) -> SimRankService {
        let graph = Arc::new(barabasi_albert(n, 3, true, seed).unwrap());
        SimRankService::new(graph, ServiceConfig::fast_demo()).unwrap()
    }

    #[test]
    fn rejects_empty_graphs_and_bad_configs_eagerly() {
        let empty = Arc::new(exactsim_graph::GraphBuilder::new(0).build());
        assert!(SimRankService::new(empty, ServiceConfig::fast_demo()).is_err());

        let graph = Arc::new(barabasi_albert(20, 2, true, 1).unwrap());
        let bad = ServiceConfig {
            exactsim: ExactSimConfig {
                epsilon: 0.0,
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(Arc::clone(&graph), bad).is_err());

        // PrSim/MC misconfigurations also fail at construction, not on the
        // first query of that algorithm (where the error would be cached
        // forever in the OnceLock).
        let bad_prsim = ServiceConfig {
            prsim: exactsim::prsim::PrSimConfig {
                epsilon: 0.0,
                ..Default::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(Arc::clone(&graph), bad_prsim).is_err());
        let bad_mc = ServiceConfig {
            mc: exactsim::mc::MonteCarloConfig {
                walks_per_node: 0,
                ..Default::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(Arc::clone(&graph), bad_mc).is_err());

        // Graph-dependent misconfiguration: an exact diagonal of the wrong
        // length (graph has 20 nodes) is rejected at construction too.
        let bad_diag = ServiceConfig {
            exactsim: ExactSimConfig {
                diagonal: exactsim::exactsim::DiagonalMode::Exact(vec![1.0; 5]),
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(graph, bad_diag).is_err());
    }

    #[test]
    fn query_errors_do_not_poison_the_key() {
        let service = demo_service(30, 3);
        let out_of_range = service.query(AlgorithmKind::ExactSim, 999);
        assert!(matches!(
            out_of_range,
            Err(ServiceError::Algorithm(
                SimRankError::SourceOutOfRange { .. }
            ))
        ));
        // The failed query is not cached and the key is retired: a valid
        // query afterwards works, as does retrying the bad one.
        assert!(service.query(AlgorithmKind::ExactSim, 0).is_ok());
        assert!(service.query(AlgorithmKind::ExactSim, 999).is_err());
        let snap = service.stats();
        assert_eq!(snap.errors, 2);
        assert_eq!(snap.cached_entries, 1);
    }

    #[test]
    fn index_is_built_once_per_algorithm() {
        let service = demo_service(40, 5);
        service.query(AlgorithmKind::MonteCarlo, 0).unwrap();
        service.query(AlgorithmKind::MonteCarlo, 1).unwrap();
        service.query(AlgorithmKind::PrSim, 0).unwrap();
        // Index-free ExactSim must not count as an index build.
        service.query(AlgorithmKind::ExactSim, 0).unwrap();
        let snap = service.stats();
        assert_eq!(snap.index_builds, 2);
        assert_eq!(snap.computations, 4);
    }

    #[test]
    fn batch_answers_carry_indices_and_complete() {
        let service = demo_service(60, 7);
        let requests: Vec<BatchRequest> = (0..20)
            .map(|i| BatchRequest {
                algorithm: AlgorithmKind::ExactSim,
                source: (i % 5) as NodeId,
                top_k: if i % 2 == 0 { Some(3) } else { None },
            })
            .collect();
        let items = service.run_batch(requests.clone());
        assert_eq!(items.len(), 20);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i);
            assert_eq!(item.request, requests[i]);
            match item.outcome.as_ref().unwrap() {
                BatchAnswer::TopK(top) => assert!(top.entries.len() <= 3),
                BatchAnswer::Full(resp) => assert_eq!(resp.scores.len(), 60),
            }
        }
        // 5 distinct sources -> at most 5 computations, everything else served
        // from cache or joined in flight.
        let snap = service.stats();
        assert!(
            snap.computations <= 5,
            "computations = {}",
            snap.computations
        );
        assert_eq!(snap.queries, 20);
    }
}
