//! The long-lived SimRank query engine.
//!
//! [`SimRankService`] resolves its graph through an epoch-based
//! [`GraphStore`] and keeps a per-epoch serving state: the epoch's immutable
//! `Arc<DiGraph>` snapshot plus each algorithm's index, built lazily — at
//! most once per epoch, on first use, behind a `OnceLock` — as
//! `Arc<dyn SingleSourceAlgorithm + Send + Sync>`. Every query flows through
//! three layers:
//!
//! 1. the **sharded LRU cache** ([`crate::cache`]): a hit returns the shared
//!    `Arc<QueryResponse>` without touching the algorithm;
//! 2. the **in-flight table** (the private `inflight` module): concurrent
//!    misses on the same key elect one leader; followers block and share its
//!    result;
//! 3. the **algorithm**: the leader computes, inserts into the cache, then
//!    publishes to followers (insert-before-publish means there is no window
//!    in which neither cache nor in-flight table can answer).
//!
//! ## Updates and epochs
//!
//! Edge updates staged on the store become visible when
//! [`GraphStore::commit`] publishes a new epoch. The serving loop never
//! stops: each query captures one epoch state up front and runs entirely
//! against it, so a query racing a commit returns pre-commit or post-commit
//! values, never a mix. The first query that observes a fresh epoch swaps in
//! a new state and sweeps the result cache — and since [`CacheKey`] carries
//! the epoch, entries of superseded epochs are unreachable even before the
//! sweep. In-flight queries on the old snapshot finish undisturbed (their
//! `Arc`s pin the old graph).
//!
//! Batches fan out over a fixed [`WorkerPool`] and stream back over a
//! channel in completion order.

use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use exactsim::exactsim::ExactSimConfig;
use exactsim::mc::MonteCarloConfig;
use exactsim::prsim::PrSimConfig;
use exactsim::suite::{
    ExactSimAlgorithm, MonteCarloAlgorithm, PrSimAlgorithm, SingleSourceAlgorithm,
};
use exactsim::SimRankError;
use exactsim_graph::{DiGraph, NodeId};
use exactsim_obs::slowlog::SlowLog;
use exactsim_obs::trace;
use exactsim_store::GraphHandle;
use exactsim_store::{CommitReport, GraphSnapshot, GraphStore, StoreError};

use crate::cache::{epsilon_tier, CacheKey, ShardedLruCache};
use crate::error::ServiceError;
use crate::executor::WorkerPool;
use crate::inflight::{InflightTable, Ticket};
use crate::metrics::{
    ServiceMetrics, COMMIT_STAGE_CACHE_SWEEP, OUTCOME_DEDUP, OUTCOME_ERROR, OUTCOME_HIT,
    OUTCOME_MISS, STAGE_CACHE, STAGE_DEDUP, STAGE_INDEX_BUILD, STAGE_KERNEL,
};
use crate::response::{AlgorithmKind, QueryResponse, ShardTopKResponse, TopKResponse};
use crate::stats::{ServiceStats, ServingShape, StatsSnapshot};
use exactsim_graph::partition::PartitionMap;

/// A `'static`, thread-safe, shareable algorithm handle.
type AlgorithmHandle = Arc<dyn SingleSourceAlgorithm + Send + Sync>;

/// Configuration of a [`SimRankService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads of the batch executor (`0` = one per available core).
    pub workers: usize,
    /// Total result-cache capacity in entries (each entry holds one full
    /// single-source column, i.e. `n` floats — size the capacity to the
    /// graph).
    pub cache_capacity: usize,
    /// Number of independent cache shards.
    pub cache_shards: usize,
    /// Configuration used when serving [`AlgorithmKind::ExactSim`].
    pub exactsim: ExactSimConfig,
    /// Configuration used when serving [`AlgorithmKind::PrSim`].
    pub prsim: PrSimConfig,
    /// Configuration used when serving [`AlgorithmKind::MonteCarlo`].
    pub mc: MonteCarloConfig,
    /// Queries at least this slow are recorded in the slow-query ring
    /// (`slowlog` protocol verb). A zero threshold records every query.
    pub slowlog_threshold: Duration,
    /// Capacity of the slow-query ring (newest entries win).
    pub slowlog_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 1024,
            cache_shards: 16,
            exactsim: ExactSimConfig::default(),
            prsim: PrSimConfig::default(),
            mc: MonteCarloConfig::default(),
            slowlog_threshold: Duration::from_millis(100),
            slowlog_capacity: 128,
        }
    }
}

impl ServiceConfig {
    /// A configuration tuned for demos and tests: ExactSim at ε = 10⁻² with a
    /// capped walk budget, so queries on graphs of a few thousand nodes take
    /// milliseconds instead of the paper's ε = 10⁻⁷ ground-truth regime.
    pub fn fast_demo() -> Self {
        ServiceConfig {
            exactsim: ExactSimConfig {
                epsilon: 1e-2,
                walk_budget: Some(100_000),
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    /// The accuracy tier a given algorithm's answers are cached under.
    pub fn tier_for(&self, algorithm: AlgorithmKind) -> u16 {
        match algorithm {
            AlgorithmKind::ExactSim => epsilon_tier(self.exactsim.epsilon),
            AlgorithmKind::PrSim => epsilon_tier(self.prsim.epsilon),
            // MC's statistical error scales as 1/√r for r walks per node.
            AlgorithmKind::MonteCarlo => {
                epsilon_tier(1.0 / (self.mc.walks_per_node.max(1) as f64).sqrt())
            }
        }
    }
}

/// One request of a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRequest {
    /// Which algorithm should answer.
    pub algorithm: AlgorithmKind,
    /// The query source node.
    pub source: NodeId,
    /// `Some(k)` for a top-k answer, `None` for the full column.
    pub top_k: Option<usize>,
}

/// The answer to one [`BatchRequest`].
#[derive(Clone, Debug)]
pub enum BatchAnswer {
    /// Full single-source column (shared with the cache).
    Full(Arc<QueryResponse>),
    /// Top-k extraction.
    TopK(TopKResponse),
}

/// One completed batch item, streamed back in completion order.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// Index of the request in the submitted batch.
    pub index: usize,
    /// The request this answers.
    pub request: BatchRequest,
    /// The answer or the error.
    pub outcome: Result<BatchAnswer, ServiceError>,
}

/// One epoch's immutable serving state: the graph snapshot it serves plus
/// the per-algorithm indices built against it.
struct EpochState {
    epoch: u64,
    /// The epoch's graph behind either storage backend (in-memory CSR or
    /// buffer-pool-paged); every algorithm is generic over it.
    graph: GraphHandle,
    /// Lazily-built per-algorithm indices, in [`AlgorithmKind::ALL`] order.
    /// Build errors are cached too: neither the configuration nor this
    /// epoch's graph can change, so retrying an invalid combination is
    /// pointless — the cell empties naturally at the next epoch.
    algorithms: [OnceLock<Result<AlgorithmHandle, SimRankError>>; 3],
}

impl EpochState {
    fn new(snapshot: GraphSnapshot) -> Self {
        EpochState {
            epoch: snapshot.epoch,
            graph: snapshot.graph,
            algorithms: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }

    fn handle(
        &self,
        kind: AlgorithmKind,
        config: &ServiceConfig,
        stats: &ServiceStats,
    ) -> Result<AlgorithmHandle, ServiceError> {
        let cell = &self.algorithms[kind.index()];
        cell.get_or_init(|| {
            let graph = self.graph.clone();
            Ok(match kind {
                // ExactSim is index-free: constructing its handle is pure
                // validation and does not count as an index build.
                AlgorithmKind::ExactSim => {
                    Arc::new(ExactSimAlgorithm::new(graph, config.exactsim.clone())?)
                        as AlgorithmHandle
                }
                AlgorithmKind::PrSim => {
                    ServiceStats::bump(&stats.index_builds);
                    Arc::new(PrSimAlgorithm::build(graph, config.prsim)?) as AlgorithmHandle
                }
                AlgorithmKind::MonteCarlo => {
                    ServiceStats::bump(&stats.index_builds);
                    Arc::new(MonteCarloAlgorithm::build(graph, config.mc)?) as AlgorithmHandle
                }
            })
        })
        .clone()
        .map_err(ServiceError::Algorithm)
    }

    /// Heap footprint of each algorithm's index for this epoch, in
    /// [`AlgorithmKind::ALL`] order. `None` for algorithms whose index has
    /// not been built (or failed to build) this epoch; index-free ExactSim
    /// reports `Some(0)` once its handle exists.
    fn index_memory_bytes(&self) -> [Option<u64>; 3] {
        let mut out = [None; 3];
        for kind in AlgorithmKind::ALL {
            out[kind.index()] = self.algorithms[kind.index()]
                .get()
                .and_then(|built| built.as_ref().ok())
                .map(|handle| handle.index_bytes() as u64);
        }
        out
    }
}

struct Inner {
    store: Arc<GraphStore>,
    config: ServiceConfig,
    /// The epoch state queries currently serve from. Refreshed lazily by the
    /// first query that observes a newer published epoch on the store.
    state: RwLock<Arc<EpochState>>,
    cache: ShardedLruCache,
    inflight: InflightTable,
    /// Behind `Arc` so the metrics registry's scrape-time closures can read
    /// the same counters the hot path bumps.
    stats: Arc<ServiceStats>,
    metrics: ServiceMetrics,
    slowlog: SlowLog,
}

impl Inner {
    /// Returns the serving state for the store's current epoch, rebuilding
    /// it (and sweeping the cache) if a commit published a newer one. The
    /// returned `Arc` pins a consistent `(epoch, graph, indices)` triple for
    /// the whole query, whatever the store does concurrently.
    fn current_state(&self) -> Arc<EpochState> {
        {
            let state = self.state.read().expect("epoch state poisoned");
            if state.epoch == self.store.epoch() {
                return Arc::clone(&state);
            }
        }
        let mut state = self.state.write().expect("epoch state poisoned");
        // Double-check under the write lock: another thread may have
        // refreshed while we waited, and the epoch may have advanced again.
        let snapshot = self.store.snapshot();
        if state.epoch != snapshot.epoch {
            *state = Arc::new(EpochState::new(snapshot));
            // Reclaim superseded epochs' entries eagerly. The epoch in the
            // key already makes them unreachable, so an old-epoch insert
            // racing this sweep is harmless either way. This is the tail end
            // of the commit pipeline, so it lands in the commit-stage series.
            {
                let _sweep = trace::stage(
                    "cache_sweep",
                    Some(self.metrics.commit_stage(COMMIT_STAGE_CACHE_SWEEP)),
                );
                self.cache.clear();
            }
            ServiceStats::bump(&self.stats.epoch_refreshes);
        }
        Arc::clone(&state)
    }

    fn key_for(&self, state: &EpochState, algorithm: AlgorithmKind, source: NodeId) -> CacheKey {
        CacheKey {
            epoch: state.epoch,
            algorithm,
            source,
            epsilon_tier: self.config.tier_for(algorithm),
        }
    }

    fn compute(
        &self,
        state: &EpochState,
        algorithm: AlgorithmKind,
        source: NodeId,
    ) -> Result<Arc<QueryResponse>, ServiceError> {
        // Only time the handle acquisition as "index_build" when this call
        // actually builds it — later queries get the built handle for an
        // atomic load and must not pollute the build-stage histogram (and a
        // traced cache-hit query must show no index/kernel stages at all).
        let handle = if state.algorithms[algorithm.index()].get().is_some() {
            state.handle(algorithm, &self.config, &self.stats)?
        } else {
            let _build = trace::stage(
                "index_build",
                Some(self.metrics.query_stage(STAGE_INDEX_BUILD)),
            );
            state.handle(algorithm, &self.config, &self.stats)?
        };
        let output = {
            let _kernel = trace::stage("kernel", Some(self.metrics.query_stage(STAGE_KERNEL)));
            handle.query(source)?
        };
        // Counted only on success so that
        // queries = cache_hits + dedup_joins + computations + errors.
        ServiceStats::bump(&self.stats.computations);
        Ok(Arc::new(QueryResponse::from_output(
            algorithm,
            state.epoch,
            source,
            output,
        )))
    }

    /// Closes the books on one query: aggregate latency, the labeled
    /// outcome/latency series, and the slow-query ring. The request string is
    /// built lazily — only queries that cross the slowlog threshold pay for
    /// the formatting.
    fn finish_query(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
        outcome: usize,
        started: Instant,
    ) {
        let elapsed = started.elapsed();
        self.stats.latency.record(elapsed);
        self.metrics.record_query(algorithm, outcome, elapsed);
        let recorded = self
            .slowlog
            .observe(elapsed, crate::metrics::OUTCOMES[outcome], || {
                format!("query {source} {}", algorithm.wire_name())
            });
        if recorded {
            self.metrics.record_slow_query();
        }
    }

    fn query(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
    ) -> Result<Arc<QueryResponse>, ServiceError> {
        let serve_start = Instant::now();
        ServiceStats::bump(&self.stats.queries);
        // Captured once: cache key, index, and computation all use this
        // epoch's snapshot, so one answer never mixes two graphs.
        let state = self.current_state();
        let key = self.key_for(&state, algorithm, source);

        let cached = {
            let _probe = trace::stage("cache", Some(self.metrics.query_stage(STAGE_CACHE)));
            self.cache.get(&key)
        };
        if let Some(hit) = cached {
            ServiceStats::bump(&self.stats.cache_hits);
            self.finish_query(algorithm, source, OUTCOME_HIT, serve_start);
            return Ok(hit);
        }

        let (result, outcome) = match self.inflight.join_or_lead(key) {
            Ticket::Lead(slot) => {
                // Double-check the cache: between our miss and winning the
                // lead, the previous leader may have inserted and retired.
                if let Some(hit) = self.cache.get(&key) {
                    ServiceStats::bump(&self.stats.cache_hits);
                    self.inflight.complete(&key, &slot, Ok(Arc::clone(&hit)));
                    self.finish_query(algorithm, source, OUTCOME_HIT, serve_start);
                    return Ok(hit);
                }
                // A panicking computation must still retire the key and wake
                // the followers — otherwise the key is wedged forever (every
                // later query joins a computation that will never complete).
                let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.compute(&state, algorithm, source)
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        self.inflight.complete(
                            &key,
                            &slot,
                            Err(ServiceError::Internal("computation panicked".into())),
                        );
                        // Keep the books balanced (queries = hits + joins +
                        // computations + errors) even on the unwind path.
                        ServiceStats::bump(&self.stats.errors);
                        self.finish_query(algorithm, source, OUTCOME_ERROR, serve_start);
                        std::panic::resume_unwind(payload);
                    }
                };
                if let Ok(response) = &result {
                    // Insert BEFORE retiring the in-flight key: see module
                    // docs. Skipped if a commit superseded our epoch while we
                    // computed: the epoch-tagged key could never be looked up
                    // again, so inserting would only strand a dead column in
                    // the cache until capacity eviction. (Best-effort — a
                    // commit racing this check leaks at most one entry, and
                    // correctness never depends on it.)
                    if state.epoch == self.store.epoch() {
                        self.cache.insert(key, Arc::clone(response));
                    }
                }
                self.inflight.complete(&key, &slot, result.clone());
                (result, OUTCOME_MISS)
            }
            Ticket::Follow(slot) => {
                let result = {
                    let _join = trace::stage("dedup", Some(self.metrics.query_stage(STAGE_DEDUP)));
                    slot.wait()
                };
                if result.is_ok() {
                    ServiceStats::bump(&self.stats.dedup_joins);
                }
                (result, OUTCOME_DEDUP)
            }
        };
        let outcome = if result.is_err() {
            ServiceStats::bump(&self.stats.errors);
            OUTCOME_ERROR
        } else {
            outcome
        };
        self.finish_query(algorithm, source, outcome, serve_start);
        result
    }
}

/// The concurrent SimRank query-serving engine. Cheap to clone (all clones
/// share one graph, one cache, one worker pool).
#[derive(Clone)]
pub struct SimRankService {
    inner: Arc<Inner>,
    /// Kept outside `Inner` so batch jobs (which capture `Arc<Inner>`) never
    /// keep the pool itself alive: when the last service clone drops, the
    /// pool's channel closes, workers drain and are joined — even if those
    /// workers still hold `Inner` references through queued jobs.
    pool: Arc<WorkerPool>,
}

impl SimRankService {
    /// Creates a service for a static `graph`, wrapping it in a private
    /// [`GraphStore`] at epoch 0. Use [`SimRankService::store`] (or
    /// [`SimRankService::with_store`] with a shared store) to stage and
    /// commit edge updates later.
    pub fn new(graph: Arc<DiGraph>, config: ServiceConfig) -> Result<Self, ServiceError> {
        Self::with_store(Arc::new(GraphStore::new(graph)), config)
    }

    /// Creates a service resolving its graph through `store`. Validates the
    /// configurations eagerly against the store's current snapshot (fail
    /// fast at startup, not on first query); indices are still built lazily
    /// on first use of each algorithm per epoch.
    pub fn with_store(store: Arc<GraphStore>, config: ServiceConfig) -> Result<Self, ServiceError> {
        let snapshot = store.snapshot();
        if snapshot.graph.num_nodes() == 0 {
            return Err(ServiceError::Algorithm(SimRankError::EmptyGraph));
        }
        // ExactSim construction is pure validation (the solver is index-free)
        // and also covers the graph-dependent checks a bare
        // `config.exactsim.validate()` cannot see, e.g. a
        // `DiagonalMode::Exact` vector whose length mismatches the graph —
        // without this, that error would surface on the first query and be
        // cached for the rest of the epoch in the `OnceLock`. (A later
        // `addnode` commit can still grow the node space past an exact
        // diagonal's length; that epoch's build error is then cached like
        // any other per-epoch failure.)
        exactsim::exactsim::ExactSim::new(snapshot.graph.clone(), config.exactsim.clone())?;
        config.prsim.validate()?;
        config.mc.validate()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        let cache = ShardedLruCache::new(config.cache_capacity, config.cache_shards);
        let stats = Arc::new(ServiceStats::new());
        // Registered before the first query so a scrape of an idle service
        // already exposes every series at zero (Prometheus rate() needs the
        // first sample to exist).
        let metrics = ServiceMetrics::new(&stats, &store);
        let slowlog = SlowLog::new(config.slowlog_capacity, config.slowlog_threshold);
        Ok(SimRankService {
            inner: Arc::new(Inner {
                store,
                config,
                state: RwLock::new(Arc::new(EpochState::new(snapshot))),
                cache,
                inflight: InflightTable::new(),
                stats,
                metrics,
                slowlog,
            }),
            pool: Arc::new(WorkerPool::new(workers)),
        })
    }

    /// The graph this service is currently serving queries about, behind
    /// its storage backend ([`GraphHandle`]). After a store commit this
    /// reflects the new epoch once the service has refreshed (which also
    /// happens lazily on the next query).
    pub fn graph(&self) -> GraphHandle {
        self.inner.current_state().graph.clone()
    }

    /// The dynamic graph store backing this service. Stage updates with
    /// [`GraphStore::stage_insert`] / [`GraphStore::stage_delete`], then
    /// publish them with [`SimRankService::commit`] (or the store's own
    /// `commit`) — the serving loop picks the new epoch up without stopping.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.inner.store
    }

    /// The graph epoch currently published by the backing store.
    pub fn epoch(&self) -> u64 {
        self.inner.store.epoch()
    }

    /// Commits the store's staged updates: materializes the new graph, bumps
    /// the epoch, and atomically swaps the published snapshot. Queries
    /// already running finish on their old snapshot; the next query adopts
    /// the new epoch and sweeps the result cache. Zero serving downtime.
    ///
    /// On a durable store the delta is WAL-logged and fsynced before
    /// publication; a persistence failure ([`StoreError`]) leaves the staged
    /// delta intact and nothing published. In-memory stores never fail.
    pub fn commit(&self) -> Result<CommitReport, StoreError> {
        let report = self.inner.store.commit()?;
        self.inner.metrics.record_commit(&report);
        Ok(report)
    }

    /// The configuration the service was created with.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Number of batch worker threads.
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Serves one single-source query through cache → dedup → computation.
    ///
    /// The returned response is shared with the cache; results for the same
    /// `(algorithm, source)` under an unchanged configuration are
    /// bit-identical to a direct library call because every algorithm
    /// derives its randomness deterministically from `(seed, source)`.
    pub fn query(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
    ) -> Result<Arc<QueryResponse>, ServiceError> {
        self.inner.query(algorithm, source)
    }

    /// Serves a top-k query (rides on the cached single-source column).
    pub fn top_k(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
        k: usize,
    ) -> Result<TopKResponse, ServiceError> {
        Ok(self.query(algorithm, source)?.top_k(k))
    }

    /// Serves the shard-restricted half of a scatter/gathered top-k: the
    /// top-k of the candidate subset `shard` owns in a `num_shards`-way
    /// [`PartitionMap`].
    ///
    /// The full single-source column is computed (or served from cache)
    /// exactly as for [`SimRankService::top_k`] and filtered to the owned
    /// subset afterwards, so per-shard entries carry the same bit-exact
    /// scores as the unsharded answer — merging `num_shards` of these
    /// reproduces it exactly (`exactsim::topk::merge_top_k`). Ownership is a
    /// pure function of the request's `(shard, num_shards)`: the service
    /// itself holds no shard configuration.
    pub fn shard_top_k(
        &self,
        algorithm: AlgorithmKind,
        source: NodeId,
        k: usize,
        shard: usize,
        num_shards: usize,
    ) -> Result<ShardTopKResponse, ServiceError> {
        if num_shards == 0 {
            return Err(ServiceError::InvalidRequest(
                "num_shards must be >= 1".into(),
            ));
        }
        if shard >= num_shards {
            return Err(ServiceError::InvalidRequest(format!(
                "shard {shard} out of partition 0..{num_shards}"
            )));
        }
        let response = self.query(algorithm, source)?;
        let partition = PartitionMap::new(num_shards);
        let entries = exactsim::topk::top_k_where(&response.scores, source, k, |node| {
            partition.owner(node) == shard
        });
        Ok(ShardTopKResponse {
            inner: TopKResponse {
                algorithm,
                epoch: response.epoch,
                source,
                k,
                entries,
                query_time: response.query_time,
            },
            shard,
            num_shards,
        })
    }

    /// Submits a batch; answers stream back over the returned channel in
    /// completion order (each [`BatchItem`] carries its original index).
    /// Dropping the receiver abandons the remaining answers but not the
    /// cache/stat effects of their computations.
    pub fn submit_batch(&self, requests: Vec<BatchRequest>) -> Receiver<BatchItem> {
        let (tx, rx) = channel();
        for (index, request) in requests.into_iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let tx = tx.clone();
            self.pool.execute(move || {
                let outcome = inner
                    .query(request.algorithm, request.source)
                    .map(|response| match request.top_k {
                        Some(k) => BatchAnswer::TopK(response.top_k(k)),
                        None => BatchAnswer::Full(response),
                    });
                // The receiver may be gone; that only cancels delivery.
                let _ = tx.send(BatchItem {
                    index,
                    request,
                    outcome,
                });
            });
        }
        rx
    }

    /// Runs a batch to completion and returns the answers ordered by their
    /// original request index. A request whose worker died before reporting
    /// (it panicked mid-computation) comes back as a
    /// [`ServiceError::Internal`] outcome rather than silently missing.
    pub fn run_batch(&self, requests: Vec<BatchRequest>) -> Vec<BatchItem> {
        let expected = requests.len();
        let rx = self.submit_batch(requests.clone());
        let mut items: Vec<BatchItem> = rx.iter().take(expected).collect();
        if items.len() < expected {
            let mut answered = vec![false; expected];
            for item in &items {
                answered[item.index] = true;
            }
            for (index, request) in requests.into_iter().enumerate() {
                if !answered[index] {
                    items.push(BatchItem {
                        index,
                        request,
                        outcome: Err(ServiceError::Internal(
                            "worker lost before returning a result".into(),
                        )),
                    });
                }
            }
        }
        items.sort_by_key(|item| item.index);
        items
    }

    /// A point-in-time snapshot of the serving counters, including the
    /// backing store's durability state (data dir, WAL length, snapshot
    /// epoch) when it has one, and the per-algorithm index memory of the
    /// epoch state currently serving (without forcing an epoch refresh).
    pub fn stats(&self) -> StatsSnapshot {
        let index_memory = {
            let state = self.inner.state.read().expect("epoch state poisoned");
            state.index_memory_bytes()
        };
        self.inner.stats.snapshot(
            self.inner.store.epoch(),
            self.inner.cache.evictions(),
            self.inner.cache.invalidations(),
            self.inner.cache.len(),
            self.inner.store.durability(),
            index_memory,
            ServingShape {
                workers: self.pool.threads(),
                kernel_threads: self.inner.config.exactsim.simrank.threads,
                shards: 1,
            },
            self.inner.store.pool_stats(),
        )
    }

    /// Number of keys currently being computed (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.inner.inflight.len()
    }

    /// The live counters, for in-crate front-ends (the `net` listener bumps
    /// its per-connection counters here so `stats` replies are uniform
    /// across the stdin and TCP paths).
    pub(crate) fn raw_stats(&self) -> &ServiceStats {
        &self.inner.stats
    }

    /// Renders every registered metric family in Prometheus text exposition
    /// format (the payload of the `metrics` protocol verb). The payload ends
    /// with a `# EOF` line so stream clients can frame the multi-line reply.
    pub fn metrics_text(&self) -> String {
        self.inner.metrics.render()
    }

    /// The slow-query ring buffer (the `slowlog` protocol verb reads it).
    pub fn slowlog(&self) -> &SlowLog {
        &self.inner.slowlog
    }

    /// The labeled metrics registry wrapper, for in-crate front-ends that
    /// record protocol-level stages (parse, serialize).
    pub(crate) fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::barabasi_albert;

    fn demo_service(n: usize, seed: u64) -> SimRankService {
        let graph = Arc::new(barabasi_albert(n, 3, true, seed).unwrap());
        SimRankService::new(graph, ServiceConfig::fast_demo()).unwrap()
    }

    #[test]
    fn rejects_empty_graphs_and_bad_configs_eagerly() {
        let empty = Arc::new(exactsim_graph::GraphBuilder::new(0).build());
        assert!(SimRankService::new(empty, ServiceConfig::fast_demo()).is_err());

        let graph = Arc::new(barabasi_albert(20, 2, true, 1).unwrap());
        let bad = ServiceConfig {
            exactsim: ExactSimConfig {
                epsilon: 0.0,
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(Arc::clone(&graph), bad).is_err());

        // PrSim/MC misconfigurations also fail at construction, not on the
        // first query of that algorithm (where the error would be cached
        // forever in the OnceLock).
        let bad_prsim = ServiceConfig {
            prsim: exactsim::prsim::PrSimConfig {
                epsilon: 0.0,
                ..Default::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(Arc::clone(&graph), bad_prsim).is_err());
        let bad_mc = ServiceConfig {
            mc: exactsim::mc::MonteCarloConfig {
                walks_per_node: 0,
                ..Default::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(Arc::clone(&graph), bad_mc).is_err());

        // Graph-dependent misconfiguration: an exact diagonal of the wrong
        // length (graph has 20 nodes) is rejected at construction too.
        let bad_diag = ServiceConfig {
            exactsim: ExactSimConfig {
                diagonal: exactsim::exactsim::DiagonalMode::Exact(vec![1.0; 5]),
                ..ExactSimConfig::default()
            },
            ..ServiceConfig::fast_demo()
        };
        assert!(SimRankService::new(graph, bad_diag).is_err());
    }

    #[test]
    fn query_errors_do_not_poison_the_key() {
        let service = demo_service(30, 3);
        let out_of_range = service.query(AlgorithmKind::ExactSim, 999);
        assert!(matches!(
            out_of_range,
            Err(ServiceError::Algorithm(
                SimRankError::SourceOutOfRange { .. }
            ))
        ));
        // The failed query is not cached and the key is retired: a valid
        // query afterwards works, as does retrying the bad one.
        assert!(service.query(AlgorithmKind::ExactSim, 0).is_ok());
        assert!(service.query(AlgorithmKind::ExactSim, 999).is_err());
        let snap = service.stats();
        assert_eq!(snap.errors, 2);
        assert_eq!(snap.cached_entries, 1);
    }

    #[test]
    fn index_is_built_once_per_algorithm() {
        let service = demo_service(40, 5);
        service.query(AlgorithmKind::MonteCarlo, 0).unwrap();
        service.query(AlgorithmKind::MonteCarlo, 1).unwrap();
        service.query(AlgorithmKind::PrSim, 0).unwrap();
        // Index-free ExactSim must not count as an index build.
        service.query(AlgorithmKind::ExactSim, 0).unwrap();
        let snap = service.stats();
        assert_eq!(snap.index_builds, 2);
        assert_eq!(snap.computations, 4);
        // Per-algorithm index memory surfaces once the index exists: MC and
        // PrSim hold real bytes, index-free ExactSim reports zero.
        assert_eq!(
            snap.index_memory_bytes[AlgorithmKind::ExactSim.index()],
            Some(0)
        );
        assert!(snap.index_memory_bytes[AlgorithmKind::PrSim.index()].unwrap() > 0);
        assert!(snap.index_memory_bytes[AlgorithmKind::MonteCarlo.index()].unwrap() > 0);
        assert!(snap.to_json().contains("\"memory_bytes\":{\"exactsim\":0,"));
    }

    #[test]
    fn index_memory_is_unreported_until_the_index_is_built() {
        let service = demo_service(25, 21);
        let snap = service.stats();
        assert_eq!(snap.index_memory_bytes, [None, None, None]);
        assert!(snap
            .to_json()
            .contains("\"memory_bytes\":{\"exactsim\":null,\"prsim\":null,\"mc\":null}"));
        service.query(AlgorithmKind::MonteCarlo, 0).unwrap();
        let snap = service.stats();
        assert_eq!(snap.index_memory_bytes[AlgorithmKind::PrSim.index()], None);
        assert!(snap.index_memory_bytes[AlgorithmKind::MonteCarlo.index()].unwrap() > 0);
    }

    #[test]
    fn commit_bumps_epoch_invalidates_cache_and_rebuilds_indices() {
        let service = demo_service(40, 9);
        let before = service.query(AlgorithmKind::ExactSim, 0).unwrap();
        service.query(AlgorithmKind::MonteCarlo, 0).unwrap();
        assert_eq!(service.stats().index_builds, 1, "MC index built once");
        assert_eq!(service.epoch(), 0);

        // Stage a structural change around node 0 and publish it.
        let target = (service.graph().num_nodes() - 1) as NodeId;
        assert!(service.store().stage_insert(0, target).unwrap().changed());
        let report = service.commit().unwrap();
        assert!(report.advanced());
        assert_eq!(report.epoch, 1);
        assert_eq!(service.epoch(), 1);

        // The next queries refresh the serving state: the cache generation
        // was swept, ExactSim recomputes on the new graph, and the MC index
        // is rebuilt for the new epoch.
        let after = service.query(AlgorithmKind::ExactSim, 0).unwrap();
        assert_ne!(before.scores, after.scores, "the graph around 0 changed");
        service.query(AlgorithmKind::MonteCarlo, 0).unwrap();
        let snap = service.stats();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.epoch_refreshes, 1);
        assert!(snap.invalidations >= 2, "pre-commit entries were swept");
        assert_eq!(snap.index_builds, 2, "MC index rebuilt for the new epoch");
        assert_eq!(snap.cache_hits, 0, "no stale entry may answer post-commit");

        // Within the new epoch, caching works as before.
        let again = service.query(AlgorithmKind::ExactSim, 0).unwrap();
        assert!(Arc::ptr_eq(&after, &again));
        assert_eq!(service.stats().cache_hits, 1);
    }

    #[test]
    fn empty_commit_keeps_epoch_cache_and_indices() {
        let service = demo_service(30, 13);
        let first = service.query(AlgorithmKind::ExactSim, 1).unwrap();
        let report = service.commit().unwrap();
        assert!(!report.advanced());
        assert_eq!(service.epoch(), 0);
        let second = service.query(AlgorithmKind::ExactSim, 1).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache survived the no-op commit"
        );
        let snap = service.stats();
        assert_eq!(snap.epoch_refreshes, 0);
        assert_eq!(snap.invalidations, 0);
    }

    #[test]
    fn services_sharing_a_store_see_each_others_commits() {
        let graph = Arc::new(barabasi_albert(40, 3, true, 17).unwrap());
        let store = Arc::new(GraphStore::new(graph));
        let a = SimRankService::with_store(Arc::clone(&store), ServiceConfig::fast_demo()).unwrap();
        let b = SimRankService::with_store(Arc::clone(&store), ServiceConfig::fast_demo()).unwrap();
        a.store().stage_insert(0, 39).unwrap();
        a.commit().unwrap();
        assert_eq!(b.epoch(), 1, "epoch is a property of the shared store");
        let via_a = a.query(AlgorithmKind::ExactSim, 0).unwrap();
        let via_b = b.query(AlgorithmKind::ExactSim, 0).unwrap();
        assert_eq!(via_a.scores, via_b.scores);
        assert!(a.graph().has_edge(0, 39));
    }

    /// A service over a paged store surfaces the buffer pool everywhere an
    /// operator looks: `stats().pool`, the stats JSON, and `simrank_pool_*`
    /// Prometheus series (which an in-memory service must not register).
    #[test]
    fn paged_service_reports_pool_stats_and_metrics() {
        let dir = std::env::temp_dir().join(format!(
            "exactsim-service-paged-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let graph = Arc::new(barabasi_albert(60, 3, true, 23).unwrap());
        let store = Arc::new(
            GraphStore::new(graph)
                .with_paging(
                    &dir,
                    exactsim_store::PagedOptions {
                        pool_pages: 4,
                        page_bytes: 64,
                    },
                )
                .unwrap(),
        );
        let service = SimRankService::with_store(store, ServiceConfig::fast_demo()).unwrap();
        service.query(AlgorithmKind::ExactSim, 0).unwrap();

        let snap = service.stats();
        let pool = snap.pool.expect("paged service must report pool stats");
        assert_eq!(pool.capacity, 4);
        assert!(pool.misses > 0, "a 4-frame pool cannot hold the graph");
        assert!(pool.evictions > 0, "{pool:?}");
        assert!(
            snap.to_json().contains("\"pool\":{\"pages\":4,"),
            "{snap:?}"
        );

        let metrics = service.metrics_text();
        assert!(
            metrics.contains("# TYPE simrank_pool_pages gauge"),
            "{metrics}"
        );
        assert!(
            metrics.contains("simrank_pool_fetches_total{result=\"miss\"}"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE simrank_pool_evictions_total counter"),
            "{metrics}"
        );

        // An in-memory service reports no pool and registers no pool series.
        let unpaged = demo_service(20, 5);
        assert!(unpaged.stats().pool.is_none());
        assert!(unpaged.stats().to_json().contains("\"pool\":null"));
        assert!(!unpaged.metrics_text().contains("simrank_pool_"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_answers_carry_indices_and_complete() {
        let service = demo_service(60, 7);
        let requests: Vec<BatchRequest> = (0..20)
            .map(|i| BatchRequest {
                algorithm: AlgorithmKind::ExactSim,
                source: (i % 5) as NodeId,
                top_k: if i % 2 == 0 { Some(3) } else { None },
            })
            .collect();
        let items = service.run_batch(requests.clone());
        assert_eq!(items.len(), 20);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i);
            assert_eq!(item.request, requests[i]);
            match item.outcome.as_ref().unwrap() {
                BatchAnswer::TopK(top) => assert!(top.entries.len() <= 3),
                BatchAnswer::Full(resp) => assert_eq!(resp.scores.len(), 60),
            }
        }
        // 5 distinct sources -> at most 5 computations, everything else served
        // from cache or joined in flight.
        let snap = service.stats();
        assert!(
            snap.computations <= 5,
            "computations = {}",
            snap.computations
        );
        assert_eq!(snap.queries, 20);
    }
}
