//! Serializable wire types for query answers.
//!
//! The algorithm library's [`exactsim::suite::QueryOutput`] is an in-process
//! value (scores + wall-clock time). The serving layer wraps it into
//! [`QueryResponse`] — tagged with the algorithm and source so it can be
//! cached, shared between threads, and serialized onto a wire. Serialization
//! is hand-rolled JSON (the offline build has no serde); the format is
//! deliberately flat and stable.

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use exactsim::suite::QueryOutput;
use exactsim::topk::{top_k, TopKEntry};
use exactsim_graph::NodeId;

use crate::error::ServiceError;

/// The algorithms the service can serve queries for.
///
/// ExactSim and its two strongest index-based competitors; the remaining
/// paper baselines (ParSim, Linearization, Power Method) stay library-only
/// because they are dominated on the serving workload (bias or `O(n²)`
/// memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// ExactSim (index-free, every query is an independent computation).
    ExactSim,
    /// PRSim-style inverted ℓ-hop PPR index.
    PrSim,
    /// Fogaras–Rácz Monte-Carlo walk index.
    MonteCarlo,
}

impl AlgorithmKind {
    /// All servable algorithms, in stable order (used to size per-algorithm
    /// tables).
    pub const ALL: [AlgorithmKind; 3] = [
        AlgorithmKind::ExactSim,
        AlgorithmKind::PrSim,
        AlgorithmKind::MonteCarlo,
    ];

    /// Stable dense index of this algorithm in [`AlgorithmKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            AlgorithmKind::ExactSim => 0,
            AlgorithmKind::PrSim => 1,
            AlgorithmKind::MonteCarlo => 2,
        }
    }

    /// The lowercase wire name (`exactsim`, `prsim`, `mc`).
    pub fn wire_name(self) -> &'static str {
        match self {
            AlgorithmKind::ExactSim => "exactsim",
            AlgorithmKind::PrSim => "prsim",
            AlgorithmKind::MonteCarlo => "mc",
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl FromStr for AlgorithmKind {
    type Err = ServiceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exactsim" | "exact" => Ok(AlgorithmKind::ExactSim),
            "prsim" => Ok(AlgorithmKind::PrSim),
            "mc" | "montecarlo" | "monte-carlo" => Ok(AlgorithmKind::MonteCarlo),
            other => Err(ServiceError::UnknownAlgorithm(other.to_string())),
        }
    }
}

/// One served single-source answer: the full similarity column of `source`.
///
/// Values of this type are immutable once produced and are shared between the
/// cache and all deduplicated requesters via `Arc<QueryResponse>`.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// Which algorithm produced the answer.
    pub algorithm: AlgorithmKind,
    /// The graph epoch the answer was computed at. Answers of one epoch are
    /// bit-identical to direct library calls on that epoch's graph, so a
    /// client racing a commit can tell exactly which graph it was answered
    /// about.
    pub epoch: u64,
    /// The query source node.
    pub source: NodeId,
    /// `scores[j] = S(source, j)` for every node `j`.
    pub scores: Vec<f64>,
    /// Wall-clock time of the underlying computation (not of this serve:
    /// cache hits return the original computation's time).
    pub query_time: Duration,
}

impl QueryResponse {
    /// Wraps a library [`QueryOutput`] with its request metadata.
    pub fn from_output(
        algorithm: AlgorithmKind,
        epoch: u64,
        source: NodeId,
        output: QueryOutput,
    ) -> Self {
        QueryResponse {
            algorithm,
            epoch,
            source,
            scores: output.scores,
            query_time: output.query_time,
        }
    }

    /// Extracts the `k` most similar nodes (excluding the source itself).
    pub fn top_k(&self, k: usize) -> TopKResponse {
        TopKResponse {
            algorithm: self.algorithm,
            epoch: self.epoch,
            source: self.source,
            k,
            entries: top_k(&self.scores, self.source, k),
            query_time: self.query_time,
        }
    }

    /// Serializes to one line of JSON. `max_scores` truncates the score array
    /// (the full column of a large graph is rarely what a client wants on a
    /// line protocol); `None` emits every score.
    pub fn to_json(&self, max_scores: Option<usize>) -> String {
        let limit = max_scores
            .unwrap_or(self.scores.len())
            .min(self.scores.len());
        let mut out = String::with_capacity(64 + 24 * limit);
        out.push_str("{\"algorithm\":\"");
        out.push_str(self.algorithm.wire_name());
        out.push_str("\",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"source\":");
        out.push_str(&self.source.to_string());
        out.push_str(",\"num_nodes\":");
        out.push_str(&self.scores.len().to_string());
        out.push_str(",\"query_time_us\":");
        out.push_str(&self.query_time.as_micros().to_string());
        out.push_str(",\"scores\":[");
        for (i, s) in self.scores[..limit].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format_f64(*s));
        }
        out.push_str("],\"scores_truncated\":");
        out.push_str(if limit < self.scores.len() {
            "true"
        } else {
            "false"
        });
        out.push('}');
        out
    }
}

/// One served top-k answer.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKResponse {
    /// Which algorithm produced the answer.
    pub algorithm: AlgorithmKind,
    /// The graph epoch the underlying single-source answer was computed at.
    pub epoch: u64,
    /// The query source node.
    pub source: NodeId,
    /// The requested `k` (the entry list may be shorter on tiny graphs).
    pub k: usize,
    /// The top-k nodes by similarity, source excluded, score-descending.
    pub entries: Vec<TopKEntry>,
    /// Wall-clock time of the underlying single-source computation.
    pub query_time: Duration,
}

impl TopKResponse {
    /// Serializes to one line of JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 32 * self.entries.len());
        out.push_str("{\"algorithm\":\"");
        out.push_str(self.algorithm.wire_name());
        out.push_str("\",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"source\":");
        out.push_str(&self.source.to_string());
        out.push_str(",\"k\":");
        out.push_str(&self.k.to_string());
        out.push_str(",\"query_time_us\":");
        out.push_str(&self.query_time.as_micros().to_string());
        out.push_str(",\"results\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"node\":");
            out.push_str(&e.node.to_string());
            out.push_str(",\"score\":");
            out.push_str(&format_f64(e.score));
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A shard's contribution to a scatter/gathered top-k: the top-k of the
/// candidate subset owned by `shard` in a `num_shards`-way partition
/// (`exactsim_graph::partition`). Produced by the `shardtopk` protocol verb;
/// a router merges `num_shards` of these into one answer bit-identical to
/// the unsharded [`TopKResponse`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardTopKResponse {
    /// The owned-candidate top-k (the `k`/`entries` of *this shard's*
    /// subset; `epoch` is the epoch the column was computed at).
    pub inner: TopKResponse,
    /// Which shard's candidate subset was ranked.
    pub shard: usize,
    /// The partition width ownership was computed against.
    pub num_shards: usize,
}

impl ShardTopKResponse {
    /// Serializes to one line of JSON: the [`TopKResponse`] shape plus
    /// `shard`/`num_shards`, so gather-side parsing shares one format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + 32 * self.inner.entries.len());
        out.push_str("{\"algorithm\":\"");
        out.push_str(self.inner.algorithm.wire_name());
        out.push_str("\",\"epoch\":");
        out.push_str(&self.inner.epoch.to_string());
        out.push_str(",\"source\":");
        out.push_str(&self.inner.source.to_string());
        out.push_str(",\"k\":");
        out.push_str(&self.inner.k.to_string());
        out.push_str(",\"shard\":");
        out.push_str(&self.shard.to_string());
        out.push_str(",\"num_shards\":");
        out.push_str(&self.num_shards.to_string());
        out.push_str(",\"query_time_us\":");
        out.push_str(&self.inner.query_time.as_micros().to_string());
        out.push_str(",\"results\":[");
        for (i, e) in self.inner.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"node\":");
            out.push_str(&e.node.to_string());
            out.push_str(",\"score\":");
            out.push_str(&format_f64(e.score));
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// JSON-safe float formatting: finite values use Rust's shortest round-trip
/// representation; non-finite values (which valid SimRank scores never
/// contain, but errors should not corrupt the wire) become `null`.
fn format_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = v.to_string();
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_round_trip() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(kind.wire_name().parse::<AlgorithmKind>().unwrap(), kind);
            assert_eq!(AlgorithmKind::ALL[kind.index()], kind);
        }
        assert!("nope".parse::<AlgorithmKind>().is_err());
        assert_eq!(
            "EXACT".parse::<AlgorithmKind>().unwrap(),
            AlgorithmKind::ExactSim
        );
    }

    #[test]
    fn query_response_json_shape_and_truncation() {
        let resp = QueryResponse {
            algorithm: AlgorithmKind::ExactSim,
            epoch: 4,
            source: 2,
            scores: vec![0.5, 1.0, 0.25, 0.125],
            query_time: Duration::from_micros(1234),
        };
        let full = resp.to_json(None);
        assert!(full.contains("\"algorithm\":\"exactsim\""));
        assert!(full.contains("\"epoch\":4"));
        assert!(full.contains("\"source\":2"));
        assert!(full.contains("\"query_time_us\":1234"));
        assert!(full.contains("0.5,1.0,0.25,0.125"));
        assert!(full.contains("\"scores_truncated\":false"));
        let truncated = resp.to_json(Some(2));
        assert!(truncated.contains("[0.5,1.0]"));
        assert!(truncated.contains("\"scores_truncated\":true"));
    }

    #[test]
    fn topk_json_lists_entries_in_order() {
        let resp = QueryResponse {
            algorithm: AlgorithmKind::PrSim,
            epoch: 1,
            source: 0,
            scores: vec![1.0, 0.1, 0.9, 0.5],
            query_time: Duration::from_micros(10),
        };
        let top = resp.top_k(2);
        assert_eq!(top.epoch, 1);
        assert_eq!(top.entries.len(), 2);
        assert_eq!(top.entries[0].node, 2);
        assert_eq!(top.entries[1].node, 3);
        let json = top.to_json();
        assert!(json.contains("{\"node\":2,\"score\":0.9}"));
        assert!(json.contains("\"epoch\":1"));
        assert!(json.contains("\"k\":2"));
    }

    #[test]
    fn shard_topk_json_carries_shard_and_partition_width() {
        let resp = QueryResponse {
            algorithm: AlgorithmKind::ExactSim,
            epoch: 2,
            source: 1,
            scores: vec![0.3, 1.0, 0.9, 0.5],
            query_time: Duration::from_micros(7),
        };
        let shard = ShardTopKResponse {
            inner: resp.top_k(2),
            shard: 3,
            num_shards: 4,
        };
        let json = shard.to_json();
        assert!(json.contains("\"shard\":3,\"num_shards\":4"), "{json}");
        assert!(json.contains("\"epoch\":2"), "{json}");
        assert!(json.contains("{\"node\":2,\"score\":0.9}"), "{json}");
    }

    #[test]
    fn non_finite_scores_serialize_as_null() {
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
        assert_eq!(format_f64(1.0), "1.0");
    }
}
