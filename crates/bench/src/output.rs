//! CSV output for the figure/table binaries.

use std::io::Write;

/// One measured configuration: a single point of one of the paper's figures.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Dataset key ("GQ", "DB", …).
    pub dataset: String,
    /// Algorithm name ("ExactSim", "MC", …).
    pub algorithm: String,
    /// Human-readable parameter description ("eps=1e-3", "r=800,L=15", …).
    pub parameter: String,
    /// Preprocessing / index-construction time in seconds (0 for index-free
    /// methods).
    pub preprocessing_seconds: f64,
    /// Index size in bytes (0 for index-free methods).
    pub index_bytes: usize,
    /// Average single-source query time in seconds.
    pub query_seconds: f64,
    /// Average MaxError against the ground truth.
    pub max_error: f64,
    /// Average Precision@500 against the ground truth.
    pub precision_at_500: f64,
}

impl SweepRow {
    /// The CSV header matching [`SweepRow::to_csv`].
    pub fn csv_header() -> &'static str {
        "dataset,algorithm,parameter,preprocessing_seconds,index_bytes,query_seconds,max_error,precision_at_500"
    }

    /// Serialises the row as one CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{:.6},{},{:.6},{:.3e},{:.4}",
            self.dataset,
            self.algorithm,
            self.parameter.replace(',', ";"),
            self.preprocessing_seconds,
            self.index_bytes,
            self.query_seconds,
            self.max_error,
            self.precision_at_500
        )
    }

    /// Serialises the row as one JSON object (hand-rolled: the offline build
    /// has no serde), for the machine-readable halves of `repro/out/`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"dataset\":\"{}\",\"algorithm\":\"{}\",\"parameter\":\"{}\",",
                "\"preprocessing_seconds\":{:.6},\"index_bytes\":{},",
                "\"query_seconds\":{:.6},\"max_error\":{:e},\"precision_at_500\":{:.4}}}"
            ),
            self.dataset,
            self.algorithm,
            self.parameter.replace('"', ""),
            self.preprocessing_seconds,
            self.index_bytes,
            self.query_seconds,
            self.max_error,
            self.precision_at_500
        )
    }
}

/// Writes `header` plus one line per row to `path`, creating parent
/// directories as needed. Used by `simrank-repro` for every CSV artifact.
pub fn write_csv_file(
    path: &std::path::Path,
    title: &str,
    header: &str,
    lines: &[String],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::with_capacity(lines.len() * 64 + header.len() + title.len() + 4);
    body.push_str(&format!("# {title}\n{header}\n"));
    for line in lines {
        body.push_str(line);
        body.push('\n');
    }
    std::fs::write(path, body)
}

/// Prints the header plus every row to stdout and a short summary to stderr.
pub fn print_rows(title: &str, rows: &[SweepRow]) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{}", SweepRow::csv_header());
    for row in rows {
        let _ = writeln!(out, "{}", row.to_csv());
    }
    let _ = out.flush();
    eprintln!("[{title}] {} rows", rows.len());
    for row in rows {
        eprintln!(
            "  {:>3} {:<14} {:<18} query {:>9.4}s  preproc {:>9.3}s  maxerr {:>9.3e}  p@500 {:>6.3}",
            row.dataset,
            row.algorithm,
            row.parameter,
            row.query_seconds,
            row.preprocessing_seconds,
            row.max_error,
            row.precision_at_500
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepRow {
        SweepRow {
            dataset: "GQ".into(),
            algorithm: "ExactSim".into(),
            parameter: "eps=1e-3".into(),
            preprocessing_seconds: 0.0,
            index_bytes: 0,
            query_seconds: 1.25,
            max_error: 3.2e-4,
            precision_at_500: 0.998,
        }
    }

    #[test]
    fn csv_row_has_as_many_fields_as_the_header() {
        let row = sample();
        let header_fields = SweepRow::csv_header().split(',').count();
        let row_fields = row.to_csv().split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn commas_in_parameters_are_escaped() {
        let mut row = sample();
        row.parameter = "r=50,L=10".into();
        assert!(!row.to_csv().contains("r=50,L"));
        assert!(row.to_csv().contains("r=50;L=10"));
    }

    #[test]
    fn csv_contains_the_values() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("GQ,ExactSim,"));
        assert!(csv.contains("3.200e-4"));
    }

    #[test]
    fn print_rows_does_not_panic() {
        print_rows("unit-test", &[sample()]);
        print_rows("empty", &[]);
    }

    #[test]
    fn json_row_carries_every_csv_field() {
        let json = sample().to_json();
        for field in SweepRow::csv_header().split(',') {
            assert!(json.contains(&format!("\"{field}\":")), "missing {field}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn write_csv_file_creates_parents_and_content() {
        let dir = std::env::temp_dir().join(format!("exactsim-output-test-{}", std::process::id()));
        let path = dir.join("nested/fig0.csv");
        write_csv_file(&path, "unit", SweepRow::csv_header(), &[sample().to_csv()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("# unit\n"));
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
