//! Table 2: dataset statistics — the paper's numbers next to the synthetic
//! stand-ins actually used by this harness.

use exactsim_bench::runner::generate_dataset;
use exactsim_bench::HarnessParams;
use exactsim_datasets::{all_datasets, DatasetKind};
use exactsim_graph::analysis::DegreeStats;

fn main() {
    let params = HarnessParams::from_env();
    println!("# Table 2: datasets (paper statistics vs generated stand-ins)");
    println!(
        "key,name,type,paper_nodes,paper_edges,standin_nodes,standin_edges,standin_avg_degree,standin_max_in_degree,standin_power_law_exponent,scale"
    );
    for spec in all_datasets() {
        let dataset = generate_dataset(spec, &params);
        let stats = DegreeStats::compute(&dataset.graph);
        let kind = match spec.kind {
            DatasetKind::Undirected => "undirected",
            DatasetKind::Directed => "directed",
        };
        println!(
            "{},{},{},{},{},{},{},{:.2},{},{},{}",
            spec.key,
            spec.name,
            kind,
            spec.paper_nodes,
            spec.paper_edges,
            stats.nodes,
            stats.edges,
            stats.average_degree,
            stats.max_in_degree,
            stats
                .in_degree_power_law_exponent
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            dataset.scale,
        );
        eprintln!(
            "  {:>3} {:<14} paper n={:>10} m={:>13} | stand-in n={:>8} m={:>10} avg_deg={:>6.2}",
            spec.key,
            spec.name,
            spec.paper_nodes,
            spec.paper_edges,
            stats.nodes,
            stats.edges,
            stats.average_degree
        );
    }
}
