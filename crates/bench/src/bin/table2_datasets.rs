//! Table 2 of the paper: dataset statistics — the paper's reported node/edge
//! counts next to the synthetic stand-ins actually used by this harness
//! (columns: paper n/m, stand-in n/m, average degree, max in-degree, fitted
//! power-law exponent, scale factor).
//!
//! Standalone twin of `simrank-repro --only table2`; the row computation is
//! shared via [`exactsim_bench::tables::table2_rows`].

use exactsim_bench::{table2_rows, HarnessParams, Table2Row};

fn main() {
    let params = HarnessParams::from_env();
    println!("# Table 2: datasets (paper statistics vs generated stand-ins)");
    println!("{}", Table2Row::csv_header());
    for row in table2_rows(&params) {
        println!("{}", row.to_csv());
        eprintln!(
            "  {:>3} {:<14} paper n={:>10} m={:>13} | stand-in n={:>8} m={:>10} avg_deg={:>6.2}",
            row.key,
            row.name,
            row.paper_nodes,
            row.paper_edges,
            row.standin_nodes,
            row.standin_edges,
            row.standin_avg_degree
        );
    }
}
