//! Ablation: the sparse-Linearization pruning threshold (Lemma 2).
//!
//! Sweeps the pruning threshold of the optimized ExactSim variant on the WV
//! stand-in and reports stored non-zeros, auxiliary memory and achieved error
//! — the space/accuracy trade-off that Table 3 summarises at a single point.

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::metrics::max_error;
use exactsim_bench::ground_truth::ground_truth_power_method;
use exactsim_bench::runner::generate_dataset;
use exactsim_bench::HarnessParams;
use exactsim_datasets::{dataset_by_key, query_sources};

fn main() {
    let params = HarnessParams::from_env();
    let spec = dataset_by_key("WV").expect("registry key");
    let dataset = generate_dataset(spec, &params);
    let sources = query_sources(&dataset.graph, params.queries.min(3), params.seed);
    let truth = ground_truth_power_method(&dataset.graph, &sources).expect("power method truth");

    println!("# Ablation: sparse-Linearization pruning threshold on the WV stand-in (eps = 1e-4)");
    println!("threshold,hop_nnz,aux_memory_bytes,max_error");
    for threshold in [0.0, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
        let config = ExactSimConfig {
            epsilon: 1e-4,
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(params.walk_budget),
            prune_threshold_override: Some(threshold),
            simrank: exactsim::SimRankConfig {
                seed: params.seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let solver = ExactSim::new(&dataset.graph, config).expect("valid config");
        let mut worst = 0.0f64;
        let mut nnz = 0usize;
        let mut memory = 0usize;
        for (source, exact) in &truth.per_source {
            let result = solver.query(*source).expect("query succeeds");
            worst = worst.max(max_error(&result.scores, exact));
            nnz = nnz.max(result.stats.hop_nnz);
            memory = memory.max(result.stats.aux_memory_bytes);
        }
        println!("{threshold:.1e},{nnz},{memory},{worst:.3e}");
        eprintln!(
            "  threshold {threshold:>8.1e}: nnz {nnz:>9}  aux {memory:>10} B  maxerr {worst:.3e}"
        );
    }
}
