//! Ablation: how the diagonal correction matrix `D` is obtained.
//!
//! Compares, on the GQ stand-in with Power-Method ground truth:
//! the exact `D`, Algorithm 2 (Bernoulli sampling), Algorithm 3 (local
//! deterministic exploitation) and the ParSim `(1−c)·I` shortcut — the choice
//! the whole paper revolves around.

use exactsim::exactsim::{DiagonalMode, ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::metrics::max_error;
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim_bench::runner::generate_dataset;
use exactsim_bench::HarnessParams;
use exactsim_datasets::{dataset_by_key, query_sources};

fn main() {
    let params = HarnessParams::from_env();
    let spec = dataset_by_key("GQ").expect("registry key");
    let dataset = generate_dataset(spec, &params);
    let sources = query_sources(&dataset.graph, params.queries.min(3), params.seed);

    eprintln!("[GQ] computing exact SimRank and exact D with the power method …");
    let pm = PowerMethod::compute(
        &dataset.graph,
        PowerMethodConfig {
            tolerance: 1e-9,
            max_matrix_bytes: 8 << 30,
            ..Default::default()
        },
    )
    .expect("power method on the small stand-in");
    let exact_d = pm.exact_diagonal(&dataset.graph);

    let cases: Vec<(&str, ExactSimVariant, DiagonalMode)> = vec![
        (
            "exact-D",
            ExactSimVariant::Optimized,
            DiagonalMode::Exact(exact_d.clone()),
        ),
        (
            "algorithm-2-bernoulli",
            ExactSimVariant::Basic,
            DiagonalMode::Estimated,
        ),
        (
            "algorithm-3-local",
            ExactSimVariant::Optimized,
            DiagonalMode::Estimated,
        ),
        (
            "parsim-approximation",
            ExactSimVariant::Optimized,
            DiagonalMode::ParSimApprox,
        ),
    ];

    println!("# Ablation: D estimators on the GQ stand-in (eps = 1e-4, budget-capped)");
    println!("estimator,simulated_walk_pairs,explore_edges,max_error");
    for (name, variant, diagonal) in cases {
        let config = ExactSimConfig {
            epsilon: 1e-4,
            variant,
            diagonal,
            walk_budget: Some(params.walk_budget),
            simrank: exactsim::SimRankConfig {
                seed: params.seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let solver = ExactSim::new(&dataset.graph, config).expect("valid config");
        let mut worst = 0.0f64;
        let mut walks = 0u64;
        let mut edges = 0u64;
        for &source in &sources {
            let result = solver.query(source).expect("query succeeds");
            worst = worst.max(max_error(&result.scores, &pm.single_source(source)));
            walks += result.stats.simulated_walk_pairs;
            edges += result.stats.explore_edges;
        }
        println!("{name},{walks},{edges},{worst:.3e}");
        eprintln!("  {name:<24} walks {walks:>12}  explore-edges {edges:>12}  maxerr {worst:.3e}");
    }
}
