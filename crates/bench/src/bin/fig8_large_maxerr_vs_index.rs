//! Figure 8: MaxError vs. index size for the index-based methods on the four
//! large dataset stand-ins.
//!
//! Plotted axes: x = index_bytes, y = max_error.
//! Standalone twin of `simrank-repro --only fig8` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Large, AlgorithmFamily::IndexBasedOnly);
    print_rows(
        "Figure 8: MaxError vs index size on large graphs (columns index_bytes / max_error)",
        &rows,
    );
}
