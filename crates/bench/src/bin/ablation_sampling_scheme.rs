//! Ablation: sample-allocation scheme (Lemma 3).
//!
//! Compares, at equal ε, the basic allocation `R(k) ∝ π_i(k)` against the
//! optimized allocation `R(k) ∝ π_i(k)²` — both in requested sample counts
//! and in achieved error — on the small dataset stand-ins.

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::metrics::max_error;
use exactsim_bench::ground_truth::ground_truth_power_method;
use exactsim_bench::runner::generate_dataset;
use exactsim_bench::HarnessParams;
use exactsim_datasets::{query_sources, small_datasets};

fn main() {
    let params = HarnessParams::from_env();
    println!("# Ablation: sampling ∝ π(k) (basic) vs ∝ π(k)² (optimized), eps = 1e-3");
    println!("dataset,variant,requested_pairs,simulated_pairs,pi_norm_sq,max_error");
    for spec in small_datasets() {
        let dataset = generate_dataset(spec, &params);
        let sources = query_sources(&dataset.graph, params.queries.min(3), params.seed);
        let truth =
            ground_truth_power_method(&dataset.graph, &sources).expect("power method truth");
        for (variant, name) in [
            (ExactSimVariant::Basic, "proportional-to-pi"),
            (ExactSimVariant::Optimized, "proportional-to-pi-squared"),
        ] {
            let config = ExactSimConfig {
                epsilon: 1e-3,
                variant,
                walk_budget: Some(params.walk_budget),
                simrank: exactsim::SimRankConfig {
                    seed: params.seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let solver = ExactSim::new(&dataset.graph, config).expect("valid config");
            let mut worst = 0.0f64;
            let mut requested = 0u64;
            let mut simulated = 0u64;
            let mut norm_sq = 0.0f64;
            for (source, exact) in &truth.per_source {
                let result = solver.query(*source).expect("query succeeds");
                worst = worst.max(max_error(&result.scores, exact));
                requested = requested.max(result.stats.requested_walk_pairs);
                simulated = simulated.max(result.stats.simulated_walk_pairs);
                norm_sq = result.stats.ppr_norm_sq;
            }
            println!(
                "{},{},{},{},{:.3e},{:.3e}",
                spec.key, name, requested, simulated, norm_sq, worst
            );
            eprintln!(
                "  {:>3} {:<28} requested {:>14}  simulated {:>10}  maxerr {:.3e}",
                spec.key, name, requested, simulated, worst
            );
        }
    }
}
