//! Figure 1: MaxError vs. query time for all five algorithms on the four
//! small datasets (GQ, HT, WV, HP), with Power-Method ground truth.

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Small, AlgorithmFamily::All);
    print_rows(
        "Figure 1: MaxError vs query time on small graphs (columns query_seconds / max_error)",
        &rows,
    );
}
