//! Figure 3: MaxError vs. preprocessing time for the index-based methods
//! (MC, PRSim, Linearization) on the four small datasets.
//!
//! Plotted axes: x = preprocessing_seconds, y = max_error.
//! Standalone twin of `simrank-repro --only fig3` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Small, AlgorithmFamily::IndexBasedOnly);
    print_rows(
        "Figure 3: MaxError vs preprocessing time on small graphs (columns preprocessing_seconds / max_error)",
        &rows,
    );
}
