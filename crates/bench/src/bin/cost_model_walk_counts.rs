//! §2.2 cost model: the `n·log n/ε²` sample count of prior methods next to
//! ExactSim's `log n/ε²` (and the Lemma 3 `‖π‖²·log n/ε²`), evaluated
//! analytically for the paper's dataset sizes and measured on the stand-ins.
//!
//! This regenerates the paper's back-of-the-envelope argument that e.g. the
//! IT dataset would need ~10²³ walks with prior methods at ε = 1e-7.

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim_bench::runner::generate_dataset;
use exactsim_bench::HarnessParams;
use exactsim_datasets::{all_datasets, query_sources};

fn main() {
    let params = HarnessParams::from_env();
    let c: f64 = 0.6;
    let sqrt_c = c.sqrt();
    let eps = 1e-7f64;

    println!("# Cost model: walk pairs needed for exactness (eps = 1e-7, c = 0.6)");
    println!("dataset,paper_n,prior_methods_n_logn_over_eps2,exactsim_logn_over_eps2,measured_requested_pairs,measured_pi_norm_sq");
    for spec in all_datasets() {
        let n = spec.paper_nodes as f64;
        let prior = n * n.ln() / (eps * eps);
        let exactsim_bound = 6.0 * n.ln() / ((1.0 - sqrt_c).powi(4) * eps * eps);

        // Measured on the stand-in: what the optimized variant actually
        // requests once the Lemma 3 ‖π‖² scaling kicks in.
        let dataset = generate_dataset(spec, &params);
        let source = query_sources(&dataset.graph, 1, params.seed)[0];
        let config = ExactSimConfig {
            epsilon: 1e-3, // a measurable setting; the ratio is what matters
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(200_000),
            simrank: exactsim::SimRankConfig {
                seed: params.seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let result = ExactSim::new(&dataset.graph, config)
            .expect("valid config")
            .query(source)
            .expect("query succeeds");

        println!(
            "{},{},{:.3e},{:.3e},{},{:.3e}",
            spec.key,
            spec.paper_nodes,
            prior,
            exactsim_bound,
            result.stats.requested_walk_pairs,
            result.stats.ppr_norm_sq
        );
        eprintln!(
            "  {:>3}: prior methods need {:.2e} pairs, ExactSim bound {:.2e}; stand-in ‖π‖² = {:.2e}",
            spec.key, prior, exactsim_bound, result.stats.ppr_norm_sq
        );
    }
}
