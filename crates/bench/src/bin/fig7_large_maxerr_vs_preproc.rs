//! Figure 7: MaxError vs. preprocessing time for the index-based methods on
//! the four large dataset stand-ins.
//!
//! Plotted axes: x = preprocessing_seconds, y = max_error.
//! Standalone twin of `simrank-repro --only fig7` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Large, AlgorithmFamily::IndexBasedOnly);
    print_rows(
        "Figure 7: MaxError vs preprocessing time on large graphs (columns preprocessing_seconds / max_error)",
        &rows,
    );
}
