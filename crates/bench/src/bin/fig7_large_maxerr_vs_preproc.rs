//! Figure 7: MaxError vs. preprocessing time for the index-based methods on
//! the four large dataset stand-ins.

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Large, AlgorithmFamily::IndexBasedOnly);
    print_rows(
        "Figure 7: MaxError vs preprocessing time on large graphs (columns preprocessing_seconds / max_error)",
        &rows,
    );
}
