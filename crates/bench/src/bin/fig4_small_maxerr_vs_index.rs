//! Figure 4: MaxError vs. index size for the index-based methods
//! (MC, PRSim, Linearization) on the four small datasets.
//!
//! Plotted axes: x = index_bytes, y = max_error.
//! Standalone twin of `simrank-repro --only fig4` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Small, AlgorithmFamily::IndexBasedOnly);
    print_rows(
        "Figure 4: MaxError vs index size on small graphs (columns index_bytes / max_error)",
        &rows,
    );
}
