//! Table 3 of the paper: auxiliary memory (GB) of basic vs. optimized
//! ExactSim next to the graph's own size, on the four large dataset
//! stand-ins (columns: basic GB, optimized GB, graph GB, reduction factor).
//!
//! Standalone twin of `simrank-repro --only table3`; the row computation is
//! shared via [`exactsim_bench::tables::table3_rows`].

use exactsim_bench::{table3_rows, HarnessParams, Table3Row};

fn main() {
    let params = HarnessParams::from_env();
    println!("# Table 3: memory overhead (GB) of ExactSim variants vs graph size");
    println!("{}", Table3Row::csv_header());
    for row in table3_rows(&params) {
        println!("{}", row.to_csv());
        eprintln!(
            "  {:>3}: basic {:>12} B, optimized {:>12} B, graph {:>12} B (x{:.1} reduction)",
            row.key,
            row.basic_bytes,
            row.optimized_bytes,
            row.graph_bytes,
            row.reduction_factor()
        );
    }
}
