//! Table 3: auxiliary memory of basic vs. optimized ExactSim next to the
//! graph size, on the four large dataset stand-ins.

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim_bench::runner::generate_dataset;
use exactsim_bench::HarnessParams;
use exactsim_datasets::{large_datasets, query_sources};

fn main() {
    let params = HarnessParams::from_env();
    println!("# Table 3: memory overhead (GB) of ExactSim variants vs graph size");
    println!("dataset,basic_exactsim_gb,optimized_exactsim_gb,graph_size_gb,reduction_factor");
    for spec in large_datasets() {
        eprintln!("[dataset {}] generating stand-in …", spec.key);
        let dataset = generate_dataset(spec, &params);
        let source = query_sources(&dataset.graph, 1, params.seed)[0];
        let epsilon = 1e-5;
        let mut per_variant = Vec::new();
        for variant in [ExactSimVariant::Basic, ExactSimVariant::Optimized] {
            let config = ExactSimConfig {
                epsilon,
                variant,
                walk_budget: Some(params.walk_budget.min(1_000_000)),
                simrank: exactsim::SimRankConfig {
                    seed: params.seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let result = ExactSim::new(&dataset.graph, config)
                .expect("config is valid")
                .query(source)
                .expect("query succeeds");
            per_variant.push(result.stats.aux_memory_bytes);
        }
        let to_gb = |b: usize| b as f64 / (1u64 << 30) as f64;
        let basic = per_variant[0];
        let optimized = per_variant[1];
        let graph_bytes = dataset.graph.memory_bytes();
        println!(
            "{},{:.6},{:.6},{:.6},{:.1}",
            spec.key,
            to_gb(basic),
            to_gb(optimized),
            to_gb(graph_bytes),
            basic as f64 / optimized.max(1) as f64
        );
        eprintln!(
            "  {:>3}: basic {:>12} B, optimized {:>12} B, graph {:>12} B (x{:.1} reduction)",
            spec.key,
            basic,
            optimized,
            graph_bytes,
            basic as f64 / optimized.max(1) as f64
        );
    }
}
