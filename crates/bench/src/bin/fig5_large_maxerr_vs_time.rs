//! Figure 5: MaxError vs. query time for all five algorithms on the four
//! large dataset stand-ins (DB, IC, IT, TW), with ExactSim(1e-7) as the
//! reference — exactly the convention of the paper's §4.2.
//!
//! Plotted axes: x = query_seconds, y = max_error (log–log in the paper).
//! Standalone twin of `simrank-repro --only fig5` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Large, AlgorithmFamily::All);
    print_rows(
        "Figure 5: MaxError vs query time on large graphs (columns query_seconds / max_error)",
        &rows,
    );
}
