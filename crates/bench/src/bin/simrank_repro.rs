//! `simrank-repro` — the one-command reproducibility runner: regenerates the
//! paper's figures and tables (fig1–fig9, table2, table3) from a clean
//! checkout into `repro/out/` (per-target CSV + JSON, a Markdown summary
//! table, and a machine-readable manifest).
//!
//! ```text
//! simrank-repro --quick                     # CI-sized run, every target
//! simrank-repro --full                      # paper-sized sweeps (hours)
//! simrank-repro --quick --only fig1,table2  # a subset
//! simrank-repro --list                      # what the registry knows
//! ```
//!
//! `--quick` and `--full` are presets over the same environment knobs the
//! standalone `figN_*` binaries read (`EXACTSIM_SCALE_SMALL`, …); with
//! neither flag the environment-derived parameters are used, so an
//! `EXACTSIM_*`-configured invocation behaves exactly like running the
//! standalone binaries one by one. Relative `--out-dir` paths are anchored
//! at the workspace root regardless of the invoking cwd. See REPRODUCING.md
//! at the repository root for the full walkthrough.

use std::process::ExitCode;

use exactsim_bench::repro::{run, TARGETS};
use exactsim_bench::HarnessParams;

const HELP: &str = "simrank-repro: regenerate the paper's figures/tables in one command\n\
  --quick          CI-sized preset (small stand-ins, 1 query source)\n\
  --full           paper-sized preset (full scales, 50 sources; hours)\n\
  --only K1,K2     run a subset of targets (e.g. fig1,table2)\n\
  --out-dir DIR    output directory (default repro/out, repo-root-relative)\n\
  --list           print the target registry and exit\n\
without --quick/--full: parameters come from EXACTSIM_* env vars";

fn resolve_path(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() {
        return p;
    }
    // `cargo run -p exactsim-bench` keeps the invoker's cwd, but the
    // documented interface (CI, REPRODUCING.md) is repo-root-relative.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .join(p)
}

fn main() -> ExitCode {
    let mut mode: Option<&'static str> = None;
    let mut only: Option<Vec<String>> = None;
    let mut out_dir = String::from("repro/out");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--full" => {
                let this = if arg == "--quick" { "quick" } else { "full" };
                if let Some(prev) = mode {
                    if prev != this {
                        eprintln!("simrank-repro: --quick and --full are mutually exclusive");
                        return ExitCode::FAILURE;
                    }
                }
                mode = Some(this);
            }
            "--only" => match args.next() {
                Some(list) => only = Some(list.split(',').map(|s| s.trim().to_string()).collect()),
                None => {
                    eprintln!("simrank-repro: --only needs a comma-separated target list");
                    return ExitCode::FAILURE;
                }
            },
            "--out-dir" => match args.next() {
                Some(dir) => out_dir = dir,
                None => {
                    eprintln!("simrank-repro: --out-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for t in TARGETS {
                    println!("{:<8} {} ({})", t.key, t.title, t.axes);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simrank-repro: unknown flag `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let (params, mode) = match mode {
        Some("quick") => (HarnessParams::quick_repro(), "quick"),
        Some("full") => (HarnessParams::full_repro(), "full"),
        _ => (HarnessParams::from_env(), "env"),
    };
    let out_dir = resolve_path(&out_dir);
    eprintln!(
        "simrank-repro: mode {mode}, output {} ({} targets)",
        out_dir.display(),
        only.as_ref().map_or(TARGETS.len(), |o| o.len()),
    );
    match run(&params, only.as_deref(), &out_dir, mode) {
        Ok(report) => {
            eprintln!(
                "simrank-repro: wrote {} target(s) in {:.1}s — see {}",
                report.targets.len(),
                report.total_seconds,
                report.out_dir.join("SUMMARY.md").display(),
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("simrank-repro: {msg}");
            ExitCode::FAILURE
        }
    }
}
