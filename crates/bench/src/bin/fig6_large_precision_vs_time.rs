//! Figure 6: Precision@500 vs. query time for all five algorithms on the four
//! large dataset stand-ins (DB, IC, IT, TW).
//!
//! Plotted axes: x = query_seconds, y = precision_at_500.
//! Standalone twin of `simrank-repro --only fig6` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Large, AlgorithmFamily::All);
    print_rows(
        "Figure 6: Precision@500 vs query time on large graphs (columns query_seconds / precision_at_500)",
        &rows,
    );
}
