//! Figure 2: Precision@500 vs. query time for all five algorithms on the four
//! small datasets (GQ, HT, WV, HP), with Power-Method ground truth.
//!
//! Plotted axes: x = query_seconds, y = precision_at_500.
//! Standalone twin of `simrank-repro --only fig2` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::{print_rows, run_figure, AlgorithmFamily, DatasetGroup};

fn main() {
    let rows = run_figure(DatasetGroup::Small, AlgorithmFamily::All);
    print_rows(
        "Figure 2: Precision@500 vs query time on small graphs (columns query_seconds / precision_at_500)",
        &rows,
    );
}
