//! Figure 9: time/error trade-off of basic vs. optimized ExactSim on the HP
//! and DB stand-ins (the paper's ablation of the §3.2 optimisations).
//!
//! Plotted axes: x = query_seconds, y = max_error, one series per ExactSim variant.
//! Standalone twin of `simrank-repro --only fig9` (every column of the
//! shared sweep-row schema is emitted; the figure plots the axes above).

use exactsim_bench::runner::{generate_dataset, group_ground_truth, DatasetGroup};
use exactsim_bench::{print_rows, run_quality_sweep, AlgorithmFamily, HarnessParams};
use exactsim_datasets::{dataset_by_key, query_sources};

fn main() {
    let params = HarnessParams::from_env();
    let mut rows = Vec::new();
    for (key, group) in [("HP", DatasetGroup::Small), ("DB", DatasetGroup::Large)] {
        let spec = dataset_by_key(key).expect("registry key");
        eprintln!("[dataset {key}] generating stand-in …");
        let dataset = generate_dataset(spec, &params);
        let sources = query_sources(&dataset.graph, params.queries, params.seed);
        eprintln!("[dataset {key}] computing ground truth …");
        let truth = group_ground_truth(group, &dataset, &sources, &params);
        rows.extend(run_quality_sweep(
            key,
            &dataset.graph,
            &truth,
            &params,
            AlgorithmFamily::ExactSimVariantsOnly,
        ));
    }
    print_rows(
        "Figure 9: Basic vs Optimized ExactSim (columns query_seconds / max_error)",
        &rows,
    );
}
