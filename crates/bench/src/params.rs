//! Harness parameters (environment-variable driven).

/// Sweep sizes: "quick" for the default CI-friendly runs, "full" for runs
/// closer to the paper's parameter ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepSizes {
    /// Small sweeps that finish in minutes on a laptop.
    Quick,
    /// Paper-sized sweeps (hours).
    Full,
}

/// All knobs shared by the figure/table binaries.
#[derive(Clone, Debug)]
pub struct HarnessParams {
    /// Scale factor for the small datasets.
    pub scale_small: f64,
    /// Scale factor for the large datasets (`None` = dataset default).
    pub scale_large: Option<f64>,
    /// Number of query sources averaged per dataset.
    pub queries: usize,
    /// Per-query walk-pair budget applied to the sampled methods.
    pub walk_budget: u64,
    /// Quick or full sweeps.
    pub sizes: SweepSizes,
    /// Seed for source selection and all randomized components.
    pub seed: u64,
}

impl Default for HarnessParams {
    fn default() -> Self {
        HarnessParams {
            scale_small: 0.2,
            scale_large: None,
            queries: 3,
            walk_budget: 5_000_000,
            sizes: SweepSizes::Quick,
            seed: 2020,
        }
    }
}

impl HarnessParams {
    /// The CI-sized preset used by `simrank-repro --quick`: stand-ins scaled
    /// far enough down that every figure's ground truth is computable in
    /// seconds, one query source per dataset, and a small walk budget. The
    /// point of the quick run is to prove the *pipeline* end to end (every
    /// sweep executes, every artifact is written), not to reproduce the
    /// paper's absolute numbers.
    pub fn quick_repro() -> Self {
        HarnessParams {
            scale_small: 0.06,
            scale_large: Some(0.002),
            queries: 1,
            walk_budget: 300_000,
            sizes: SweepSizes::Quick,
            seed: 2020,
        }
    }

    /// The paper-faithful preset used by `simrank-repro --full`: small
    /// stand-ins at the paper's node counts, large stand-ins at their
    /// registry default scales, the paper's 50 query sources, and the full
    /// parameter sweeps. Expect hours, as the paper's own evaluation did.
    pub fn full_repro() -> Self {
        HarnessParams {
            scale_small: 1.0,
            scale_large: None,
            queries: 50,
            walk_budget: 20_000_000,
            sizes: SweepSizes::Full,
            seed: 2020,
        }
    }

    /// Reads the parameters from the environment (see the crate docs).
    pub fn from_env() -> Self {
        let mut p = HarnessParams::default();
        if let Some(v) = env_f64("EXACTSIM_SCALE_SMALL") {
            p.scale_small = v;
        }
        if std::env::var("EXACTSIM_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            p.scale_small = 1.0;
        }
        if let Some(v) = env_f64("EXACTSIM_SCALE_LARGE") {
            p.scale_large = Some(v);
        }
        if let Some(v) = env_u64("EXACTSIM_QUERIES") {
            p.queries = v as usize;
        }
        if let Some(v) = env_u64("EXACTSIM_WALK_BUDGET") {
            p.walk_budget = v;
        }
        if std::env::var("EXACTSIM_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            p.sizes = SweepSizes::Full;
            p.queries = p.queries.max(50);
        }
        if let Some(v) = env_u64("EXACTSIM_SEED") {
            p.seed = v;
        }
        p
    }

    /// ε sweep for ExactSim (the paper varies 1e-1 … 1e-7).
    pub fn exactsim_epsilons(&self) -> Vec<f64> {
        match self.sizes {
            SweepSizes::Quick => vec![1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7],
            SweepSizes::Full => vec![1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7],
        }
    }

    /// ε sweep for Linearization / PRSim (the paper stops where the method
    /// exceeds its time/memory limit; the quick sweep stops earlier).
    pub fn index_method_epsilons(&self) -> Vec<f64> {
        match self.sizes {
            SweepSizes::Quick => vec![1e-1, 3e-2, 1e-2, 3e-3],
            SweepSizes::Full => vec![1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4],
        }
    }

    /// (walk count, walk length) sweep for MC.
    pub fn mc_walk_counts(&self) -> Vec<(usize, usize)> {
        match self.sizes {
            SweepSizes::Quick => vec![(50, 10), (200, 10), (800, 15), (3200, 15)],
            SweepSizes::Full => vec![
                (50, 10),
                (200, 10),
                (800, 15),
                (3200, 15),
                (12_800, 20),
                (50_000, 20),
            ],
        }
    }

    /// Iteration sweep for ParSim.
    pub fn parsim_iterations(&self) -> Vec<usize> {
        match self.sizes {
            SweepSizes::Quick => vec![5, 10, 20, 50, 100],
            SweepSizes::Full => vec![10, 50, 100, 500, 1000, 5000],
        }
    }
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick_and_sane() {
        let p = HarnessParams::default();
        assert_eq!(p.sizes, SweepSizes::Quick);
        assert!(p.scale_small > 0.0 && p.scale_small <= 1.0);
        assert!(p.queries >= 1);
        assert!(!p.exactsim_epsilons().is_empty());
        assert!(!p.mc_walk_counts().is_empty());
        assert!(!p.parsim_iterations().is_empty());
        assert!(!p.index_method_epsilons().is_empty());
    }

    #[test]
    fn full_sweeps_are_supersets() {
        let quick = HarnessParams::default();
        let full = HarnessParams {
            sizes: SweepSizes::Full,
            ..Default::default()
        };
        assert!(full.mc_walk_counts().len() >= quick.mc_walk_counts().len());
        assert!(full.parsim_iterations().len() >= quick.parsim_iterations().len());
        assert!(full.index_method_epsilons().len() >= quick.index_method_epsilons().len());
    }

    #[test]
    fn repro_presets_bracket_the_default() {
        let quick = HarnessParams::quick_repro();
        let full = HarnessParams::full_repro();
        assert!(quick.scale_small < HarnessParams::default().scale_small);
        assert!(quick.queries <= full.queries);
        assert_eq!(quick.sizes, SweepSizes::Quick);
        assert_eq!(full.sizes, SweepSizes::Full);
        assert_eq!(full.scale_small, 1.0);
        // Both presets pin the same seed so runs are comparable.
        assert_eq!(quick.seed, full.seed);
    }

    #[test]
    fn epsilon_sweeps_reach_the_exactness_level() {
        let p = HarnessParams::default();
        let min = p
            .exactsim_epsilons()
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        assert!(min <= 1e-7);
    }
}
