//! The parameter-sweep machinery shared by the figure binaries.

use std::time::Instant;

use exactsim::exactsim::{ExactSimConfig, ExactSimVariant};
use exactsim::linearization::LinearizationConfig;
use exactsim::mc::MonteCarloConfig;
use exactsim::metrics::{max_error, precision_at_k};
use exactsim::parsim::ParSimConfig;
use exactsim::prsim::PrSimConfig;
use exactsim::suite::{
    ExactSimAlgorithm, LinearizationAlgorithm, MonteCarloAlgorithm, ParSimAlgorithm,
    PrSimAlgorithm, SingleSourceAlgorithm,
};
use exactsim::SimRankConfig;
use exactsim_graph::DiGraph;

use crate::ground_truth::GroundTruth;
use crate::output::SweepRow;
use crate::params::HarnessParams;

/// Which algorithm families a sweep should include.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmFamily {
    /// All five single-source algorithms (Figures 1, 2, 5, 6).
    All,
    /// Only the index-based methods MC / PRSim / Linearization
    /// (Figures 3, 4, 7, 8).
    IndexBasedOnly,
    /// Only the two ExactSim variants (Figure 9).
    ExactSimVariantsOnly,
}

/// The Precision@k cutoff used throughout the paper's evaluation.
pub const PRECISION_K: usize = 500;

/// Runs the configured parameter sweeps of every requested algorithm on one
/// dataset and measures each configuration against the ground truth.
pub fn run_quality_sweep(
    dataset_key: &str,
    graph: &DiGraph,
    truth: &GroundTruth,
    params: &HarnessParams,
    family: AlgorithmFamily,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    let simrank = SimRankConfig {
        seed: params.seed,
        ..Default::default()
    };

    let include_all = family == AlgorithmFamily::All;
    let include_index = include_all || family == AlgorithmFamily::IndexBasedOnly;
    let include_exactsim_variants = family == AlgorithmFamily::ExactSimVariantsOnly;

    // Per-node exploration caps for the harness: bound the cost of deep
    // Algorithm 3 exploration on the larger stand-ins.
    let explore_caps = exactsim::diagonal::LocalExploreCaps {
        max_edges: 50_000,
        max_tail_samples: 20_000,
        ..Default::default()
    };

    // --- ExactSim (optimized): the ε sweep of Figures 1/2/5/6.
    if include_all || include_exactsim_variants {
        for &eps in &params.exactsim_epsilons() {
            let config = ExactSimConfig {
                epsilon: eps,
                variant: ExactSimVariant::Optimized,
                walk_budget: Some(params.walk_budget),
                explore_caps,
                simrank,
                ..Default::default()
            };
            let label = if include_exactsim_variants {
                "ExactSim-Opt"
            } else {
                "ExactSim"
            };
            if let Ok(algo) = ExactSimAlgorithm::new(graph, config) {
                rows.push(measure(
                    dataset_key,
                    label,
                    &format!("eps={eps:.0e}"),
                    &algo,
                    truth,
                ));
            }
        }
    }

    // --- ExactSim (basic): only for the ablation figure.
    if include_exactsim_variants {
        for &eps in &params.exactsim_epsilons() {
            let config = ExactSimConfig {
                epsilon: eps,
                variant: ExactSimVariant::Basic,
                walk_budget: Some(params.walk_budget),
                explore_caps,
                simrank,
                ..Default::default()
            };
            if let Ok(algo) = ExactSimAlgorithm::new(graph, config) {
                rows.push(measure(
                    dataset_key,
                    "ExactSim-Basic",
                    &format!("eps={eps:.0e}"),
                    &algo,
                    truth,
                ));
            }
        }
    }

    // --- ParSim: iteration sweep (index-free, deterministic, biased).
    if include_all {
        for &iterations in &params.parsim_iterations() {
            let config = ParSimConfig {
                iterations,
                simrank,
            };
            if let Ok(algo) = ParSimAlgorithm::new(graph, config) {
                rows.push(measure(
                    dataset_key,
                    "ParSim",
                    &format!("L={iterations}"),
                    &algo,
                    truth,
                ));
            }
        }
    }

    // --- MC: walks-per-node sweep.
    if include_all || include_index {
        for &(walks, length) in &params.mc_walk_counts() {
            // Guard the index size: r walks × n nodes × mean length.
            let estimated_steps = walks.saturating_mul(graph.num_nodes()).saturating_mul(5);
            if estimated_steps > 2_000_000_000 {
                continue; // the paper likewise omits configurations over its limits
            }
            let config = MonteCarloConfig {
                walks_per_node: walks,
                walk_length: length,
                simrank,
            };
            if let Ok(algo) = MonteCarloAlgorithm::build(graph, config) {
                rows.push(measure(
                    dataset_key,
                    "MC",
                    &format!("r={walks},L={length}"),
                    &algo,
                    truth,
                ));
            }
        }
    }

    // --- Linearization: ε sweep, preprocessing capped by the walk budget.
    if include_all || include_index {
        for &eps in &params.index_method_epsilons() {
            let config = LinearizationConfig {
                epsilon: eps,
                walk_budget: Some(params.walk_budget),
                simrank,
            };
            if let Ok(algo) = LinearizationAlgorithm::build(graph, config) {
                rows.push(measure(
                    dataset_key,
                    "Linearization",
                    &format!("eps={eps:.0e}"),
                    &algo,
                    truth,
                ));
            }
        }
    }

    // --- PRSim: ε sweep with an index-entry cap derived from the budget.
    if include_all || include_index {
        for &eps in &params.index_method_epsilons() {
            let config = PrSimConfig {
                epsilon: eps,
                walk_budget: Some(params.walk_budget),
                max_index_entries: Some(20_000_000),
                simrank,
            };
            if let Ok(algo) = PrSimAlgorithm::build(graph, config) {
                rows.push(measure(
                    dataset_key,
                    "PRSim",
                    &format!("eps={eps:.0e}"),
                    &algo,
                    truth,
                ));
            }
        }
    }

    rows
}

/// Measures one algorithm configuration against every ground-truth source and
/// averages query time, MaxError and Precision@500.
pub fn measure(
    dataset_key: &str,
    algorithm: &str,
    parameter: &str,
    algo: &dyn SingleSourceAlgorithm,
    truth: &GroundTruth,
) -> SweepRow {
    let mut total_query = 0.0f64;
    let mut total_err = 0.0f64;
    let mut total_precision = 0.0f64;
    let mut measured = 0usize;
    for (source, exact) in &truth.per_source {
        let start = Instant::now();
        match algo.query(*source) {
            Ok(output) => {
                let elapsed = start.elapsed().as_secs_f64();
                total_query += elapsed;
                total_err += max_error(&output.scores, exact);
                total_precision += precision_at_k(&output.scores, exact, *source, PRECISION_K);
                measured += 1;
            }
            Err(err) => {
                eprintln!("  [warn] {algorithm} ({parameter}) failed on source {source}: {err}");
            }
        }
    }
    let denom = measured.max(1) as f64;
    SweepRow {
        dataset: dataset_key.to_string(),
        algorithm: algorithm.to_string(),
        parameter: parameter.to_string(),
        preprocessing_seconds: algo.preprocessing_time().as_secs_f64(),
        index_bytes: algo.index_bytes(),
        query_seconds: total_query / denom,
        max_error: total_err / denom,
        precision_at_500: total_precision / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::ground_truth_power_method;
    use exactsim_graph::generators::barabasi_albert;

    fn tiny_params() -> HarnessParams {
        HarnessParams {
            queries: 2,
            walk_budget: 50_000,
            ..Default::default()
        }
    }

    #[test]
    fn full_sweep_produces_rows_for_every_family() {
        let g = barabasi_albert(60, 2, true, 3).unwrap();
        let sources = vec![0u32, 10];
        let truth = ground_truth_power_method(&g, &sources).unwrap();
        let mut params = tiny_params();
        // Keep the ExactSim sweep short for the unit test.
        params.walk_budget = 20_000;
        let rows = run_quality_sweep("GQ", &g, &truth, &params, AlgorithmFamily::All);
        let algorithms: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.algorithm.as_str()).collect();
        for expected in ["ExactSim", "ParSim", "MC", "Linearization", "PRSim"] {
            assert!(algorithms.contains(expected), "missing {expected}");
        }
        for row in &rows {
            assert!(row.max_error.is_finite());
            assert!(row.max_error < 1.0);
            assert!((0.0..=1.0).contains(&row.precision_at_500));
            assert!(row.query_seconds >= 0.0);
        }
    }

    #[test]
    fn index_only_family_excludes_index_free_methods() {
        let g = barabasi_albert(50, 2, true, 5).unwrap();
        let truth = ground_truth_power_method(&g, &[1]).unwrap();
        let rows = run_quality_sweep(
            "HT",
            &g,
            &truth,
            &tiny_params(),
            AlgorithmFamily::IndexBasedOnly,
        );
        assert!(rows
            .iter()
            .all(|r| ["MC", "Linearization", "PRSim"].contains(&r.algorithm.as_str())));
        assert!(rows.iter().any(|r| r.index_bytes > 0));
        assert!(rows.iter().any(|r| r.preprocessing_seconds >= 0.0));
    }

    #[test]
    fn exactsim_variant_family_contains_both_variants() {
        let g = barabasi_albert(50, 2, true, 7).unwrap();
        let truth = ground_truth_power_method(&g, &[2]).unwrap();
        let rows = run_quality_sweep(
            "HP",
            &g,
            &truth,
            &tiny_params(),
            AlgorithmFamily::ExactSimVariantsOnly,
        );
        let names: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.algorithm.as_str()).collect();
        assert!(names.contains("ExactSim-Opt"));
        assert!(names.contains("ExactSim-Basic"));
    }
}
