//! Shared per-figure runners: dataset groups + ground truth + sweep.

use exactsim_datasets::{large_datasets, query_sources, small_datasets, GeneratedDataset};

use crate::ground_truth::{ground_truth_exactsim, ground_truth_power_method, GroundTruth};
use crate::output::SweepRow;
use crate::params::HarnessParams;
use crate::sweep::{run_quality_sweep, AlgorithmFamily};

/// Which of the paper's two dataset groups a figure uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetGroup {
    /// GQ / HT / WV / HP with Power-Method ground truth (Figures 1–4).
    Small,
    /// DB / IC / IT / TW (scaled stand-ins) with ExactSim-1e-7 ground truth
    /// (Figures 5–8).
    Large,
}

/// Generates one dataset of the group at the harness scale.
pub fn generate_dataset(
    spec: &'static exactsim_datasets::DatasetSpec,
    params: &HarnessParams,
) -> GeneratedDataset {
    let scale = if spec.large {
        params.scale_large.unwrap_or(spec.default_scale)
    } else {
        params.scale_small
    };
    spec.generate_scaled(scale)
        .expect("dataset stand-in generation cannot fail for registry specs")
}

/// Computes the group-appropriate ground truth for the chosen sources.
pub fn group_ground_truth(
    group: DatasetGroup,
    dataset: &GeneratedDataset,
    sources: &[u32],
    params: &HarnessParams,
) -> GroundTruth {
    match group {
        DatasetGroup::Small => ground_truth_power_method(&dataset.graph, sources)
            .expect("power-method ground truth failed on a small stand-in"),
        DatasetGroup::Large => ground_truth_exactsim(
            &dataset.graph,
            sources,
            params.walk_budget.max(1_000_000),
            params.seed,
        )
        .expect("ExactSim ground truth failed on a large stand-in"),
    }
}

/// Runs one figure with environment-derived parameters: the behaviour of the
/// standalone `figN_*` binaries. See [`run_figure_with`] for the
/// explicitly-parameterised variant the `simrank-repro` runner uses.
pub fn run_figure(group: DatasetGroup, family: AlgorithmFamily) -> Vec<SweepRow> {
    run_figure_with(group, family, &HarnessParams::from_env())
}

/// Runs one figure: for every dataset in the group, generate the stand-in,
/// compute the ground truth and run the requested sweep.
pub fn run_figure_with(
    group: DatasetGroup,
    family: AlgorithmFamily,
    params: &HarnessParams,
) -> Vec<SweepRow> {
    let specs = match group {
        DatasetGroup::Small => small_datasets(),
        DatasetGroup::Large => large_datasets(),
    };
    let mut rows = Vec::new();
    for spec in specs {
        eprintln!("[dataset {}] generating stand-in …", spec.key);
        let dataset = generate_dataset(spec, params);
        eprintln!(
            "[dataset {}] n = {}, m = {} ({} of paper scale)",
            spec.key,
            dataset.graph.num_nodes(),
            dataset.graph.num_edges(),
            dataset.scale
        );
        let sources = query_sources(&dataset.graph, params.queries, params.seed);
        eprintln!(
            "[dataset {}] computing ground truth for {} sources …",
            spec.key,
            sources.len()
        );
        let truth = group_ground_truth(group, &dataset, &sources, params);
        eprintln!("[dataset {}] ground truth: {}", spec.key, truth.method);
        rows.extend(run_quality_sweep(
            spec.key,
            &dataset.graph,
            &truth,
            params,
            family,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_datasets::dataset_by_key;

    #[test]
    fn generate_dataset_respects_group_scales() {
        let params = HarnessParams {
            scale_small: 0.05,
            scale_large: Some(0.001),
            ..Default::default()
        };
        let gq = generate_dataset(dataset_by_key("GQ").unwrap(), &params);
        assert_eq!(gq.graph.num_nodes(), (5242.0f64 * 0.05).round() as usize);
        let db = generate_dataset(dataset_by_key("DB").unwrap(), &params);
        assert!(db.graph.num_nodes() < 10_000);
    }

    #[test]
    fn small_group_ground_truth_uses_power_method() {
        let params = HarnessParams {
            scale_small: 0.02,
            ..Default::default()
        };
        let gq = generate_dataset(dataset_by_key("GQ").unwrap(), &params);
        let sources = query_sources(&gq.graph, 2, 1);
        let truth = group_ground_truth(DatasetGroup::Small, &gq, &sources, &params);
        assert!(truth.method.contains("PowerMethod"));
        assert_eq!(truth.num_sources(), 2);
    }

    #[test]
    fn large_group_ground_truth_uses_exactsim() {
        let params = HarnessParams {
            scale_large: Some(0.0005),
            walk_budget: 200_000,
            ..Default::default()
        };
        let db = generate_dataset(dataset_by_key("DB").unwrap(), &params);
        let sources = query_sources(&db.graph, 1, 1);
        let truth = group_ground_truth(DatasetGroup::Large, &db, &sources, &params);
        assert!(truth.method.contains("ExactSim"));
        assert_eq!(truth.num_sources(), 1);
    }
}
