//! # exactsim-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ExactSim paper's evaluation (§4) on the synthetic stand-in datasets.
//!
//! Two entry points share the machinery in this library:
//!
//! * **`simrank-repro`** (the [`repro`] module) — the one-command
//!   reproducibility pipeline: `simrank-repro --quick|--full [--only
//!   fig5,table3]` regenerates the selected figures/tables into `repro/out/`
//!   (CSV + JSON per target, `SUMMARY.md`, `MANIFEST.json`), computing each
//!   underlying sweep once and projecting every dependent figure from it.
//!   This is what CI's `repro-smoke` job runs; REPRODUCING.md at the
//!   repository root is the operator walkthrough.
//! * **Standalone binaries** — each figure/table also has a dedicated binary
//!   in `src/bin/` (thin wrappers over the same sweeps) printing CSV rows to
//!   stdout (one row per measured configuration — the same series the paper
//!   plots) and a human-readable summary to stderr.
//!
//! ## Environment variables
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `EXACTSIM_SCALE_SMALL` | `0.3` | scale factor applied to the small datasets (GQ/HT/WV/HP) so the `O(n²)` Power-Method ground truth stays feasible |
//! | `EXACTSIM_SCALE_LARGE` | dataset default | scale factor for the large datasets (DB/IC/IT/TW) |
//! | `EXACTSIM_QUERIES` | `5` | number of single-source queries averaged per dataset (the paper uses 50) |
//! | `EXACTSIM_WALK_BUDGET` | `20000000` | per-query walk-pair budget for the sampled methods |
//! | `EXACTSIM_FULL` | unset | set to `1` to use the paper-sized sweeps (slower) |

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod ground_truth;
pub mod output;
pub mod params;
pub mod repro;
pub mod runner;
pub mod sweep;
pub mod tables;

pub use ground_truth::{ground_truth_exactsim, ground_truth_power_method, GroundTruth};
pub use output::{print_rows, SweepRow};
pub use params::{HarnessParams, SweepSizes};
pub use runner::{run_figure, run_figure_with, DatasetGroup};
pub use sweep::{run_quality_sweep, AlgorithmFamily};
pub use tables::{table2_rows, table3_rows, Table2Row, Table3Row};
