//! Ground-truth single-source vectors for the harness.
//!
//! Exactly as in the paper: on the small datasets the ground truth is the
//! Power Method (`O(n²)`, hence the scale-down of the small stand-ins); on
//! the large datasets no exact method exists, so ExactSim at `ε = 1e-7` is
//! treated as the reference (§4.2 of the paper) — with the harness's walk
//! budget and exploration caps recorded alongside in EXPERIMENTS.md.

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::SimRankError;
use exactsim_graph::{DiGraph, NodeId};

/// Ground-truth single-source vectors for a fixed set of query sources.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// `(source, exact single-source vector)` pairs.
    pub per_source: Vec<(NodeId, Vec<f64>)>,
    /// Human-readable description of how the truth was obtained.
    pub method: String,
}

impl GroundTruth {
    /// The number of query sources covered.
    pub fn num_sources(&self) -> usize {
        self.per_source.len()
    }
}

/// Power-Method ground truth (small graphs).
pub fn ground_truth_power_method(
    graph: &DiGraph,
    sources: &[NodeId],
) -> Result<GroundTruth, SimRankError> {
    let pm = PowerMethod::compute(
        graph,
        PowerMethodConfig {
            tolerance: 1e-9,
            max_matrix_bytes: 8 << 30,
            ..Default::default()
        },
    )?;
    Ok(GroundTruth {
        per_source: sources.iter().map(|&s| (s, pm.single_source(s))).collect(),
        method: "PowerMethod(tol=1e-9)".to_string(),
    })
}

/// ExactSim-at-1e-7 ground truth (large graphs), with a walk budget so the
/// run completes on a laptop.
pub fn ground_truth_exactsim(
    graph: &DiGraph,
    sources: &[NodeId],
    walk_budget: u64,
    seed: u64,
) -> Result<GroundTruth, SimRankError> {
    let config = ExactSimConfig {
        epsilon: 1e-7,
        variant: ExactSimVariant::Optimized,
        walk_budget: Some(walk_budget),
        simrank: exactsim::SimRankConfig {
            seed,
            ..Default::default()
        },
        ..Default::default()
    };
    let solver = ExactSim::new(graph, config)?;
    let mut per_source = Vec::with_capacity(sources.len());
    for &s in sources {
        per_source.push((s, solver.query(s)?.scores));
    }
    Ok(GroundTruth {
        per_source,
        method: format!("ExactSim(eps=1e-7, walk_budget={walk_budget})"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim::metrics::max_error;
    use exactsim_graph::generators::barabasi_albert;

    #[test]
    fn both_ground_truths_agree_on_a_small_graph() {
        let g = barabasi_albert(80, 2, true, 41).unwrap();
        let sources = vec![0u32, 5, 17];
        let pm = ground_truth_power_method(&g, &sources).unwrap();
        let es = ground_truth_exactsim(&g, &sources, 500_000, 7).unwrap();
        assert_eq!(pm.num_sources(), 3);
        assert_eq!(es.num_sources(), 3);
        for ((s1, v1), (s2, v2)) in pm.per_source.iter().zip(es.per_source.iter()) {
            assert_eq!(s1, s2);
            let err = max_error(v2, v1);
            assert!(
                err < 1e-3,
                "source {s1}: reference methods disagree by {err}"
            );
        }
        assert!(pm.method.contains("PowerMethod"));
        assert!(es.method.contains("1e-7"));
    }

    #[test]
    fn power_method_truth_rejects_oversized_graphs_gracefully() {
        // 8 GiB limit means ~32k nodes is fine but 100k is not; use a tiny
        // limit indirectly by checking the error type is surfaced.
        let g = barabasi_albert(50, 2, true, 1).unwrap();
        assert!(ground_truth_power_method(&g, &[0]).is_ok());
    }
}
