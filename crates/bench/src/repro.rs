//! The one-command reproducibility pipeline behind `simrank-repro`.
//!
//! Modeled on the SIGMOD-reproducibility "master script" convention (one
//! command regenerates every figure from a clean checkout): a registry of
//! [`TARGETS`] maps each of the paper's figure/table artifacts to the sweep
//! that produces it, and [`run`] executes a selected subset, writing, per
//! target, a CSV (`repro/out/fig1.csv`), a JSON twin (`fig1.json`), plus a
//! run-wide `SUMMARY.md` Markdown report and a `MANIFEST.json` index.
//!
//! ## Sweep sharing
//!
//! Several paper figures are different *projections of the same sweep*:
//! Figures 1 and 2 both come from the all-algorithms sweep on the small
//! datasets (MaxError vs. time and Precision@500 vs. time respectively),
//! and Figures 3/4 restrict that same sweep to the index-based methods.
//! The runner therefore computes each `(dataset group, algorithm family)`
//! sweep **once** per invocation and derives every dependent figure from the
//! cached rows. Deriving Figures 3/4/7/8 by filtering the all-algorithms
//! sweep yields the same rows as running the `IndexBasedOnly` family
//! directly (each configuration is measured independently, with per-`(seed,
//! source)` deterministic randomness) while halving the pipeline's runtime —
//! only wall-clock timings differ between the two routes, never values.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::output::{write_csv_file, SweepRow};
use crate::params::HarnessParams;
use crate::runner::{generate_dataset, group_ground_truth, run_figure_with, DatasetGroup};
use crate::sweep::{run_quality_sweep, AlgorithmFamily};
use crate::tables::{table2_rows, table3_rows};

/// How a target's rows are produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// A quality sweep over one dataset group, optionally restricted to the
    /// index-based methods (the restriction is applied as a filter over the
    /// cached all-algorithms sweep — see the module docs).
    Sweep {
        /// Small (fig 1–4) or large (fig 5–8) dataset group.
        group: DatasetGroup,
        /// `true` for Figures 3/4/7/8: keep only MC / Linearization / PRSim.
        index_methods_only: bool,
    },
    /// Figure 9: basic vs. optimized ExactSim on the HP and DB stand-ins.
    ExactSimAblation,
    /// Table 2: dataset statistics (paper numbers vs. generated stand-ins).
    Table2,
    /// Table 3: auxiliary memory of the two ExactSim variants.
    Table3,
}

/// One reproducible artifact of the paper's evaluation.
#[derive(Clone, Copy, Debug)]
pub struct TargetSpec {
    /// Registry key and output-file stem: `fig1` … `fig9`, `table2`, `table3`.
    pub key: &'static str,
    /// The paper artifact this target reproduces.
    pub title: &'static str,
    /// The plotted axes (or table columns) of the artifact.
    pub axes: &'static str,
    /// How the rows are produced.
    pub kind: TargetKind,
}

/// Every figure/table the pipeline can regenerate, in paper order.
pub const TARGETS: &[TargetSpec] = &[
    TargetSpec {
        key: "fig1",
        title: "Figure 1: MaxError vs query time, small datasets, all algorithms",
        axes: "x=query_seconds, y=max_error",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Small,
            index_methods_only: false,
        },
    },
    TargetSpec {
        key: "fig2",
        title: "Figure 2: Precision@500 vs query time, small datasets, all algorithms",
        axes: "x=query_seconds, y=precision_at_500",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Small,
            index_methods_only: false,
        },
    },
    TargetSpec {
        key: "fig3",
        title: "Figure 3: MaxError vs preprocessing time, small datasets, index methods",
        axes: "x=preprocessing_seconds, y=max_error",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Small,
            index_methods_only: true,
        },
    },
    TargetSpec {
        key: "fig4",
        title: "Figure 4: MaxError vs index size, small datasets, index methods",
        axes: "x=index_bytes, y=max_error",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Small,
            index_methods_only: true,
        },
    },
    TargetSpec {
        key: "fig5",
        title: "Figure 5: MaxError vs query time, large datasets, all algorithms",
        axes: "x=query_seconds, y=max_error",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Large,
            index_methods_only: false,
        },
    },
    TargetSpec {
        key: "fig6",
        title: "Figure 6: Precision@500 vs query time, large datasets, all algorithms",
        axes: "x=query_seconds, y=precision_at_500",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Large,
            index_methods_only: false,
        },
    },
    TargetSpec {
        key: "fig7",
        title: "Figure 7: MaxError vs preprocessing time, large datasets, index methods",
        axes: "x=preprocessing_seconds, y=max_error",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Large,
            index_methods_only: true,
        },
    },
    TargetSpec {
        key: "fig8",
        title: "Figure 8: MaxError vs index size, large datasets, index methods",
        axes: "x=index_bytes, y=max_error",
        kind: TargetKind::Sweep {
            group: DatasetGroup::Large,
            index_methods_only: true,
        },
    },
    TargetSpec {
        key: "fig9",
        title: "Figure 9: basic vs optimized ExactSim ablation (HP and DB)",
        axes: "x=query_seconds, y=max_error, series=variant",
        kind: TargetKind::ExactSimAblation,
    },
    TargetSpec {
        key: "table2",
        title: "Table 2: dataset statistics (paper vs generated stand-ins)",
        axes: "columns=nodes, edges, avg degree, power-law exponent",
        kind: TargetKind::Table2,
    },
    TargetSpec {
        key: "table3",
        title: "Table 3: auxiliary memory of ExactSim variants vs graph size",
        axes: "columns=basic GB, optimized GB, graph GB, reduction factor",
        kind: TargetKind::Table3,
    },
];

/// Looks a target up by key (`"fig5"`, `"table2"`, …).
pub fn target_by_key(key: &str) -> Option<&'static TargetSpec> {
    TARGETS.iter().find(|t| t.key == key)
}

/// One finished target of a [`run`]: what was produced and how long it took.
#[derive(Clone, Debug)]
pub struct TargetReport {
    /// The registry key (`fig1`, `table2`, …).
    pub key: &'static str,
    /// The paper artifact title.
    pub title: &'static str,
    /// Data rows written (excluding headers).
    pub rows: usize,
    /// Files written for this target, relative to the output directory.
    pub files: Vec<String>,
    /// Wall-clock seconds spent producing the rows (0 when served from the
    /// shared sweep cache).
    pub seconds: f64,
}

/// The result of one pipeline run.
#[derive(Clone, Debug)]
pub struct ReproReport {
    /// Per-target outcomes, in execution order.
    pub targets: Vec<TargetReport>,
    /// Absolute output directory.
    pub out_dir: PathBuf,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

/// Sweep cache key: one entry per (group, family) actually computed.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum SweepKey {
    Group(DatasetGroup, AlgorithmFamilyKey),
    Ablation,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum AlgorithmFamilyKey {
    All,
}

const INDEX_METHODS: [&str; 3] = ["MC", "Linearization", "PRSim"];

/// Runs the selected targets with the given parameters, writing all
/// artifacts under `out_dir`. `only = None` runs everything in [`TARGETS`].
/// `mode` is recorded verbatim in the summary/manifest (`"quick"`, `"full"`,
/// `"env"`).
pub fn run(
    params: &HarnessParams,
    only: Option<&[String]>,
    out_dir: &Path,
    mode: &str,
) -> Result<ReproReport, String> {
    let selected: Vec<&'static TargetSpec> = match only {
        None => TARGETS.iter().collect(),
        Some(keys) => {
            let mut specs = Vec::new();
            for key in keys {
                let key = key.trim();
                if key.is_empty() {
                    continue;
                }
                specs.push(target_by_key(key).ok_or_else(|| {
                    let known: Vec<&str> = TARGETS.iter().map(|t| t.key).collect();
                    format!("unknown target `{key}` (known: {})", known.join(", "))
                })?);
            }
            if specs.is_empty() {
                return Err("--only selected no targets".to_string());
            }
            specs
        }
    };
    std::fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;

    let started = Instant::now();
    let mut cache: HashMap<SweepKey, Vec<SweepRow>> = HashMap::new();
    let mut reports = Vec::new();
    for spec in &selected {
        eprintln!("[repro] {} — {}", spec.key, spec.title);
        let target_start = Instant::now();
        let report = match spec.kind {
            TargetKind::Sweep {
                group,
                index_methods_only,
            } => {
                let key = SweepKey::Group(group, AlgorithmFamilyKey::All);
                let all = cache
                    .entry(key)
                    .or_insert_with(|| run_figure_with(group, AlgorithmFamily::All, params));
                let rows: Vec<SweepRow> = if index_methods_only {
                    all.iter()
                        .filter(|r| INDEX_METHODS.contains(&r.algorithm.as_str()))
                        .cloned()
                        .collect()
                } else {
                    all.clone()
                };
                write_sweep_target(out_dir, spec, &rows)?
            }
            TargetKind::ExactSimAblation => {
                let key = SweepKey::Ablation;
                let rows = cache.entry(key).or_insert_with(|| ablation_rows(params));
                write_sweep_target(out_dir, spec, rows)?
            }
            TargetKind::Table2 => {
                let rows = table2_rows(params);
                write_rows_target(
                    out_dir,
                    spec,
                    crate::tables::Table2Row::csv_header(),
                    &rows.iter().map(|r| r.to_csv()).collect::<Vec<_>>(),
                    &rows.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
                )?
            }
            TargetKind::Table3 => {
                let rows = table3_rows(params);
                write_rows_target(
                    out_dir,
                    spec,
                    crate::tables::Table3Row::csv_header(),
                    &rows.iter().map(|r| r.to_csv()).collect::<Vec<_>>(),
                    &rows.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
                )?
            }
        };
        reports.push(TargetReport {
            seconds: target_start.elapsed().as_secs_f64(),
            ..report
        });
    }

    let report = ReproReport {
        targets: reports,
        out_dir: out_dir.to_path_buf(),
        total_seconds: started.elapsed().as_secs_f64(),
    };
    write_summary(&report, params, mode)?;
    write_manifest(&report, params, mode)?;
    Ok(report)
}

/// Figure 9's rows: both ExactSim variants on one small (HP) and one large
/// (DB) stand-in — the standalone `fig9_ablation_basic_vs_optimized` binary
/// shares this sweep shape.
fn ablation_rows(params: &HarnessParams) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for (key, group) in [("HP", DatasetGroup::Small), ("DB", DatasetGroup::Large)] {
        let spec = exactsim_datasets::dataset_by_key(key).expect("registry key");
        eprintln!("[dataset {key}] generating stand-in …");
        let dataset = generate_dataset(spec, params);
        let sources = exactsim_datasets::query_sources(&dataset.graph, params.queries, params.seed);
        eprintln!("[dataset {key}] computing ground truth …");
        let truth = group_ground_truth(group, &dataset, &sources, params);
        rows.extend(run_quality_sweep(
            key,
            &dataset.graph,
            &truth,
            params,
            AlgorithmFamily::ExactSimVariantsOnly,
        ));
    }
    rows
}

fn write_sweep_target(
    out_dir: &Path,
    spec: &'static TargetSpec,
    rows: &[SweepRow],
) -> Result<TargetReport, String> {
    write_rows_target(
        out_dir,
        spec,
        SweepRow::csv_header(),
        &rows.iter().map(|r| r.to_csv()).collect::<Vec<_>>(),
        &rows.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
    )
}

fn write_rows_target(
    out_dir: &Path,
    spec: &'static TargetSpec,
    header: &str,
    csv_lines: &[String],
    json_objects: &[String],
) -> Result<TargetReport, String> {
    let csv_name = format!("{}.csv", spec.key);
    let json_name = format!("{}.json", spec.key);
    write_csv_file(&out_dir.join(&csv_name), spec.title, header, csv_lines)
        .map_err(|e| format!("write {csv_name}: {e}"))?;
    let json = format!(
        "{{\"target\":\"{}\",\"title\":\"{}\",\"axes\":\"{}\",\"rows\":[{}]}}\n",
        spec.key,
        spec.title,
        spec.axes,
        json_objects.join(",")
    );
    std::fs::write(out_dir.join(&json_name), json)
        .map_err(|e| format!("write {json_name}: {e}"))?;
    Ok(TargetReport {
        key: spec.key,
        title: spec.title,
        rows: csv_lines.len(),
        files: vec![csv_name, json_name],
        seconds: 0.0,
    })
}

fn write_summary(report: &ReproReport, params: &HarnessParams, mode: &str) -> Result<(), String> {
    let mut md = String::new();
    md.push_str("# simrank-repro run summary\n\n");
    md.push_str(&format!(
        "- mode: `{mode}` (scale_small={}, scale_large={}, queries={}, walk_budget={}, seed={})\n",
        params.scale_small,
        params
            .scale_large
            .map(|s| s.to_string())
            .unwrap_or_else(|| "registry default".to_string()),
        params.queries,
        params.walk_budget,
        params.seed,
    ));
    md.push_str(&format!(
        "- total wall clock: {:.1}s over {} target(s)\n\n",
        report.total_seconds,
        report.targets.len()
    ));
    md.push_str("| target | paper artifact | rows | seconds | files |\n");
    md.push_str("|---|---|---:|---:|---|\n");
    for t in &report.targets {
        md.push_str(&format!(
            "| `{}` | {} | {} | {:.1} | {} |\n",
            t.key,
            t.title,
            t.rows,
            t.seconds,
            t.files
                .iter()
                .map(|f| format!("`{f}`"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    md.push_str(
        "\nAll figures are emitted as `dataset,algorithm,parameter,…` sweep rows; \
         the plotted projection of each figure is recorded in its JSON twin's \
         `axes` field. See REPRODUCING.md at the repository root for how each \
         target maps to the paper.\n",
    );
    std::fs::write(report.out_dir.join("SUMMARY.md"), md)
        .map_err(|e| format!("write SUMMARY.md: {e}"))
}

fn write_manifest(report: &ReproReport, params: &HarnessParams, mode: &str) -> Result<(), String> {
    let targets: Vec<String> = report
        .targets
        .iter()
        .map(|t| {
            format!(
                "{{\"key\":\"{}\",\"rows\":{},\"seconds\":{:.3},\"files\":[{}]}}",
                t.key,
                t.rows,
                t.seconds,
                t.files
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"pipeline\":\"simrank-repro\",\"schema_version\":1,\"mode\":\"{}\",",
            "\"params\":{{\"scale_small\":{},\"scale_large\":{},\"queries\":{},",
            "\"walk_budget\":{},\"seed\":{}}},",
            "\"total_seconds\":{:.3},\"targets\":[{}]}}\n"
        ),
        mode,
        params.scale_small,
        params
            .scale_large
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string()),
        params.queries,
        params.walk_budget,
        params.seed,
        report.total_seconds,
        targets.join(",")
    );
    std::fs::write(report.out_dir.join("MANIFEST.json"), json)
        .map_err(|e| format!("write MANIFEST.json: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_figure_and_table() {
        for key in [
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2",
            "table3",
        ] {
            assert!(target_by_key(key).is_some(), "missing {key}");
        }
        assert_eq!(TARGETS.len(), 11);
        assert!(target_by_key("fig10").is_none());
    }

    #[test]
    fn unknown_only_key_is_a_typed_error() {
        let params = HarnessParams::quick_repro();
        let dir = std::env::temp_dir().join(format!("exactsim-repro-err-{}", std::process::id()));
        let err = run(
            &params,
            Some(&["fig1".to_string(), "nope".to_string()]),
            &dir,
            "quick",
        )
        .unwrap_err();
        assert!(err.contains("unknown target `nope`"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quick_pipeline_writes_table2_artifacts() {
        // table2 is the cheapest full target: generation + degree stats only.
        let mut params = HarnessParams::quick_repro();
        params.scale_small = 0.02;
        params.scale_large = Some(0.0005);
        let dir = std::env::temp_dir().join(format!("exactsim-repro-test-{}", std::process::id()));
        let report = run(&params, Some(&["table2".to_string()]), &dir, "quick").unwrap();
        assert_eq!(report.targets.len(), 1);
        assert_eq!(report.targets[0].rows, 8);
        let csv = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
        assert!(csv.lines().count() >= 9, "{csv}");
        let json = std::fs::read_to_string(dir.join("table2.json")).unwrap();
        assert!(json.contains("\"target\":\"table2\""));
        let summary = std::fs::read_to_string(dir.join("SUMMARY.md")).unwrap();
        assert!(summary.contains("| `table2` |"));
        let manifest = std::fs::read_to_string(dir.join("MANIFEST.json")).unwrap();
        assert!(manifest.contains("\"pipeline\":\"simrank-repro\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
