//! Criterion micro-benchmarks for the primitives every SimRank algorithm in
//! this workspace is built from: the transition-matrix kernels, the ℓ-hop
//! PPR computation, √c-walk sampling, the diagonal estimators and one
//! end-to-end ExactSim query on a small stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use exactsim::diagonal::{estimate_bernoulli, estimate_local_deterministic, LocalExploreCaps};
use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::ppr::{dense_hop_vectors, sparse_hop_vectors};
use exactsim::walks;
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::linalg::{p_multiply, pt_multiply, unit_vector, SparseVec, Workspace};
use exactsim_graph::DiGraph;

const SQRT_C: f64 = 0.774_596_669_241_483_4;

fn bench_graph(n: usize) -> DiGraph {
    barabasi_albert(n, 4, true, 7).expect("generator parameters are valid")
}

fn bench_transition_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_kernels");
    for &n in &[1_000usize, 10_000] {
        let graph = bench_graph(n);
        let x = unit_vector(n, 0);
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("p_multiply_dense", n), &n, |b, _| {
            b.iter(|| p_multiply(&graph, black_box(&x), &mut y));
        });
        group.bench_with_input(BenchmarkId::new("pt_multiply_dense", n), &n, |b, _| {
            b.iter(|| pt_multiply(&graph, black_box(&x), &mut y));
        });
        let mut ws = Workspace::new(n);
        let sparse = SparseVec::unit(0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("p_multiply_sparse_onehot", n),
            &n,
            |b, _| {
                b.iter(|| {
                    black_box(exactsim_graph::linalg::p_multiply_sparse(
                        &graph,
                        black_box(&sparse),
                        &mut ws,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_hop_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("hop_vectors");
    let graph = bench_graph(10_000);
    group.bench_function("dense_hop_vectors_L15", |b| {
        b.iter(|| black_box(dense_hop_vectors(&graph, 3, SQRT_C, 15)));
    });
    let mut ws = Workspace::new(graph.num_nodes());
    group.bench_function("sparse_hop_vectors_L15_pruned_1e-5", |b| {
        b.iter(|| black_box(sparse_hop_vectors(&graph, 3, SQRT_C, 15, 1e-5, &mut ws)));
    });
    group.finish();
}

fn bench_walk_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_sampling");
    let graph = bench_graph(10_000);
    group.bench_function("sample_1000_meeting_pairs", |b| {
        let mut rng = walks::make_rng(1);
        b.iter(|| {
            let mut met = 0usize;
            for _ in 0..1000 {
                if matches!(
                    walks::sample_meeting_pair(&graph, 5, SQRT_C, 40, &mut rng),
                    walks::PairOutcome::Met { .. }
                ) {
                    met += 1;
                }
            }
            black_box(met)
        });
    });
    group.finish();
}

fn bench_diagonal_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_estimators");
    let graph = bench_graph(5_000);
    group.bench_function("algorithm2_bernoulli_5000_pairs", |b| {
        let mut rng = walks::make_rng(2);
        b.iter(|| black_box(estimate_bernoulli(&graph, 3, 5_000, SQRT_C, 60, &mut rng)));
    });
    group.bench_function("algorithm3_local_deterministic", |b| {
        let mut ws = exactsim::scratch::DiagonalScratch::new(graph.num_nodes());
        let mut rng = walks::make_rng(3);
        b.iter(|| {
            black_box(estimate_local_deterministic(
                &graph,
                3,
                100_000,
                SQRT_C,
                1e-4,
                LocalExploreCaps {
                    max_edges: 20_000,
                    ..Default::default()
                },
                &mut ws,
                &mut rng,
            ))
        });
    });
    group.finish();
}

fn bench_end_to_end_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let graph = bench_graph(5_000);
    for (label, variant) in [
        ("exactsim_basic_eps1e-3", ExactSimVariant::Basic),
        ("exactsim_optimized_eps1e-3", ExactSimVariant::Optimized),
    ] {
        let config = ExactSimConfig {
            epsilon: 1e-3,
            variant,
            walk_budget: Some(200_000),
            ..Default::default()
        };
        let solver = ExactSim::new(&graph, config).expect("valid config");
        group.bench_function(label, |b| {
            b.iter(|| black_box(solver.query(11).expect("query succeeds")));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transition_kernels,
    bench_hop_vectors,
    bench_walk_sampling,
    bench_diagonal_estimators,
    bench_end_to_end_query
);
criterion_main!(benches);
