//! Remote mode end-to-end: a [`ShardRouter`] over [`RemoteShard`] backends
//! speaking the **unmodified** TCP line protocol to real `net::serve`
//! listeners — replies bit-identical to the in-process path (the f64 wire
//! round-trip is exact), updates commit on every shard, and a shard that
//! dies costs the router a typed `shard_unavailable` reply, never a hang.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::partition::shard_of;
use exactsim_router::{RemoteShard, ShardBackend, ShardRouter};
use exactsim_service::net::{self, NetOptions};
use exactsim_service::protocol::{self, parse_line, Outcome};
use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(50_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn ask(router: &ShardRouter, line: &str) -> String {
    let request = parse_line(line).unwrap().unwrap();
    match router.execute(AlgorithmKind::ExactSim, &request) {
        Outcome::Reply(reply) => reply,
        other => panic!("`{line}`: unexpected outcome {other:?}"),
    }
}

fn strip_query_time(json: &str) -> String {
    let Some(at) = json.find("\"query_time_us\":") else {
        return json.to_string();
    };
    let vstart = at + "\"query_time_us\":".len();
    let vend = json[vstart..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |o| vstart + o);
    format!("{}0{}", &json[..vstart], &json[vend..])
}

#[test]
fn remote_shards_serve_bit_identically_and_a_dead_shard_yields_a_typed_error_fast() {
    let graph = Arc::new(barabasi_albert(120, 3, true, 7).unwrap());
    let config = test_config();

    // Two unmodified `net::serve` listeners, each a full replica: exactly
    // what two `simrank-serve --listen` processes would be.
    let serve = |graph: &Arc<exactsim_graph::DiGraph>| {
        let service = SimRankService::new(Arc::clone(graph), config.clone()).unwrap();
        net::serve(service, "127.0.0.1:0", NetOptions::default()).expect("bind shard listener")
    };
    let shard0 = serve(&graph);
    let shard1 = serve(&graph);

    let tight = |addr: std::net::SocketAddr| {
        Box::new(
            RemoteShard::new(addr.to_string())
                .with_timeouts(Duration::from_millis(500), Duration::from_secs(30)),
        ) as Box<dyn ShardBackend>
    };
    let router =
        ShardRouter::new(vec![tight(shard0.local_addr()), tight(shard1.local_addr())]).unwrap();

    // Replies through the remote scatter/gather are bit-identical to a
    // direct in-process execution: the protocol's f64 formatting round-trips
    // exactly, so remoting adds no drift.
    let baseline = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();
    for line in ["query 3", "topk 5 7", "shardtopk 5 7 1 2"] {
        let routed = ask(&router, line);
        let direct = match protocol::execute(
            &baseline,
            AlgorithmKind::ExactSim,
            &parse_line(line).unwrap().unwrap(),
        ) {
            Outcome::Reply(reply) => reply,
            other => panic!("`{line}`: {other:?}"),
        };
        assert!(!routed.contains("\"error\""), "{line}: {routed}");
        assert_eq!(
            strip_query_time(&routed),
            strip_query_time(&direct),
            "`{line}` must be bit-identical over the wire"
        );
    }

    // An update fans out to both remote replicas and the epoch barrier
    // publishes only after both commit.
    let staged = ask(&router, "addedge 0 119");
    assert!(staged.contains("\"staged\":\"pending\""), "{staged}");
    let committed = ask(&router, "commit");
    assert!(committed.contains("\"epoch\":1"), "{committed}");
    assert_eq!(router.epoch(), 1);
    let epochs = ask(&router, "epoch");
    assert!(epochs.contains("\"epoch\":1"), "{epochs}");

    // Kill shard 1. A routed request owned by it must come back as the
    // typed shard_unavailable error — promptly (reconnect is bounded by the
    // connect deadline), and without wedging requests shard 0 can answer.
    shard1.request_shutdown();
    shard1.join();
    let owned_by_dead = (0..120u32)
        .find(|&n| shard_of(n, 2) == 1)
        .expect("some node maps to shard 1");
    let owned_by_live = (0..120u32)
        .find(|&n| shard_of(n, 2) == 0)
        .expect("some node maps to shard 0");

    let started = Instant::now();
    let dead = ask(&router, &format!("query {owned_by_dead}"));
    assert!(
        dead.contains("\"error\"") && dead.contains("\"code\":\"shard_unavailable\""),
        "{dead}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "dead shard must fail fast, took {:?}",
        started.elapsed()
    );

    // A gather needs every shard, so it degrades to the same typed error...
    let gathered = ask(&router, &format!("topk {owned_by_live} 5"));
    assert!(
        gathered.contains("\"code\":\"shard_unavailable\""),
        "{gathered}"
    );
    // ...while single-shard routes to the surviving replica still serve.
    let live = ask(&router, &format!("query {owned_by_live}"));
    assert!(!live.contains("\"error\""), "{live}");
    assert!(live.contains("\"epoch\":1"), "{live}");

    // The stats breakdown names both backends and counts the failures.
    let stats = router.stats_json();
    assert!(stats.contains("\"per_shard\":["), "{stats}");
    assert!(stats.contains(&shard0.local_addr().to_string()), "{stats}");
    assert!(stats.contains("\"errors\":"), "{stats}");

    router.drain();
    shard0.request_shutdown();
    shard0.join();
}

#[test]
fn a_shard_down_at_construction_fails_router_new_with_a_typed_error() {
    // A port that briefly had a listener and no longer does: connection
    // refused, immediately.
    let vacated = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let shard = Box::new(
        RemoteShard::new(vacated.to_string())
            .with_timeouts(Duration::from_millis(300), Duration::from_secs(1)),
    ) as Box<dyn ShardBackend>;
    let started = Instant::now();
    let err = match ShardRouter::new(vec![shard]) {
        Err(message) => message,
        Ok(_) => panic!("router must refuse a dead shard"),
    };
    assert!(err.contains(&vacated.to_string()), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "construction probe must fail fast"
    );
}
