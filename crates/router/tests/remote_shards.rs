//! Remote mode end-to-end: a [`ShardRouter`] over [`RemoteShard`] backends
//! speaking the **unmodified** TCP line protocol to real `net::serve`
//! listeners — replies bit-identical to the in-process path (the f64 wire
//! round-trip is exact), updates commit on every shard, and a shard that
//! dies degrades reads to a live replica (marked `degraded:true`, never a
//! wrong answer, never a hang) while its circuit breaker opens.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::partition::shard_of;
use exactsim_router::{BreakerState, RemoteShard, ShardBackend, ShardRouter};
use exactsim_service::net::{self, NetOptions};
use exactsim_service::protocol::{self, parse_line, Outcome};
use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(50_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn ask(router: &ShardRouter, line: &str) -> String {
    let request = parse_line(line).unwrap().unwrap();
    match router.execute(AlgorithmKind::ExactSim, &request) {
        Outcome::Reply(reply) => reply,
        other => panic!("`{line}`: unexpected outcome {other:?}"),
    }
}

fn strip_query_time(json: &str) -> String {
    let Some(at) = json.find("\"query_time_us\":") else {
        return json.to_string();
    };
    let vstart = at + "\"query_time_us\":".len();
    let vend = json[vstart..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |o| vstart + o);
    format!("{}0{}", &json[..vstart], &json[vend..])
}

#[test]
fn remote_shards_serve_bit_identically_and_a_dead_shard_yields_a_typed_error_fast() {
    let graph = Arc::new(barabasi_albert(120, 3, true, 7).unwrap());
    let config = test_config();

    // Two unmodified `net::serve` listeners, each a full replica: exactly
    // what two `simrank-serve --listen` processes would be.
    let serve = |graph: &Arc<exactsim_graph::DiGraph>| {
        let service = SimRankService::new(Arc::clone(graph), config.clone()).unwrap();
        net::serve(service, "127.0.0.1:0", NetOptions::default()).expect("bind shard listener")
    };
    let shard0 = serve(&graph);
    let shard1 = serve(&graph);

    let tight = |addr: std::net::SocketAddr| {
        Box::new(
            RemoteShard::new(addr.to_string())
                .with_timeouts(Duration::from_millis(500), Duration::from_secs(30)),
        ) as Box<dyn ShardBackend>
    };
    let router =
        ShardRouter::new(vec![tight(shard0.local_addr()), tight(shard1.local_addr())]).unwrap();

    // Replies through the remote scatter/gather are bit-identical to a
    // direct in-process execution: the protocol's f64 formatting round-trips
    // exactly, so remoting adds no drift.
    let baseline = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();
    for line in ["query 3", "topk 5 7", "shardtopk 5 7 1 2"] {
        let routed = ask(&router, line);
        let direct = match protocol::execute(
            &baseline,
            AlgorithmKind::ExactSim,
            &parse_line(line).unwrap().unwrap(),
        ) {
            Outcome::Reply(reply) => reply,
            other => panic!("`{line}`: {other:?}"),
        };
        assert!(!routed.contains("\"error\""), "{line}: {routed}");
        assert_eq!(
            strip_query_time(&routed),
            strip_query_time(&direct),
            "`{line}` must be bit-identical over the wire"
        );
    }

    // An update fans out to both remote replicas and the epoch barrier
    // publishes only after both commit.
    let staged = ask(&router, "addedge 0 119");
    assert!(staged.contains("\"staged\":\"pending\""), "{staged}");
    let committed = ask(&router, "commit");
    assert!(committed.contains("\"epoch\":1"), "{committed}");
    assert_eq!(router.epoch(), 1);
    let epochs = ask(&router, "epoch");
    assert!(epochs.contains("\"epoch\":1"), "{epochs}");

    // `ping` answers from the router's published state: no fan-out, so it
    // works regardless of shard health.
    let pong = ask(&router, "ping");
    assert!(
        pong.contains("\"op\":\"ping\"") && pong.contains("\"epoch\":1"),
        "{pong}"
    );

    // Kill shard 1. Reads it owns must keep being answered — every backend
    // is a full replica, so the router re-asks shard 0 and marks the reply
    // `degraded` — promptly (reconnect is bounded by the connect deadline),
    // and with zero wrong answers.
    shard1.request_shutdown();
    shard1.join();
    let owned_by_dead = (0..120u32)
        .find(|&n| shard_of(n, 2) == 1)
        .expect("some node maps to shard 1");
    let owned_by_live = (0..120u32)
        .find(|&n| shard_of(n, 2) == 0)
        .expect("some node maps to shard 0");

    let started = Instant::now();
    let failed_over = ask(&router, &format!("query {owned_by_dead}"));
    assert!(!failed_over.contains("\"error\""), "{failed_over}");
    assert!(failed_over.contains("\"degraded\":true"), "{failed_over}");
    assert!(failed_over.contains("\"epoch\":1"), "{failed_over}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "failover must be fast, took {:?}",
        started.elapsed()
    );

    // The failover answer is the *same* answer the healthy replica gives —
    // degraded means re-routed, never different. Ask shard 0 directly over
    // the wire with the router's canonical line and compare byte-for-byte
    // (modulo timing and the degraded marker).
    let canonical = protocol::Request::Query {
        node: owned_by_dead,
        algo: Some(AlgorithmKind::ExactSim),
    }
    .to_line();
    let mut direct_conn = exactsim_service::net::LineClient::connect(shard0.local_addr()).unwrap();
    let direct = direct_conn.round_trip(&canonical).unwrap();
    assert_eq!(
        strip_query_time(&failed_over).replace(",\"degraded\":true", ""),
        strip_query_time(&direct),
        "failover reply must be bit-identical to the live replica's answer"
    );

    // A gather's dead slice fails over the same way: the merged topk is
    // served, marked degraded, bit-identical in its results.
    let gathered = ask(&router, &format!("topk {owned_by_live} 5"));
    assert!(!gathered.contains("\"error\""), "{gathered}");
    assert!(gathered.contains("\"degraded\":true"), "{gathered}");
    assert!(gathered.contains("\"results\":["), "{gathered}");
    // ...while single-shard routes to the surviving replica serve normally.
    let live = ask(&router, &format!("query {owned_by_live}"));
    assert!(!live.contains("\"error\""), "{live}");
    assert!(!live.contains("\"degraded\""), "{live}");
    assert!(live.contains("\"epoch\":1"), "{live}");

    // Two failures are on the books for shard 1 (query + gather slice); the
    // default breaker threshold is 3, so one probe round tips it open.
    assert_eq!(router.shard_health(0), BreakerState::Closed);
    router.probe_once();
    assert_eq!(router.shard_health(1), BreakerState::Open);
    assert_eq!(router.shard_health(0), BreakerState::Closed);

    // With the breaker open, reads owned by the dead shard fail over
    // without paying the connect timeout (fast-fail, still degraded).
    let fastfail = ask(&router, &format!("query {owned_by_dead}"));
    assert!(fastfail.contains("\"degraded\":true"), "{fastfail}");

    // Writes are never silently retried or failed over: the fan-out
    // surfaces the dead shard as a typed error instead of double-applying.
    let write = ask(&router, "addedge 1 118");
    assert!(write.contains("\"code\":\"shard_unavailable\""), "{write}");

    // The stats breakdown names both backends, counts the failures, and
    // exposes breaker state and the degraded-read counter.
    let stats = router.stats_json();
    assert!(stats.contains("\"per_shard\":["), "{stats}");
    assert!(stats.contains(&shard0.local_addr().to_string()), "{stats}");
    assert!(stats.contains("\"errors\":"), "{stats}");
    assert!(stats.contains("\"health\":\"open\""), "{stats}");
    assert!(stats.contains("\"health\":\"closed\""), "{stats}");
    assert!(!stats.contains("\"degraded\":0,"), "{stats}");
    let metrics = router.metrics_text();
    assert!(
        metrics.contains("simrank_router_degraded_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("simrank_router_breaker_state"),
        "{metrics}"
    );

    router.drain();
    shard0.request_shutdown();
    shard0.join();
}

#[test]
fn every_shard_down_still_fails_typed_after_failover_exhausts() {
    let graph = Arc::new(barabasi_albert(60, 3, true, 11).unwrap());
    let serve = |graph: &Arc<exactsim_graph::DiGraph>| {
        let service = SimRankService::new(Arc::clone(graph), test_config()).unwrap();
        net::serve(service, "127.0.0.1:0", NetOptions::default()).expect("bind shard listener")
    };
    let shard0 = serve(&graph);
    let shard1 = serve(&graph);
    let tight = |addr: std::net::SocketAddr| {
        Box::new(
            RemoteShard::new(addr.to_string())
                .with_timeouts(Duration::from_millis(300), Duration::from_secs(5)),
        ) as Box<dyn ShardBackend>
    };
    let router =
        ShardRouter::new(vec![tight(shard0.local_addr()), tight(shard1.local_addr())]).unwrap();

    shard0.request_shutdown();
    shard0.join();
    shard1.request_shutdown();
    shard1.join();

    // No replica left to fail over to: the read comes back as the typed
    // error, promptly — degradation never fabricates an answer.
    let started = Instant::now();
    let reply = ask(&router, "query 3");
    assert!(reply.contains("\"code\":\"shard_unavailable\""), "{reply}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "exhausted failover must still be fast, took {:?}",
        started.elapsed()
    );
    // The router itself stays alive and pingable.
    let pong = ask(&router, "ping");
    assert!(pong.contains("\"op\":\"ping\""), "{pong}");
}

#[test]
fn a_shard_down_at_construction_fails_router_new_with_a_typed_error() {
    // A port that briefly had a listener and no longer does: connection
    // refused, immediately.
    let vacated = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let shard = Box::new(
        RemoteShard::new(vacated.to_string())
            .with_timeouts(Duration::from_millis(300), Duration::from_secs(1)),
    ) as Box<dyn ShardBackend>;
    let started = Instant::now();
    let err = match ShardRouter::new(vec![shard]) {
        Err(message) => message,
        Ok(_) => panic!("router must refuse a dead shard"),
    };
    assert!(err.contains(&vacated.to_string()), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "construction probe must fail fast"
    );
}
