//! Per-shard health tracking: the closed → open → half-open circuit breaker.
//!
//! Every shard the router fans out to gets one [`Breaker`]. The router asks
//! [`Breaker::allow`] before sending anything to the shard and reports the
//! outcome back with [`Breaker::record_success`] / [`Breaker::record_failure`]
//! — only *unavailability* counts as failure (connect/read errors, timeouts);
//! a malformed reply is a bug to surface, not an outage to route around.
//!
//! State machine:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ───────────────────────────────────▶ Open
//!     ▲                                          │ cool-down expires
//!     │ trial succeeds                           ▼ (exponential backoff
//!     └────────────────────────────────────── HalfOpen     + jitter)
//!                    trial fails: back to Open, backoff doubled
//! ```
//!
//! While `Open`, every [`Breaker::allow`] fails fast — a down shard costs
//! the router a memory read instead of a connect timeout per request. When
//! the cool-down expires the breaker admits exactly **one** trial request
//! (`HalfOpen`); its outcome decides between closing and re-opening with a
//! doubled cool-down. The background prober
//! ([`ShardRouter::start_health_probes`]) sends `ping` trials on its own
//! clock, so a shard heals even when no client traffic is flowing.
//!
//! [`ShardRouter::start_health_probes`]: crate::ShardRouter::start_health_probes
//!
//! Backoff is exponential (`backoff_base * 2^(opens-1)`, capped at
//! `backoff_max`) with ±20% deterministic jitter from a per-breaker seeded
//! generator, so a fleet of routers does not re-probe a recovering shard in
//! lockstep.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs for every [`Breaker`] a router creates.
///
/// [`BreakerConfig::from_env`] reads operator overrides; the defaults favor
/// fast CI-visible transitions while staying sane in production: 3 strikes,
/// 200 ms first cool-down, 2 s cap, 500 ms probe cadence.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive unavailability failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Cool-down after the first trip; doubles per consecutive re-open.
    pub backoff_base: Duration,
    /// Cool-down ceiling.
    pub backoff_max: Duration,
    /// Cadence of the background `ping` prober.
    pub probe_interval: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            backoff_base: Duration::from_millis(200),
            backoff_max: Duration::from_millis(2_000),
            probe_interval: Duration::from_millis(500),
        }
    }
}

impl BreakerConfig {
    /// The defaults, overridden by any of `SIMRANK_BREAKER_THRESHOLD`,
    /// `SIMRANK_BREAKER_BACKOFF_MS`, `SIMRANK_BREAKER_BACKOFF_MAX_MS`,
    /// `SIMRANK_PROBE_INTERVAL_MS` (unparsable values are ignored).
    pub fn from_env() -> Self {
        let mut cfg = BreakerConfig::default();
        let num = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = num("SIMRANK_BREAKER_THRESHOLD") {
            cfg.failure_threshold = (v as u32).max(1);
        }
        if let Some(v) = num("SIMRANK_BREAKER_BACKOFF_MS") {
            cfg.backoff_base = Duration::from_millis(v.max(1));
        }
        if let Some(v) = num("SIMRANK_BREAKER_BACKOFF_MAX_MS") {
            cfg.backoff_max = Duration::from_millis(v.max(1));
        }
        if let Some(v) = num("SIMRANK_PROBE_INTERVAL_MS") {
            cfg.probe_interval = Duration::from_millis(v.max(1));
        }
        cfg
    }
}

/// The three breaker states, exported for stats and metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests fail fast until the cool-down expires.
    Open,
    /// Cool-down expired: one trial request is in flight (or allowed).
    HalfOpen,
}

impl BreakerState {
    /// Stable wire name, used in `stats` and logs.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric gauge encoding: 0 closed, 1 half-open, 2 open (monotone in
    /// badness, so `max()` over shards is a fleet-health signal).
    pub fn gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// If a half-open trial has not reported back after this long, assume its
/// thread died and admit another trial rather than wedging half-open.
const STALE_TRIAL: Duration = Duration::from_secs(90);

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive opens since the last close, drives the exponential.
    opens: u32,
    open_until: Instant,
    trial_started: Option<Instant>,
    rng: u64,
}

/// One shard's circuit breaker. All methods are cheap and thread-safe.
pub struct Breaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Breaker {
    /// A closed breaker. `seed` decorrelates jitter across breakers (the
    /// router passes the shard index).
    pub fn new(config: BreakerConfig, seed: u64) -> Self {
        Breaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opens: 0,
                open_until: Instant::now(),
                trial_started: None,
                rng: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
            }),
        }
    }

    /// Current cool-down for the n-th consecutive open (1-based):
    /// `base * 2^(n-1)` capped at `backoff_max`, jittered ±20%.
    fn cooldown(&self, inner: &mut BreakerInner) -> Duration {
        let doublings = inner.opens.saturating_sub(1).min(16);
        let raw = self
            .config
            .backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.config.backoff_max);
        // Jitter in [0.8, 1.2): 53-bit uniform draw scaled into the band.
        let unit = (splitmix64(&mut inner.rng) >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(0.8 + 0.4 * unit)
    }

    /// May a request be sent to this shard right now?
    ///
    /// Closed: yes. Open: no, until the cool-down expires — the expiring
    /// call itself transitions to half-open and is admitted as the single
    /// trial. Half-open: only if no trial is in flight.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now < inner.open_until {
                    return false;
                }
                inner.state = BreakerState::HalfOpen;
                inner.trial_started = Some(now);
                true
            }
            BreakerState::HalfOpen => match inner.trial_started {
                Some(started) if now.duration_since(started) < STALE_TRIAL => false,
                _ => {
                    inner.trial_started = Some(now);
                    true
                }
            },
        }
    }

    /// The shard answered (any protocol-level reply counts — even an error
    /// reply proves the process is alive and serving).
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.consecutive_failures = 0;
        inner.opens = 0;
        inner.trial_started = None;
        inner.state = BreakerState::Closed;
    }

    /// The shard was unavailable (connect/read failure or timeout).
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            // A failed trial re-opens immediately with a longer cool-down.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            inner.opens = inner.opens.saturating_add(1);
            inner.state = BreakerState::Open;
            inner.trial_started = None;
            let cooldown = self.cooldown(&mut inner);
            inner.open_until = Instant::now() + cooldown;
        }
    }

    /// The current state (for stats, metrics gauges, and probe decisions).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).state
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_millis(80),
            probe_interval: Duration::from_millis(5),
        }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = Breaker::new(fast_config(), 0);
        for _ in 0..2 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn success_resets_the_strike_count() {
        let b = Breaker::new(fast_config(), 1);
        b.record_failure();
        b.record_failure();
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn opens_at_threshold_and_fails_fast() {
        let b = Breaker::new(fast_config(), 2);
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker must fail fast");
    }

    #[test]
    fn half_opens_after_cooldown_and_closes_on_success() {
        let b = Breaker::new(fast_config(), 3);
        for _ in 0..3 {
            b.record_failure();
        }
        // Cool-down for the first open is <= 80ms * 1.2.
        std::thread::sleep(Duration::from_millis(120));
        assert!(b.allow(), "expired cool-down admits one trial");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one trial while half-open");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_trial_reopens_with_longer_cooldown() {
        let b = Breaker::new(fast_config(), 4);
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(120));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Immediately after re-opening the (now doubled) cool-down holds.
        assert!(!b.allow());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = fast_config();
        let b = Breaker::new(cfg, 5);
        let mut inner = b.inner.lock().unwrap();
        inner.opens = 1;
        let first = b.cooldown(&mut inner);
        inner.opens = 2;
        let second = b.cooldown(&mut inner);
        inner.opens = 30; // far past the cap
        let capped = b.cooldown(&mut inner);
        drop(inner);
        assert!(first >= Duration::from_millis(16) && first <= Duration::from_millis(24));
        assert!(second >= Duration::from_millis(32) && second <= Duration::from_millis(48));
        assert!(
            capped <= Duration::from_millis(96),
            "cap exceeded: {capped:?}"
        );
    }

    #[test]
    fn state_gauge_is_monotone_in_badness() {
        assert_eq!(BreakerState::Closed.gauge(), 0.0);
        assert_eq!(BreakerState::HalfOpen.gauge(), 1.0);
        assert_eq!(BreakerState::Open.gauge(), 2.0);
        assert_eq!(BreakerState::Open.name(), "open");
    }
}
