//! Workload scenarios for `simrank-client --scenario`: named, parameterised
//! request mixes that turn the client from a uniform `topk` hammer into a
//! workload model.
//!
//! A scenario combines four independent axes:
//!
//! 1. **Source popularity** — which source node each read asks about.
//!    A Zipfian sampler ([`ZipfSampler`]) over the source range models the
//!    skew real query logs show; exponent `0` degenerates to uniform.
//! 2. **Read/write mix** — the fraction of operations that are `topk`/`query`
//!    reads vs. staged graph updates (`addedge`/`deledge`), with a `commit`
//!    forced after every `commit_every` writes so updates actually publish
//!    epochs while the load runs.
//! 3. **Algorithm mix** — a weighted choice over the served algorithm kinds,
//!    so one run exercises the per-algorithm serving paths side by side.
//! 4. **Arrival process** — closed-loop (send-next-on-reply, the classic
//!    saturation bench) or **open-loop**: a Poisson schedule at `rate`
//!    requests/sec, optionally modulated by burst phases
//!    ([`BurstSpec`]) that multiply the rate for the first `burst_len`
//!    arrivals of every `period`-arrival cycle. Open-loop latency is
//!    measured from the *scheduled* arrival time, so queueing delay under
//!    overload is visible instead of coordinated-omission-hidden.
//!
//! The whole scenario is expanded up front into a deterministic operation
//! plan ([`build_plan`]) and, for open-loop runs, an arrival timetable
//! ([`arrival_offsets`]) — both derived from the scenario seed alone, so two
//! runs with the same spec issue bit-identical request streams.
//!
//! ## Spec grammar
//!
//! ```text
//! spec     = name *("," key "=" value)
//! name     = one of the names in `builtin_names()`
//! key      = requests | conns | sources | topk | zipf | read_mix | rate
//!          | burst_factor | burst_period | burst_len | commit_every
//!          | seed | algos | outage_start | outage_len
//! ```
//!
//! `outage_start`/`outage_len` (fractions of the plan, `fault_storm`'s
//! defaults are `0.3`/`0.45`) carve a *shard-outage window* out of the
//! middle of the run: the plan forces a `commit` at the window's start (so
//! a shard killed inside it takes no staged-but-unpublished writes down
//! with it) and issues only reads inside the window — the operations that
//! stay correct, via replica failover, while a shard is dead. The harness
//! (CI's `fault-smoke` job) kills a shard once the window opens and
//! restarts it before the window closes; the client's zero-error gate then
//! proves degraded reads kept flowing and writes resumed after recovery.
//!
//! `algos` weights are `/`-separated `kind:weight` pairs (the comma is taken
//! by the override separator), e.g. `algos=exactsim:2/mc:1`. `rate=0`
//! switches back to closed-loop. Examples:
//!
//! ```text
//! zipf_hot_reads
//! read_mostly,requests=2000,zipf=1.5
//! bursty_open_loop,rate=400,burst_factor=8
//! ```

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use exactsim_service::AlgorithmKind;

/// Burst modulation of an open-loop arrival process: for the first
/// `burst_len` arrivals of every `period`-arrival cycle, the instantaneous
/// rate is `factor` times the base rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstSpec {
    /// Rate multiplier inside the burst window (> 1 for real bursts).
    pub factor: f64,
    /// Cycle length in arrivals.
    pub period: u64,
    /// Arrivals per cycle that run at the boosted rate (≤ `period`).
    pub burst_len: u64,
}

/// One fully-resolved workload scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The base scenario name this spec was derived from.
    pub name: String,
    /// Total read/write operations to issue (commits ride on top).
    pub requests: u64,
    /// Concurrent client sockets.
    pub conns: usize,
    /// Source-node id range: reads and write endpoints are drawn from
    /// `[0, sources)`, which must stay inside the served graph.
    pub sources: u32,
    /// `topk <src> K` reads; `0` issues full `query` reads instead.
    pub topk: usize,
    /// Zipf exponent for source popularity (`0` = uniform).
    pub zipf_exponent: f64,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_mix: f64,
    /// Weighted algorithm choice for reads; empty = server default.
    pub algo_mix: Vec<(AlgorithmKind, f64)>,
    /// Open-loop arrival rate in requests/sec; `None` = closed-loop.
    pub rate: Option<f64>,
    /// Burst modulation of the open-loop schedule.
    pub burst: Option<BurstSpec>,
    /// Force a `commit` after every this-many staged writes.
    pub commit_every: u64,
    /// Seed for every random draw the scenario makes.
    pub seed: u64,
    /// Where the shard-outage window opens, as a fraction of the plan.
    pub outage_start: f64,
    /// Window length as a fraction of the plan; `0` = no outage window.
    /// Inside the window the plan is read-only and a `commit` is forced at
    /// entry, so killing a shard mid-window loses no staged writes.
    pub outage_len: f64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "steady_read".to_string(),
            requests: 400,
            conns: 4,
            sources: 25,
            topk: 10,
            zipf_exponent: 0.0,
            read_mix: 1.0,
            algo_mix: Vec::new(),
            rate: None,
            burst: None,
            commit_every: 16,
            seed: 2020,
            outage_start: 0.0,
            outage_len: 0.0,
        }
    }
}

/// The names [`parse_scenario`] accepts as a base, in stable order.
pub fn builtin_names() -> &'static [&'static str] {
    &[
        "steady_read",
        "zipf_hot_reads",
        "read_mostly",
        "write_heavy",
        "bursty_open_loop",
        "algo_mix",
        "fault_storm",
    ]
}

/// The built-in scenario for `name`, or `None` for an unknown name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    let base = ScenarioSpec {
        name: name.to_string(),
        ..ScenarioSpec::default()
    };
    Some(match name {
        // The uniform closed-loop read hammer: the old `--bench` behaviour,
        // expressed as a scenario.
        "steady_read" => base,
        // Zipf-skewed read-only load: a few hot sources dominate, which is
        // what makes the service's response cache and dedup earn their keep.
        "zipf_hot_reads" => ScenarioSpec {
            zipf_exponent: 1.2,
            ..base
        },
        // The headline serving mix: 95% skewed reads, 5% staged updates with
        // periodic commits publishing epochs under read load.
        "read_mostly" => ScenarioSpec {
            zipf_exponent: 1.0,
            read_mix: 0.95,
            commit_every: 8,
            ..base
        },
        // Update-dominated: every other operation mutates the graph, commits
        // come fast, readers constantly cross epochs (the router's
        // mixed-epoch retry path gets real traffic).
        "write_heavy" => ScenarioSpec {
            zipf_exponent: 0.8,
            read_mix: 0.5,
            commit_every: 4,
            ..base
        },
        // Open-loop at a fixed offered rate with 4x bursts: the scenario that
        // can actually overload the server and measure shed + queueing delay.
        "bursty_open_loop" => ScenarioSpec {
            zipf_exponent: 1.0,
            read_mix: 0.9,
            rate: Some(200.0),
            burst: Some(BurstSpec {
                factor: 4.0,
                period: 100,
                burst_len: 25,
            }),
            commit_every: 8,
            ..base
        },
        // Read-mostly open-loop load with a mid-run shard-outage window
        // (ops 30%..75% of the plan are read-only, entered on a forced
        // commit): the degradation bench. At 120 req/s the window is wide
        // enough for a harness to kill a shard, watch the router's breaker
        // open and reads degrade to the surviving replica, restart the
        // shard, and see the breaker reclose — all inside one scenario run
        // that still gates on zero errored requests.
        "fault_storm" => ScenarioSpec {
            requests: 1800,
            zipf_exponent: 1.0,
            read_mix: 0.9,
            rate: Some(120.0),
            commit_every: 8,
            outage_start: 0.3,
            outage_len: 0.45,
            ..base
        },
        // Reads split across all three served algorithms, so one run
        // exercises ExactSim, PRSim, and Monte-Carlo serving side by side.
        "algo_mix" => ScenarioSpec {
            zipf_exponent: 1.0,
            algo_mix: vec![
                (AlgorithmKind::ExactSim, 1.0),
                (AlgorithmKind::PrSim, 1.0),
                (AlgorithmKind::MonteCarlo, 1.0),
            ],
            ..base
        },
        _ => return None,
    })
}

/// Parses a scenario spec string (`name[,key=value]*` — see the module docs
/// for the grammar) into a resolved [`ScenarioSpec`].
pub fn parse_scenario(spec: &str) -> Result<ScenarioSpec, String> {
    let mut parts = spec.split(',');
    let name = parts.next().unwrap_or("").trim();
    let mut scenario = builtin(name).ok_or_else(|| {
        format!(
            "unknown scenario `{name}` (known: {})",
            builtin_names().join(", ")
        )
    })?;
    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("override `{part}` is not key=value"))?;
        let (key, value) = (key.trim(), value.trim());
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("bad value `{value}` for `{key}`"))
        }
        match key {
            "requests" => {
                scenario.requests = num(key, value)?;
                if scenario.requests == 0 {
                    return Err("requests must be at least 1".into());
                }
            }
            "conns" => {
                scenario.conns = num(key, value)?;
                if scenario.conns == 0 {
                    return Err("conns must be at least 1".into());
                }
            }
            "sources" => {
                scenario.sources = num(key, value)?;
                if scenario.sources == 0 {
                    return Err("sources must be at least 1".into());
                }
            }
            "topk" => scenario.topk = num(key, value)?,
            "zipf" => {
                scenario.zipf_exponent = num(key, value)?;
                if !(0.0..=16.0).contains(&scenario.zipf_exponent) {
                    return Err(format!("zipf exponent {value} out of [0, 16]"));
                }
            }
            "read_mix" => {
                scenario.read_mix = num(key, value)?;
                if !(0.0..=1.0).contains(&scenario.read_mix) {
                    return Err(format!("read_mix {value} out of [0, 1]"));
                }
            }
            "rate" => {
                let rate: f64 = num(key, value)?;
                if rate < 0.0 || !rate.is_finite() {
                    return Err(format!("bad rate `{value}`"));
                }
                scenario.rate = (rate > 0.0).then_some(rate);
            }
            "burst_factor" | "burst_period" | "burst_len" => {
                let mut burst = scenario.burst.unwrap_or(BurstSpec {
                    factor: 4.0,
                    period: 100,
                    burst_len: 25,
                });
                match key {
                    "burst_factor" => {
                        burst.factor = num(key, value)?;
                        if burst.factor <= 0.0 || !burst.factor.is_finite() {
                            return Err(format!("bad burst_factor `{value}`"));
                        }
                    }
                    "burst_period" => {
                        burst.period = num(key, value)?;
                        if burst.period == 0 {
                            return Err("burst_period must be at least 1".into());
                        }
                    }
                    _ => burst.burst_len = num(key, value)?,
                }
                if burst.burst_len > burst.period {
                    return Err(format!(
                        "burst_len {} exceeds burst_period {}",
                        burst.burst_len, burst.period
                    ));
                }
                scenario.burst = Some(burst);
            }
            "commit_every" => {
                scenario.commit_every = num(key, value)?;
                if scenario.commit_every == 0 {
                    return Err("commit_every must be at least 1".into());
                }
            }
            "seed" => scenario.seed = num(key, value)?,
            "outage_start" | "outage_len" => {
                let fraction: f64 = num(key, value)?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(format!("{key} {value} out of [0, 1]"));
                }
                if key == "outage_start" {
                    scenario.outage_start = fraction;
                } else {
                    scenario.outage_len = fraction;
                }
            }
            "algos" => {
                let mut mix = Vec::new();
                for pair in value.split('/') {
                    let (kind, weight) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("algos entry `{pair}` is not kind:weight"))?;
                    let kind: AlgorithmKind = kind.trim().parse().map_err(|e| format!("{e}"))?;
                    let weight: f64 = num("algos", weight.trim())?;
                    if weight <= 0.0 || !weight.is_finite() {
                        return Err(format!("bad weight in algos entry `{pair}`"));
                    }
                    mix.push((kind, weight));
                }
                if mix.is_empty() {
                    return Err("algos needs at least one kind:weight pair".into());
                }
                scenario.algo_mix = mix;
            }
            other => return Err(format!("unknown scenario key `{other}`")),
        }
    }
    // Writes draw non-self-loop edge endpoints from the source range, which
    // needs at least two ids to choose from.
    if scenario.read_mix < 1.0 && scenario.sources < 2 {
        return Err("a write-bearing scenario (read_mix < 1) needs sources >= 2".into());
    }
    if scenario.outage_start + scenario.outage_len > 1.0 + 1e-9 {
        return Err(format!(
            "outage window exceeds the plan (start {} + len {} > 1)",
            scenario.outage_start, scenario.outage_len
        ));
    }
    Ok(scenario)
}

/// Zipfian sampler over ranks `0..n`: rank `r` is drawn with probability
/// proportional to `1 / (r + 1)^exponent`. Exponent `0` is exactly uniform.
///
/// Implemented as inverse-CDF sampling — one uniform draw plus a binary
/// search over the precomputed cumulative weights — so sampling is
/// `O(log n)` and the sequence is a pure function of the RNG stream.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks at `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent` is negative or non-finite.
    pub fn new(n: u32, exponent: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "bad Zipf exponent {exponent}"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += (f64::from(rank) + 1.0).powf(-exponent);
            cdf.push(total);
        }
        for weight in &mut cdf {
            *weight /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // partition_point: the first rank whose cumulative weight exceeds u.
        self.cdf.partition_point(|&w| w <= u) as u32
    }

    /// The probability of rank `r` (for tests and reporting).
    pub fn probability(&self, r: u32) -> f64 {
        let r = r as usize;
        let below = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - below
    }
}

/// One operation of an expanded scenario plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A `topk`/`query` read of `source`, optionally pinning the algorithm.
    Read {
        /// Source node to ask about.
        source: u32,
        /// Explicit algorithm, or `None` for the server default.
        algo: Option<AlgorithmKind>,
    },
    /// A staged `addedge`/`deledge` of `u -> v`.
    Write {
        /// `true` for `addedge`, `false` for `deledge`.
        insert: bool,
        /// Edge tail.
        u: u32,
        /// Edge head.
        v: u32,
    },
    /// A `commit` publishing the staged writes as a new epoch.
    Commit,
}

impl Op {
    /// The protocol request line for this operation. Reads become
    /// `topk <src> <k>` (or `query <src>` when `topk == 0`).
    pub fn to_line(&self, topk: usize) -> String {
        match self {
            Op::Read { source, algo } => {
                let suffix = algo.map(|a| format!(" {a}")).unwrap_or_default();
                if topk > 0 {
                    format!("topk {source} {topk}{suffix}")
                } else {
                    format!("query {source}{suffix}")
                }
            }
            Op::Write { insert: true, u, v } => format!("addedge {u} {v}"),
            Op::Write {
                insert: false,
                u,
                v,
            } => format!("deledge {u} {v}"),
            Op::Commit => "commit".to_string(),
        }
    }

    /// `true` for [`Op::Read`].
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read { .. })
    }
}

/// Expands a scenario into its deterministic operation plan:
/// `spec.requests` reads/writes in issue order, with a `commit` inserted
/// after every `commit_every`-th write (plus one final commit if writes
/// remain staged). The plan depends only on the spec, so re-running a
/// scenario replays the identical request stream.
pub fn build_plan(spec: &ScenarioSpec) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = ZipfSampler::new(spec.sources, spec.zipf_exponent);
    let algo_total: f64 = spec.algo_mix.iter().map(|(_, w)| w).sum();
    // The shard-outage window in request indices: `[outage_from, outage_to)`
    // issues only reads (they stay answerable, degraded, with a shard down),
    // and the window is entered on a forced commit so a kill inside it
    // cannot take staged-but-unpublished writes along.
    let has_outage = spec.outage_len > 0.0;
    let outage_from = (spec.outage_start * spec.requests as f64).round() as u64;
    let outage_to = ((spec.outage_start + spec.outage_len) * spec.requests as f64).round() as u64;
    let mut plan = Vec::with_capacity(spec.requests as usize + 4);
    let mut staged = 0u64;
    for i in 0..spec.requests {
        let in_outage = has_outage && (outage_from..outage_to).contains(&i);
        if has_outage && i == outage_from && staged > 0 {
            plan.push(Op::Commit);
            staged = 0;
        }
        if in_outage || rng.gen_bool(spec.read_mix) {
            let algo = if spec.algo_mix.is_empty() {
                None
            } else {
                let mut pick = rng.gen::<f64>() * algo_total;
                let mut chosen = spec.algo_mix[0].0;
                for &(kind, weight) in &spec.algo_mix {
                    chosen = kind;
                    pick -= weight;
                    if pick <= 0.0 {
                        break;
                    }
                }
                Some(chosen)
            };
            plan.push(Op::Read {
                source: zipf.sample(&mut rng),
                algo,
            });
        } else {
            // Write endpoints come from the same id range as read sources, so
            // a scenario stays valid on any graph the reads are valid on.
            // Deleting a never-inserted edge is a protocol-level no-op, so an
            // unpaired `deledge` is harmless. The head is drawn from the
            // range minus the tail: the protocol rejects self-loops.
            let u = rng.gen_range(0..spec.sources);
            let v = (u + 1 + rng.gen_range(0..spec.sources - 1)) % spec.sources;
            plan.push(Op::Write {
                insert: rng.gen_bool(0.5),
                u,
                v,
            });
            staged += 1;
            if staged >= spec.commit_every {
                plan.push(Op::Commit);
                staged = 0;
            }
        }
    }
    if staged > 0 {
        plan.push(Op::Commit);
    }
    plan
}

/// The open-loop arrival timetable for `n` operations: offset of each
/// operation's scheduled send time from the scenario start, strictly
/// non-decreasing. Returns `None` for closed-loop specs (`rate` unset).
///
/// Inter-arrival gaps are exponential with mean `1/rate` (a Poisson
/// process); inside a [`BurstSpec`] window the instantaneous rate is
/// multiplied by `factor`. The timetable is derived from the scenario seed
/// (offset so it does not correlate with the plan's own draws).
pub fn arrival_offsets(spec: &ScenarioSpec, n: usize) -> Option<Vec<Duration>> {
    let rate = spec.rate?;
    // A distinct stream from build_plan's: the schedule must not shift when
    // the mix parameters change the number of plan draws.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x05ca_1ab1_e0dd_ba11);
    let mut offsets = Vec::with_capacity(n);
    let mut now = 0.0f64;
    for i in 0..n {
        let boosted = spec
            .burst
            .map(|b| (i as u64 % b.period) < b.burst_len)
            .unwrap_or(false);
        let instantaneous = if boosted {
            rate * spec.burst.expect("checked above").factor
        } else {
            rate
        };
        // Inverse-CDF exponential draw; 1 - u keeps the argument nonzero.
        let u: f64 = rng.gen();
        now += -(1.0 - u).ln() / instantaneous;
        offsets.push(Duration::from_secs_f64(now));
    }
    Some(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_all_resolve() {
        for name in builtin_names() {
            let spec = builtin(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(spec.name, *name);
            assert!(spec.requests > 0);
        }
        assert!(builtin("no_such_scenario").is_none());
    }

    #[test]
    fn parse_scenario_table() {
        // (spec string, expected Ok-check or Err-substring)
        type SpecCheck = fn(&ScenarioSpec) -> bool;
        let ok: &[(&str, SpecCheck)] = &[
            ("steady_read", |s| {
                s.rate.is_none() && (s.read_mix - 1.0).abs() < 1e-12
            }),
            ("zipf_hot_reads", |s| (s.zipf_exponent - 1.2).abs() < 1e-12),
            ("read_mostly,requests=2000,zipf=1.5", |s| {
                s.requests == 2000 && (s.zipf_exponent - 1.5).abs() < 1e-12
            }),
            ("steady_read,rate=250.5", |s| s.rate == Some(250.5)),
            ("bursty_open_loop,rate=0", |s| s.rate.is_none()),
            (
                "steady_read,burst_factor=8,burst_period=50,burst_len=10",
                |s| {
                    s.burst
                        == Some(BurstSpec {
                            factor: 8.0,
                            period: 50,
                            burst_len: 10,
                        })
                },
            ),
            ("write_heavy,commit_every=3,seed=99", |s| {
                s.commit_every == 3 && s.seed == 99
            }),
            ("steady_read,algos=exactsim:2/mc:1", |s| {
                s.algo_mix
                    == vec![
                        (AlgorithmKind::ExactSim, 2.0),
                        (AlgorithmKind::MonteCarlo, 1.0),
                    ]
            }),
            ("steady_read, conns=9 , topk=0", |s| {
                s.conns == 9 && s.topk == 0
            }),
            ("fault_storm", |s| {
                s.rate.is_some()
                    && (s.outage_start - 0.3).abs() < 1e-12
                    && (s.outage_len - 0.45).abs() < 1e-12
            }),
            ("steady_read,outage_start=0.5,outage_len=0.25", |s| {
                (s.outage_start - 0.5).abs() < 1e-12 && (s.outage_len - 0.25).abs() < 1e-12
            }),
        ];
        for (input, check) in ok {
            let spec = parse_scenario(input).unwrap_or_else(|e| panic!("{input}: {e}"));
            assert!(check(&spec), "{input}: unexpected spec {spec:?}");
        }

        let err: &[(&str, &str)] = &[
            ("no_such", "unknown scenario"),
            ("steady_read,zipf", "not key=value"),
            ("steady_read,zipf=-1", "out of [0, 16]"),
            ("steady_read,read_mix=1.5", "out of [0, 1]"),
            ("steady_read,requests=0", "at least 1"),
            ("steady_read,burst_len=200,burst_period=100", "exceeds"),
            ("steady_read,algos=exactsim", "not kind:weight"),
            ("steady_read,algos=warp:1", "warp"),
            ("steady_read,frobnicate=1", "unknown scenario key"),
            ("write_heavy,sources=1", "sources >= 2"),
            ("steady_read,outage_start=1.5", "out of [0, 1]"),
            ("fault_storm,outage_start=0.9", "exceeds the plan"),
        ];
        for (input, needle) in err {
            let msg = parse_scenario(input).unwrap_err();
            assert!(msg.contains(needle), "{input}: got `{msg}`");
        }
    }

    #[test]
    fn zipf_is_deterministic_under_a_fixed_seed() {
        let zipf = ZipfSampler::new(100, 1.1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn zipf_exponent_shapes_the_distribution() {
        // Exponent 0 is uniform: every rank has the same probability.
        let uniform = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((uniform.probability(r) - 0.1).abs() < 1e-12, "rank {r}");
        }
        // A positive exponent ranks monotonically and puts the textbook
        // 1/2^s ratio between ranks 0 and 1.
        let skewed = ZipfSampler::new(1000, 1.0);
        assert!(skewed.probability(0) > skewed.probability(1));
        assert!(skewed.probability(1) > skewed.probability(999));
        let ratio = skewed.probability(0) / skewed.probability(1);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        // Empirically, a heavy exponent concentrates mass on rank 0.
        let heavy = ZipfSampler::new(1000, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| heavy.sample(&mut rng) == 0).count();
        assert!(hits > 5000, "rank-0 hits {hits} too low for exponent 2");
        // Samples stay inside the rank range.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(skewed.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn plans_are_deterministic_and_respect_the_mix() {
        let spec = parse_scenario("read_mostly,requests=1000,sources=50").unwrap();
        let plan = build_plan(&spec);
        assert_eq!(plan, build_plan(&spec), "plan must be reproducible");
        let reads = plan.iter().filter(|op| op.is_read()).count();
        let writes = plan
            .iter()
            .filter(|op| matches!(op, Op::Write { .. }))
            .count();
        let commits = plan.iter().filter(|op| matches!(op, Op::Commit)).count();
        assert_eq!(reads + writes, 1000, "commits ride on top of requests");
        // 95% read mix: allow generous sampling noise around 950.
        assert!((900..=990).contains(&reads), "reads {reads}");
        // Every commit_every-th write forces a commit; the final partial
        // batch gets one more.
        assert!(commits >= writes / spec.commit_every as usize, "{commits}");
        // All sources and endpoints stay in range.
        for op in &plan {
            match op {
                Op::Read { source, .. } => assert!(*source < 50),
                Op::Write { u, v, .. } => {
                    assert!(*u < 50 && *v < 50);
                    assert_ne!(u, v, "self-loops are protocol-rejected");
                }
                Op::Commit => {}
            }
        }
        // A write-bearing plan always ends on a published epoch.
        if writes > 0 {
            assert_eq!(plan.last(), Some(&Op::Commit));
        }
    }

    #[test]
    fn fault_storm_outage_window_is_write_free_and_entered_committed() {
        let spec = parse_scenario("fault_storm,requests=1000,sources=40").unwrap();
        let plan = build_plan(&spec);
        assert_eq!(plan, build_plan(&spec), "plan must be reproducible");
        let from = (spec.outage_start * 1000.0).round() as u64;
        let to = ((spec.outage_start + spec.outage_len) * 1000.0).round() as u64;
        let mut req_idx = 0u64;
        let mut staged = 0u64;
        let mut checked_entry = false;
        for op in &plan {
            match op {
                Op::Commit => staged = 0,
                Op::Write { .. } => {
                    if !checked_entry && req_idx >= from {
                        assert_eq!(staged, 0, "staged writes survive into the window");
                        checked_entry = true;
                    }
                    assert!(
                        !(from..to).contains(&req_idx),
                        "write at request {req_idx} inside the outage window [{from}, {to})"
                    );
                    staged += 1;
                    req_idx += 1;
                }
                Op::Read { .. } => {
                    if !checked_entry && req_idx >= from {
                        assert_eq!(staged, 0, "staged writes survive into the window");
                        checked_entry = true;
                    }
                    req_idx += 1;
                }
            }
        }
        assert!(checked_entry, "the plan never reached the outage window");
        // Outside the window the 0.9 read mix still produces real writes.
        let writes = plan
            .iter()
            .filter(|op| matches!(op, Op::Write { .. }))
            .count();
        assert!(writes > 0, "fault_storm lost its write traffic entirely");
    }

    #[test]
    fn plan_lines_speak_the_protocol() {
        let read = Op::Read {
            source: 3,
            algo: Some(AlgorithmKind::MonteCarlo),
        };
        assert_eq!(
            read.to_line(10),
            format!("topk 3 10 {}", AlgorithmKind::MonteCarlo)
        );
        assert_eq!(
            Op::Read {
                source: 3,
                algo: None
            }
            .to_line(0),
            "query 3"
        );
        assert_eq!(
            Op::Write {
                insert: true,
                u: 1,
                v: 2
            }
            .to_line(10),
            "addedge 1 2"
        );
        assert_eq!(Op::Commit.to_line(10), "commit");
    }

    #[test]
    fn arrival_offsets_track_the_offered_rate() {
        let spec = parse_scenario("steady_read,rate=1000,requests=4000").unwrap();
        let offsets = arrival_offsets(&spec, 4000).unwrap();
        assert_eq!(offsets, arrival_offsets(&spec, 4000).unwrap());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
        // 4000 arrivals at 1000/s should span ~4s; exponential gaps are
        // noisy, so accept a wide band.
        let span = offsets.last().unwrap().as_secs_f64();
        assert!((3.0..5.0).contains(&span), "span {span}s");
        // Closed-loop specs have no timetable.
        let closed = parse_scenario("steady_read").unwrap();
        assert!(arrival_offsets(&closed, 100).is_none());
    }

    #[test]
    fn bursts_compress_their_window_of_the_timetable() {
        let spec =
            parse_scenario("steady_read,rate=1000,burst_factor=10,burst_period=100,burst_len=50")
                .unwrap();
        let offsets = arrival_offsets(&spec, 100).unwrap();
        // The first 50 arrivals run at 10x the base rate, so their span must
        // be far shorter than the second 50's.
        let burst_span = (offsets[49] - offsets[0]).as_secs_f64();
        let calm_span = (offsets[99] - offsets[50]).as_secs_f64();
        assert!(
            burst_span * 3.0 < calm_span,
            "burst {burst_span}s vs calm {calm_span}s"
        );
    }
}
