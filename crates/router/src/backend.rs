//! The [`ShardBackend`] abstraction: one shard the router can talk to.
//!
//! A backend answers one canonical protocol line with one JSON reply line —
//! exactly the contract of the wire protocol itself, which is what makes the
//! two implementations interchangeable:
//!
//! * [`LocalShard`] wraps an in-process [`SimRankService`] and executes the
//!   line through [`exactsim_service::protocol`], the same code path a
//!   remote server would run.
//! * [`RemoteShard`] holds one lazily-(re)connected [`LineClient`] to an
//!   **unmodified** `simrank-serve --listen` process. Connect and read
//!   deadlines bound every interaction, so a dead shard costs the router a
//!   typed [`ShardError::Unavailable`] — never a hang.

use std::sync::Mutex;
use std::time::Duration;

use exactsim_service::net::{flush_shutdown_snapshot, LineClient};
use exactsim_service::protocol::{self, Outcome};
use exactsim_service::{AlgorithmKind, SimRankService};

/// Why a shard could not answer a request.
#[derive(Clone, Debug)]
pub enum ShardError {
    /// The shard cannot be reached (connection refused, timed out, dropped
    /// mid-request). Surfaced to clients as the `shard_unavailable` code.
    Unavailable(String),
    /// The shard answered, but with something the gather cannot use (a
    /// non-protocol reply shape). Surfaced as an `internal` error.
    Malformed(String),
}

impl ShardError {
    /// Human-readable detail for the error reply.
    pub fn message(&self) -> &str {
        match self {
            ShardError::Unavailable(m) | ShardError::Malformed(m) => m,
        }
    }
}

/// One shard the router can scatter to. Implementations must be cheap to
/// call concurrently from the router's per-request fan-out threads.
pub trait ShardBackend: Send + Sync + 'static {
    /// Answers one canonical request line with one JSON reply line. Protocol
    /// rejections (`{"error", "code"}`) are `Ok` — they are answers; `Err`
    /// means the shard itself could not be asked.
    fn request(&self, line: &str) -> Result<String, ShardError>;

    /// Where this shard lives, for logs and the router's `stats` reply.
    fn describe(&self) -> String;

    /// Runs when the router drains. Local shards flush their durable
    /// snapshot; remote shards are left running — their own operator (or the
    /// CI harness) decides when each process stops.
    fn drain(&self);
}

/// An in-process shard: a full [`SimRankService`] replica owned by the
/// router process.
pub struct LocalShard {
    service: SimRankService,
}

impl LocalShard {
    /// Wraps a service as a shard backend.
    pub fn new(service: SimRankService) -> Self {
        LocalShard { service }
    }
}

impl ShardBackend for LocalShard {
    fn request(&self, line: &str) -> Result<String, ShardError> {
        // The router canonicalizes every line before scattering (explicit
        // algorithm on query verbs), so the default algorithm below is never
        // consulted — it only keeps the shared entry point total.
        match protocol::serve_line(&self.service, AlgorithmKind::ExactSim, line) {
            Some(Outcome::Reply(reply)) => Ok(reply),
            Some(other) => Err(ShardError::Malformed(format!(
                "local shard answered `{line}` with a non-reply outcome: {other:?}"
            ))),
            None => Err(ShardError::Malformed(format!(
                "local shard ignored the line `{line}`"
            ))),
        }
    }

    fn describe(&self) -> String {
        "local".to_string()
    }

    fn drain(&self) {
        flush_shutdown_snapshot(&self.service);
    }
}

/// A remote shard: one `simrank-serve --listen` process, spoken to over the
/// unmodified TCP line protocol.
pub struct RemoteShard {
    addr: String,
    connect_timeout: Duration,
    read_timeout: Duration,
    conn: Mutex<Option<LineClient>>,
}

impl RemoteShard {
    /// Default connect deadline.
    pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
    /// Default per-reply read deadline. Generous: a shard computing a cold
    /// column is slow but alive; only a genuinely wedged shard trips it.
    pub const READ_TIMEOUT: Duration = Duration::from_secs(60);

    /// A backend for the server at `addr` (e.g. `127.0.0.1:7878`) with the
    /// default deadlines. No connection is attempted until the first
    /// request.
    pub fn new(addr: impl Into<String>) -> Self {
        RemoteShard {
            addr: addr.into(),
            connect_timeout: Self::CONNECT_TIMEOUT,
            read_timeout: Self::READ_TIMEOUT,
            conn: Mutex::new(None),
        }
    }

    /// Overrides both deadlines (tests use tight ones).
    pub fn with_timeouts(mut self, connect: Duration, read: Duration) -> Self {
        self.connect_timeout = connect;
        self.read_timeout = read;
        self
    }

    fn connect(&self) -> Result<LineClient, ShardError> {
        LineClient::connect_with_timeout(
            self.addr.as_str(),
            self.connect_timeout,
            Some(self.read_timeout),
        )
        .map_err(|e| ShardError::Unavailable(format!("shard {}: {e}", self.addr)))
    }

    /// Verbs that mutate shard state. A failed round trip is ambiguous —
    /// the request may have been delivered and applied with only the reply
    /// lost — so these are attempted at most once per
    /// [`ShardBackend::request`] call: a silent re-send could double-apply
    /// (a `commit` whose reply was lost would run again as a second
    /// commit). Reads are idempotent against a published epoch and safe to
    /// re-ask; any retry policy beyond the single stale-socket reconnect
    /// lives in the router's breaker/failover layer, where it is
    /// observable.
    fn is_write(line: &str) -> bool {
        matches!(
            line.split_whitespace().next().unwrap_or(""),
            "addedge" | "deledge" | "addnode" | "commit" | "save" | "snapshot" | "shutdown"
        )
    }
}

impl ShardBackend for RemoteShard {
    fn request(&self, line: &str) -> Result<String, ShardError> {
        let mut guard = self.conn.lock().expect("remote shard lock poisoned");
        // A cached connection may be stale (the shard restarted between
        // requests); for idempotent reads, one reconnect-and-retry heals
        // that. A *fresh* connection failing is the shard being down — fail
        // typed, fast, and without retrying. Writes are never re-sent at
        // all: after a failed round trip on the stale socket there is no
        // telling whether the shard received (and applied) the request
        // before the connection died, and a silent re-send could
        // double-apply it — see [`RemoteShard::is_write`].
        let had_conn = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        let attempt = guard
            .as_mut()
            .expect("connection just established")
            .round_trip(line);
        match attempt {
            Ok(reply) => Ok(reply),
            Err(first) => {
                *guard = None;
                if !had_conn || Self::is_write(line) {
                    return Err(ShardError::Unavailable(format!(
                        "shard {}: {first}",
                        self.addr
                    )));
                }
                let mut fresh = self.connect()?;
                match fresh.round_trip(line) {
                    Ok(reply) => {
                        *guard = Some(fresh);
                        Ok(reply)
                    }
                    Err(second) => Err(ShardError::Unavailable(format!(
                        "shard {}: {second}",
                        self.addr
                    ))),
                }
            }
        }
    }

    fn describe(&self) -> String {
        self.addr.clone()
    }

    fn drain(&self) {
        // Drop the cached connection; the remote process outlives us.
        *self.conn.lock().expect("remote shard lock poisoned") = None;
    }
}
