//! `simrank-serve` — the [`exactsim_service::protocol`] server, on stdin or
//! on the network, fronting one service or a shard fan-out.
//!
//! ```text
//! simrank-serve [--dataset KEY | --ba N M] [--scale F] [--seed S]
//!               [--algo exactsim|prsim|mc] [--epsilon E]
//!               [--workers W] [--cache-capacity C] [--walk-budget B]
//!               [--data-dir DIR] [--paged] [--pool-pages N]
//!               [--shards N | --shard-of ADDR,ADDR,...]
//!               [--listen ADDR] [--max-conns N] [--addr-file PATH]
//!               [--log-json] [--slowlog-threshold-ms N]
//!               [--fault-spec SPEC]
//! ```
//!
//! Without `--listen`, the server is the original stdin/stdout REPL: one
//! request per stdin line, exactly one JSON object per stdout line
//! (`{"error": ..., "code": ...}` for a rejected request — the server never
//! panics on bad input). Startup banners and the human-oriented `help`
//! output go to stderr only.
//!
//! With `--listen ADDR` (e.g. `127.0.0.1:7878`, or port `0` for an
//! ephemeral port), the same protocol is served over TCP: an acceptor
//! thread spawns one handler thread per connection, bounded by a
//! `--max-conns` semaphore. The bound address is printed as a
//! `{"listening": ...}` JSON line on stdout (and to `--addr-file` when
//! given, which is how scripts find an ephemeral port). The server drains
//! gracefully on SIGTERM/SIGINT or on the `shutdown` protocol command from
//! any client: in-flight requests finish, and with `--data-dir` the WAL is
//! folded into a fresh snapshot before exit.
//!
//! ## Sharded serving
//!
//! `--shards N` boots an in-process [`exactsim_router::ShardRouter`] over N
//! full-replica [`exactsim_service::SimRankService`] shards (each with its
//! own cache, worker pool, and — under `--data-dir DIR` — its own
//! `DIR/shard-<i>` store). `--shard-of A,B,...` boots the same router over
//! *remote* shards: unmodified `simrank-serve --listen` processes at those
//! addresses, spoken to over the regular TCP protocol. Either way the
//! front-end (stdin or `--listen`) is unchanged; `query` routes to the
//! owning shard, `topk` is scatter/gathered bit-identically, and updates
//! commit under an epoch barrier (see `exactsim_router::router`). With
//! `--shard-of`, the graph/service flags are refused — the remote processes
//! own their graphs.
//!
//! Protocol commands (see `exactsim_service::protocol` for the grammar):
//!
//! ```text
//! query <node> [algo]      full single-source column (scores truncated to 32)
//! topk <node> <k> [algo]   top-k most similar nodes
//! shardtopk <node> <k> <shard> <num_shards> [algo]
//!                          one shard's owned-candidate top-k (router-facing)
//! addedge <u> <v>          stage the insertion of edge u -> v
//! deledge <u> <v>          stage the deletion of edge u -> v
//! addnode [count]          stage count (default 1) new isolated node ids
//! commit                   publish staged updates as a new graph epoch
//! epoch                    current epoch + pending update counts
//! save | snapshot          fold the WAL into a fresh snapshot file
//! stats                    serving counters as JSON (routers: fan-out,
//!                          barrier, per-shard breakdown)
//! metrics                  all series in Prometheus text format (multi-line,
//!                          terminated by a `# EOF` line)
//! slowlog [n]              newest n slow-query records (single service only)
//! trace <request>          per-stage tracing (single service only)
//! help                     this summary
//! quit                     close this session (server keeps running)
//! shutdown                 gracefully stop the whole server
//! ```
//!
//! Operational messages go through the [`exactsim_obs::log`] logger:
//! `--log-json` switches them from the traditional `simrank-serve: ...` text
//! lines to one JSON object per line on stderr.
//!
//! With `--data-dir DIR` the store is durable: every commit is WAL-logged
//! and fsynced before it is published, and on boot the server recovers the
//! newest valid snapshot plus the WAL — a restarted server answers
//! bit-identically to the pre-restart process at the same epoch. On the
//! first boot the directory is initialized from the graph flags; on later
//! boots the graph flags are ignored in favor of the recovered state.
//!
//! With `--paged` the store serves adjacency through the buffer-managed page
//! store instead of the in-memory CSR: the graph lives in a per-epoch page
//! file and only `--pool-pages` pages (default 4096, i.e. 16 MiB of 4 KiB
//! pages) are resident at once — graphs larger than RAM stay servable, at
//! page-fault cost visible in `stats` (`pool`) and the `simrank_pool_*`
//! series. Page files are rebuildable caches (snapshot + WAL stay the
//! durable truth); without `--data-dir` they live under the system temp
//! directory.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_obs::fault;
use exactsim_obs::log::{self as oplog, LogFormat};
use exactsim_router::{LocalShard, RemoteShard, ShardBackend, ShardRouter};
use exactsim_service::net::{self, signal, NetOptions, ProtocolHost};
use exactsim_service::protocol::Outcome;
use exactsim_service::{
    protocol, AlgorithmKind, GraphStore, Opened, PagedOptions, ServiceConfig, SimRankService,
    StoreError,
};

struct Options {
    dataset: Option<String>,
    ba: Option<(usize, usize)>,
    scale: f64,
    seed: u64,
    algo: AlgorithmKind,
    epsilon: f64,
    workers: usize,
    cache_capacity: usize,
    walk_budget: u64,
    data_dir: Option<PathBuf>,
    paged: bool,
    pool_pages: usize,
    shards: Option<usize>,
    shard_of: Option<Vec<String>>,
    listen: Option<String>,
    max_conns: usize,
    addr_file: Option<PathBuf>,
    log_json: bool,
    slowlog_threshold_ms: u64,
    fault_spec: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            dataset: None,
            ba: None,
            scale: 0.01,
            seed: 42,
            algo: AlgorithmKind::ExactSim,
            epsilon: 1e-2,
            workers: 0,
            cache_capacity: 1024,
            walk_budget: 2_000_000,
            data_dir: None,
            paged: false,
            pool_pages: 4096,
            shards: None,
            shard_of: None,
            listen: None,
            max_conns: 64,
            addr_file: None,
            log_json: false,
            slowlog_threshold_ms: 100,
            fault_spec: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    fn next_value(flag: &str, args: &mut dyn Iterator<Item = String>) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => opts.dataset = Some(next_value("--dataset", &mut args)?),
            "--ba" => {
                let n = next_value("--ba", &mut args)?;
                let m = next_value("--ba", &mut args)?;
                opts.ba = Some((
                    n.parse().map_err(|_| format!("bad node count `{n}`"))?,
                    m.parse().map_err(|_| format!("bad edges-per-node `{m}`"))?,
                ));
            }
            "--scale" => {
                let v = next_value("--scale", &mut args)?;
                opts.scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?;
            }
            "--seed" => {
                let v = next_value("--seed", &mut args)?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--algo" => {
                let v = next_value("--algo", &mut args)?;
                opts.algo = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--epsilon" => {
                let v = next_value("--epsilon", &mut args)?;
                opts.epsilon = v.parse().map_err(|_| format!("bad epsilon `{v}`"))?;
            }
            "--workers" => {
                let v = next_value("--workers", &mut args)?;
                opts.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--cache-capacity" => {
                let v = next_value("--cache-capacity", &mut args)?;
                opts.cache_capacity = v.parse().map_err(|_| format!("bad capacity `{v}`"))?;
            }
            "--walk-budget" => {
                let v = next_value("--walk-budget", &mut args)?;
                opts.walk_budget = v.parse().map_err(|_| format!("bad walk budget `{v}`"))?;
            }
            "--data-dir" => {
                opts.data_dir = Some(PathBuf::from(next_value("--data-dir", &mut args)?));
            }
            "--paged" => opts.paged = true,
            "--pool-pages" => {
                let v = next_value("--pool-pages", &mut args)?;
                opts.pool_pages = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| format!("bad pool size `{v}`"))?;
            }
            "--shards" => {
                let v = next_value("--shards", &mut args)?;
                opts.shards = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| format!("bad shard count `{v}`"))?,
                );
            }
            "--shard-of" => {
                let v = next_value("--shard-of", &mut args)?;
                let addrs: Vec<String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if addrs.is_empty() {
                    return Err("--shard-of needs at least one host:port".to_string());
                }
                opts.shard_of = Some(addrs);
            }
            "--listen" => opts.listen = Some(next_value("--listen", &mut args)?),
            "--max-conns" => {
                let v = next_value("--max-conns", &mut args)?;
                opts.max_conns = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| format!("bad max-conns `{v}`"))?;
            }
            "--addr-file" => {
                opts.addr_file = Some(PathBuf::from(next_value("--addr-file", &mut args)?));
            }
            "--log-json" => opts.log_json = true,
            "--fault-spec" => {
                opts.fault_spec = Some(next_value("--fault-spec", &mut args)?);
            }
            "--slowlog-threshold-ms" => {
                let v = next_value("--slowlog-threshold-ms", &mut args)?;
                opts.slowlog_threshold_ms =
                    v.parse().map_err(|_| format!("bad threshold `{v}`"))?;
            }
            "--help" | "-h" => {
                eprintln!("{}", help_text());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.dataset.is_some() && opts.ba.is_some() {
        return Err("--dataset and --ba are mutually exclusive".to_string());
    }
    if opts.addr_file.is_some() && opts.listen.is_none() {
        return Err("--addr-file only makes sense with --listen".to_string());
    }
    if opts.shards.is_some() && opts.shard_of.is_some() {
        return Err("--shards and --shard-of are mutually exclusive".to_string());
    }
    if opts.shard_of.is_some()
        && (opts.dataset.is_some() || opts.ba.is_some() || opts.data_dir.is_some() || opts.paged)
    {
        return Err(
            "--shard-of fronts remote servers; graph, --data-dir, and --paged flags belong to them"
                .to_string(),
        );
    }
    Ok(opts)
}

const FLAG_HELP: &str = "simrank-serve: SimRank query server (stdin REPL or TCP)\n\
  --dataset KEY        serve a Table 2 dataset stand-in (GQ, WV, ...)\n\
  --ba N M             serve a Barabasi-Albert graph with N nodes, M edges/node\n\
  --scale F            dataset scale factor (default 0.01)\n\
  --seed S             graph generation seed (default 42)\n\
  --algo A             default algorithm: exactsim | prsim | mc\n\
  --epsilon E          ExactSim/PRSim error target (default 1e-2)\n\
  --workers W          batch worker threads (0 = one per core)\n\
  --cache-capacity C   result cache entries (default 1024)\n\
  --walk-budget B      cap on ExactSim walk pairs per query (default 2000000;\n\
                       0 = unlimited / paper-exact — small epsilons need the\n\
                       cap lifted or the error target will not be met)\n\
  --data-dir DIR       durable store: recover DIR on boot (or initialize it\n\
                       from the graph flags), WAL-log every commit\n\
  --paged              serve adjacency through the buffer-managed page store\n\
                       (graphs larger than RAM; pool stats in `stats`/metrics)\n\
  --pool-pages N       buffer-pool capacity in 4 KiB pages (default 4096,\n\
                       i.e. 16 MiB resident); only meaningful with --paged\n\
  --shards N           front N in-process full-replica shards with a router:\n\
                       queries route by owner, topk is scatter/gathered\n\
                       bit-identically, commits run under an epoch barrier;\n\
                       with --data-dir, shard i persists in DIR/shard-i\n\
  --shard-of A,B,...   front *remote* shards at those addresses (unmodified\n\
                       simrank-serve --listen processes) with the same router\n\
  --listen ADDR        serve the protocol over TCP (e.g. 127.0.0.1:7878;\n\
                       port 0 picks an ephemeral port, reported on stdout)\n\
  --max-conns N        concurrent TCP connection bound (default 64)\n\
  --addr-file PATH     write the bound address to PATH once listening\n\
  --log-json           operational stderr messages as one JSON object/line\n\
  --slowlog-threshold-ms N  record queries at least N ms slow in the\n\
                       slowlog ring (default 100; 0 records every query)\n\
  --fault-spec SPEC    enable deterministic fault injection (testing only):\n\
                       `;`-separated SITE=TRIGGER[:N][:ACTION[:ARG]] rules,\n\
                       e.g. `wal.fsync=every:7:torn;page.read=prob:0.01`;\n\
                       the FAULT_SPEC env var is read when the flag is\n\
                       absent (see exactsim_obs::fault for the grammar)\n\
protocol:";

fn help_text() -> String {
    format!("{FLAG_HELP}\n{}", protocol::PROTOCOL_HELP)
}

/// The front-end the listener serves: one service, or a router over shards.
/// Both implement [`ProtocolHost`]; this enum only exists so the binary can
/// hold either and render mode-appropriate final stats.
enum Host {
    Single(SimRankService),
    Router(ShardRouter),
}

impl Host {
    fn stats_json(&self) -> String {
        match self {
            Host::Single(service) => service.stats().to_json(),
            Host::Router(router) => router.stats_json(),
        }
    }

    fn stats_human(&self) -> String {
        match self {
            Host::Single(service) => service.stats().to_string(),
            Host::Router(router) => router.stats_json(),
        }
    }
}

impl Clone for Host {
    fn clone(&self) -> Self {
        match self {
            Host::Single(s) => Host::Single(s.clone()),
            Host::Router(r) => Host::Router(r.clone()),
        }
    }
}

impl ProtocolHost for Host {
    fn serve_line(&self, default_algo: AlgorithmKind, line: &str) -> Option<Outcome> {
        match self {
            Host::Single(s) => s.serve_line(default_algo, line),
            Host::Router(r) => r.serve_line(default_algo, line),
        }
    }

    fn net_stats(&self) -> &exactsim_service::ServiceStats {
        match self {
            Host::Single(s) => s.net_stats(),
            Host::Router(r) => r.net_stats(),
        }
    }

    fn on_drain(&self) {
        match self {
            Host::Single(s) => s.on_drain(),
            Host::Router(r) => r.on_drain(),
        }
    }
}

/// With `--data-dir`, recovery takes precedence: a directory that already
/// holds a store restarts the server into its last committed epoch and the
/// graph flags are not consulted; a fresh (or missing) directory is
/// initialized from the flags. Without `--data-dir` the store is in-memory.
/// For in-process shards, each shard's directory is `DIR/shard-<i>`.
fn build_store(opts: &Options, dir: Option<&PathBuf>) -> Result<GraphStore, String> {
    let store = match dir {
        None => GraphStore::new(Arc::new(build_graph(opts)?)),
        Some(dir) => {
            let (store, how) = GraphStore::open_or_create(dir, || {
                build_graph(opts)
                    .map(Arc::new)
                    .map_err(StoreError::InitFailed)
            })
            .map_err(|e| match e {
                StoreError::InitFailed(msg) => msg,
                e => format!("cannot recover {}: {e}", dir.display()),
            })?;
            match how {
                Opened::Recovered => oplog::info(
                    "simrank-serve",
                    "recovered durable store",
                    &[
                        ("data_dir", dir.display().to_string().into()),
                        ("epoch", store.epoch().into()),
                        (
                            "wal_records",
                            store.durability().map_or(0, |info| info.wal_records).into(),
                        ),
                    ],
                ),
                Opened::Created => oplog::info(
                    "simrank-serve",
                    "initialized durable store",
                    &[("data_dir", dir.display().to_string().into())],
                ),
            }
            store
        }
    };
    if !opts.paged {
        return Ok(store);
    }
    // Page files are rebuildable caches, so an in-memory store may keep them
    // in the system temp directory (unique per store: in-process shards each
    // build their own). A durable store keeps them next to its truth.
    let pages_dir = match dir {
        Some(dir) => dir.join("pages"),
        None => {
            static NEXT_PAGES_DIR: std::sync::atomic::AtomicUsize =
                std::sync::atomic::AtomicUsize::new(0);
            std::env::temp_dir().join(format!(
                "simrank-pages-{}-{}",
                std::process::id(),
                NEXT_PAGES_DIR.fetch_add(1, Ordering::Relaxed)
            ))
        }
    };
    let store = store
        .with_paging(
            &pages_dir,
            PagedOptions {
                pool_pages: opts.pool_pages,
                ..PagedOptions::default()
            },
        )
        .map_err(|e| format!("cannot enable paging in {}: {e}", pages_dir.display()))?;
    oplog::info(
        "simrank-serve",
        "paged backend enabled",
        &[
            ("pages_dir", pages_dir.display().to_string().into()),
            ("pool_pages", opts.pool_pages.into()),
        ],
    );
    Ok(store)
}

fn build_graph(opts: &Options) -> Result<DiGraph, String> {
    if let Some((n, m)) = opts.ba {
        return barabasi_albert(n, m, true, opts.seed).map_err(|e| e.to_string());
    }
    let key = opts.dataset.as_deref().unwrap_or("GQ");
    let spec =
        exactsim_datasets::dataset_by_key(key).ok_or_else(|| format!("unknown dataset `{key}`"))?;
    let generated = spec
        .generate_scaled(opts.scale)
        .map_err(|e| e.to_string())?;
    Ok(generated.graph)
}

fn service_config(opts: &Options) -> ServiceConfig {
    ServiceConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        slowlog_threshold: Duration::from_millis(opts.slowlog_threshold_ms),
        exactsim: ExactSimConfig {
            epsilon: opts.epsilon,
            // The budget keeps interactive latency bounded but caps accuracy:
            // below the epsilon the budget can satisfy, walk allocations are
            // scaled down proportionally (see ExactSim::apply_budget). 0 lifts
            // the cap and serves the paper-exact sample counts.
            walk_budget: (opts.walk_budget > 0).then_some(opts.walk_budget),
            ..ExactSimConfig::default()
        },
        prsim: exactsim::prsim::PrSimConfig {
            epsilon: opts.epsilon,
            ..Default::default()
        },
        ..ServiceConfig::default()
    }
}

fn build_service(opts: &Options, dir: Option<&PathBuf>) -> Result<SimRankService, String> {
    let store = build_store(opts, dir)?;
    SimRankService::with_store(Arc::new(store), service_config(opts)).map_err(|e| e.to_string())
}

/// Boots the requested front-end: a plain service, a router over N
/// in-process replicas, or a router over remote shards.
fn build_host(opts: &Options) -> Result<Host, String> {
    if let Some(addrs) = &opts.shard_of {
        let backends: Vec<Box<dyn ShardBackend>> = addrs
            .iter()
            .map(|addr| Box::new(RemoteShard::new(addr.clone())) as Box<dyn ShardBackend>)
            .collect();
        let router = ShardRouter::new(backends)?;
        router.start_health_probes();
        oplog::info(
            "simrank-serve",
            "routing over remote shards",
            &[
                ("shards", addrs.len().into()),
                ("addrs", addrs.join(",").into()),
                ("epoch", router.epoch().into()),
            ],
        );
        return Ok(Host::Router(router));
    }
    if let Some(n) = opts.shards {
        let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(n);
        for i in 0..n {
            let dir = opts.data_dir.as_ref().map(|d| d.join(format!("shard-{i}")));
            let service =
                build_service(opts, dir.as_ref()).map_err(|msg| format!("shard {i}: {msg}"))?;
            backends.push(Box::new(LocalShard::new(service)));
        }
        let router = ShardRouter::new(backends)?;
        router.start_health_probes();
        oplog::info(
            "simrank-serve",
            "routing over in-process shards",
            &[("shards", n.into()), ("epoch", router.epoch().into())],
        );
        return Ok(Host::Router(router));
    }
    let service = build_service(opts, opts.data_dir.as_ref())?;
    oplog::info(
        "simrank-serve",
        "ready (type `help`)",
        &[
            ("nodes", service.graph().num_nodes().into()),
            ("edges", service.graph().num_edges().into()),
            ("workers", service.workers().into()),
        ],
    );
    Ok(Host::Single(service))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("simrank-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.log_json {
        oplog::set_format(LogFormat::Json);
    }
    // Fault injection arms before any store/network code runs, so recovery
    // at boot is faultable too. The flag wins over the FAULT_SPEC env var.
    let armed = match &opts.fault_spec {
        Some(spec) => fault::configure(spec),
        None => fault::configure_from_env(),
    };
    if let Err(msg) = armed {
        oplog::error("simrank-serve", &format!("bad fault spec: {msg}"), &[]);
        return ExitCode::FAILURE;
    }
    if fault::enabled() {
        oplog::warn(
            "simrank-serve",
            "deterministic fault injection is ENABLED (testing mode)",
            &[],
        );
    }
    let host = match build_host(&opts) {
        Ok(host) => host,
        Err(msg) => {
            oplog::error("simrank-serve", &msg, &[]);
            return ExitCode::FAILURE;
        }
    };
    oplog::info(
        "simrank-serve",
        "serving",
        &[("default_algo", opts.algo.to_string().into())],
    );

    let code = match &opts.listen {
        Some(addr) => serve_tcp(&host, addr, &opts),
        None => serve_stdin(&host, &opts),
    };
    // The final counters: the human block in text mode, one structured event
    // in JSON mode (so a `--log-json` stderr stream stays machine-parseable).
    match oplog::format() {
        LogFormat::Json => oplog::info(
            "simrank-serve",
            "final stats",
            &[("stats", host.stats_json().into())],
        ),
        LogFormat::Text => eprintln!("--- final stats ---\n{}", host.stats_human()),
    }
    code
}

/// The original stdin/stdout REPL. `help` goes to stderr (stdout stays pure
/// JSON); `shutdown` behaves like `quit` plus the host's drain (snapshot
/// flush on a durable service, shard drain fan-out on a router), mirroring
/// the TCP path.
fn serve_stdin(host: &Host, opts: &Options) -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let mut out = stdout.lock();
        match host.serve_line(opts.algo, line.trim()) {
            None => {}
            Some(Outcome::Reply(reply)) => {
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
            }
            Some(Outcome::Text(payload)) => {
                // Multi-line payload (the `metrics` exposition), already
                // newline-terminated and ending with a `# EOF` line.
                let _ = out.write_all(payload.as_bytes());
                let _ = out.flush();
            }
            Some(Outcome::Help(_)) => eprintln!("{}", help_text()),
            Some(Outcome::Quit) => break,
            Some(Outcome::Shutdown(reply)) => {
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
                host.on_drain();
                break;
            }
        }
    }
    ExitCode::SUCCESS
}

/// TCP mode: bind, report the address, then babysit the listener until a
/// signal or a remote `shutdown` command asks for the drain.
fn serve_tcp(host: &Host, addr: &str, opts: &Options) -> ExitCode {
    let handle = match net::serve(
        host.clone(),
        addr,
        NetOptions {
            max_conns: opts.max_conns,
            default_algo: opts.algo,
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            oplog::error(
                "simrank-serve",
                "cannot listen",
                &[
                    ("addr", addr.to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
            return ExitCode::FAILURE;
        }
    };
    let bound = handle.local_addr();
    println!("{{\"listening\":\"{bound}\"}}");
    let _ = std::io::stdout().flush();
    if let Some(path) = &opts.addr_file {
        if let Err(e) = std::fs::write(path, format!("{bound}\n")) {
            oplog::error(
                "simrank-serve",
                "cannot write addr file",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
            handle.request_shutdown();
            handle.join();
            return ExitCode::FAILURE;
        }
    }
    oplog::info(
        "simrank-serve",
        "listening",
        &[
            ("addr", bound.to_string().into()),
            ("max_conns", opts.max_conns.into()),
        ],
    );

    let signalled = signal::install();
    loop {
        if signalled.load(Ordering::SeqCst) {
            oplog::info("simrank-serve", "signal received, draining", &[]);
            handle.request_shutdown();
            break;
        }
        if handle.shutdown_requested() {
            oplog::info("simrank-serve", "shutdown command received, draining", &[]);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // join() drains handlers and runs the host's drain hook (snapshot flush
    // on a durable service; shard drain fan-out on a router).
    handle.join();
    ExitCode::SUCCESS
}
