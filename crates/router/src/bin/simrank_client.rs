//! `simrank-client` — TCP client for a `simrank-serve --listen` server:
//! an operator REPL, a uniform load generator, and a workload-scenario
//! driver in one binary.
//!
//! ```text
//! simrank-client --connect ADDR                          # REPL (default)
//! simrank-client --connect ADDR --bench N --conns C
//!                [--sources R] [--topk K] [--algo A]
//!                [--out PATH] [--shutdown]
//! simrank-client --connect ADDR --scenario SPEC
//!                [--out PATH] [--baseline PATH] [--max-regression F]
//!                [--shutdown]
//! ```
//!
//! **REPL mode** forwards each stdin line to the server and prints the
//! one-line JSON reply — the same grammar as the server's own stdin REPL
//! (`help` comes back as a `{"help": ...}` object over TCP). The one
//! multi-line reply, `metrics`, is read up to its `# EOF` terminator line
//! and printed verbatim.
//!
//! **Bench mode** (`--bench N --conns C`) drives `N` requests over `C`
//! concurrent sockets: each connection issues `topk <source> <K>` (or full
//! `query` when `--topk 0`) round-robin over `R` distinct sources, measures
//! client-observed latency per request, and prints one JSON object with
//! `queries_per_sec`, `p50_us`/`p99_us` (same fixed-bucket histogram as the
//! server, see `exactsim_service::stats`), the error count, and the
//! server's own `stats` reply embedded as `server_stats`, and a final
//! Prometheus `metrics` scrape embedded (JSON-escaped) as `metrics_scrape` —
//! schema-compatible with `BENCH_serving.json` so CI can upload it alongside
//! (`BENCH_tcp.json`). The process exits nonzero unless every request
//! succeeded and throughput is nonzero, which is what makes it a CI gate.
//!
//! When the server turns out to be a **router** (`--shards` / `--shard-of`;
//! detected from the `per_shard` breakdown in its `stats` reply), the bench
//! JSON additionally embeds a `router` object: shard count, the `topk`
//! fan-out total, mixed-epoch retries, the barrier-wait p99, and per-shard
//! qps computed from the pre/post-bench per-shard request deltas — which is
//! what CI uploads as `BENCH_router.json`.
//!
//! **Scenario mode** (`--scenario SPEC`) replaces the uniform hammer with a
//! workload model from [`exactsim_router::scenario`]: `SPEC` is a built-in
//! scenario name plus `key=value` overrides (e.g.
//! `read_mostly,requests=2000,zipf=1.5`) combining Zipfian source
//! popularity, a read/write mix with periodic commits, a weighted algorithm
//! mix, and optionally an open-loop Poisson arrival schedule with burst
//! phases. The plan is expanded deterministically from the scenario seed,
//! reads fan out over the scenario's connections while writes and commits
//! stay ordered on the first, and open-loop latency is measured from each
//! request's *scheduled* arrival time so queueing delay under overload is
//! not coordination-masked. The result is one JSON object (written to
//! `--out`, conventionally `BENCH_scenarios.json`) with `qps`,
//! `p50_us`/`p99_us`/`p999_us`, the read/write/commit counts, the shed
//! count and `shed_rate` (capacity-coded replies plus the server's
//! `connections_rejected` delta over the run), the server's `stats` reply,
//! and — against a router — the `router` breakdown including the
//! `mixed_epoch_retries` delta the commit traffic produced. `--baseline
//! PATH` compares the measured qps against a previous artifact's and fails
//! the run when it drops below `baseline / --max-regression` (default 4.0,
//! a deliberately generous noise floor for shared CI runners).
//!
//! `--shutdown` sends the `shutdown` command after the bench (or REPL EOF),
//! asking the server to drain gracefully — CI uses it to assert a clean
//! server exit.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use exactsim_obs::json::escape_json;
use exactsim_obs::metrics::Histogram as LatencyHistogram;
use exactsim_router::scenario::{self, arrival_offsets, build_plan, parse_scenario, Op};
use exactsim_service::net::LineClient;
use exactsim_service::AlgorithmKind;

struct Options {
    connect: String,
    bench: Option<u64>,
    scenario: Option<String>,
    conns: usize,
    sources: u32,
    topk: usize,
    algo: Option<AlgorithmKind>,
    out: Option<String>,
    baseline: Option<String>,
    max_regression: f64,
    shutdown: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            connect: String::new(),
            bench: None,
            scenario: None,
            conns: 4,
            sources: 25,
            topk: 10,
            algo: None,
            out: None,
            baseline: None,
            max_regression: 4.0,
            shutdown: false,
        }
    }
}

const HELP: &str = "simrank-client: TCP client / load generator for simrank-serve --listen\n\
  --connect ADDR   server address, e.g. 127.0.0.1:7878 (required)\n\
  --bench N        bench mode: drive N requests and print qps/p50/p99 JSON\n\
  --scenario SPEC  scenario mode: drive a named workload model, e.g.\n\
                   read_mostly,requests=2000,zipf=1.5 (see `--scenario help`)\n\
  --conns C        concurrent sockets in bench mode (default 4)\n\
  --sources R      round-robin over R distinct source nodes (default 25)\n\
  --topk K         issue `topk <src> K` requests; 0 = full `query` (default 10)\n\
  --algo A         explicit algorithm per request (default: server default)\n\
  --out PATH       also write the bench/scenario JSON to PATH\n\
  --baseline PATH  scenario mode: gate qps against a previous artifact\n\
  --max-regression F  baseline noise floor: fail below baseline/F (default 4)\n\
  --shutdown       send `shutdown` when done (graceful server drain)\n\
against a router (--shards / --shard-of) the bench/scenario JSON embeds a\n\
`router` object with per-shard qps, fan-out, and mixed-epoch retries\n\
without --bench/--scenario: REPL — forward stdin lines, print reply lines";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    fn next_value(flag: &str, args: &mut dyn Iterator<Item = String>) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => opts.connect = next_value("--connect", &mut args)?,
            "--bench" => {
                let v = next_value("--bench", &mut args)?;
                let n = v.parse().map_err(|_| format!("bad request count `{v}`"))?;
                if n == 0 {
                    return Err("--bench needs at least 1 request".into());
                }
                opts.bench = Some(n);
            }
            "--conns" => {
                let v = next_value("--conns", &mut args)?;
                opts.conns = v
                    .parse()
                    .ok()
                    .filter(|&c: &usize| c > 0)
                    .ok_or_else(|| format!("bad connection count `{v}`"))?;
            }
            "--sources" => {
                let v = next_value("--sources", &mut args)?;
                opts.sources = v
                    .parse()
                    .ok()
                    .filter(|&r: &u32| r > 0)
                    .ok_or_else(|| format!("bad source count `{v}`"))?;
            }
            "--topk" => {
                let v = next_value("--topk", &mut args)?;
                opts.topk = v.parse().map_err(|_| format!("bad k `{v}`"))?;
            }
            "--algo" => {
                let v = next_value("--algo", &mut args)?;
                opts.algo = Some(v.parse().map_err(|e| format!("{e}"))?);
            }
            "--scenario" => {
                let v = next_value("--scenario", &mut args)?;
                if v == "help" || v == "list" {
                    eprintln!(
                        "built-in scenarios: {}\noverride keys: requests, conns, sources, \
                         topk, zipf, read_mix, rate, burst_factor, burst_period, burst_len, \
                         commit_every, seed, algos (kind:weight/kind:weight), \
                         outage_start, outage_len (fractions of the plan; the window \
                         is read-only and entered on a forced commit)",
                        scenario::builtin_names().join(", ")
                    );
                    std::process::exit(0);
                }
                opts.scenario = Some(v);
            }
            "--out" => opts.out = Some(next_value("--out", &mut args)?),
            "--baseline" => opts.baseline = Some(next_value("--baseline", &mut args)?),
            "--max-regression" => {
                let v = next_value("--max-regression", &mut args)?;
                opts.max_regression = v
                    .parse()
                    .ok()
                    .filter(|f: &f64| *f >= 1.0 && f.is_finite())
                    .ok_or_else(|| format!("bad regression factor `{v}` (need >= 1)"))?;
            }
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => {
                eprintln!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if opts.connect.is_empty() {
        return Err("--connect <addr> is required".into());
    }
    if opts.bench.is_some() && opts.scenario.is_some() {
        return Err("--bench and --scenario are mutually exclusive".into());
    }
    Ok(opts)
}

fn connect(addr: &str) -> Result<LineClient, String> {
    LineClient::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))
}

/// The unsigned integer value of the first `"field":123` in `json` (the
/// protocol's stats replies are flat enough for a scan).
fn u64_field(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The float value of the first `"field":1.25` in `json` (used to read the
/// headline qps back out of a baseline scenario artifact).
fn f64_field(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `"requests":` counter of each entry in a router stats reply's
/// `per_shard` array, in shard order. Empty when the reply has no breakdown
/// (a plain single-process server).
fn per_shard_requests(stats: &str) -> Vec<u64> {
    let Some(start) = stats.find("\"per_shard\":[") else {
        return Vec::new();
    };
    let body = &stats[start..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    body[..end]
        .match_indices("\"requests\":")
        .filter_map(|(at, needle)| u64_field(&body[at..at + needle.len() + 24], "requests"))
        .collect()
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("simrank-client: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match (&opts.bench, &opts.scenario) {
        (Some(n), _) => bench(&opts, *n),
        (None, Some(spec)) => run_scenario(&opts, &spec.clone()),
        (None, None) => repl(&opts),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("simrank-client: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Interactive mode: forward stdin lines, print replies.
fn repl(opts: &Options) -> Result<ExitCode, String> {
    let mut session = connect(&opts.connect)?;
    eprintln!(
        "simrank-client: connected to {} (type `help`)",
        opts.connect
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue; // the server sends no reply for these
        }
        // Only a *bare* quit/exit ends the session without a reply — a line
        // like `quit extra` is a rejected request the server answers.
        if matches!(trimmed, "quit" | "exit") {
            let _ = session.send(trimmed);
            return Ok(ExitCode::SUCCESS);
        }
        // The one multi-line reply: a Prometheus scrape framed by `# EOF`.
        if trimmed == "metrics" {
            let payload = session
                .round_trip_multi("metrics", "# EOF")
                .map_err(|e| format!("metrics: {e}"))?;
            print!("{payload}");
            continue;
        }
        let reply = session
            .round_trip(trimmed)
            .map_err(|e| format!("{trimmed}: {e}"))?;
        println!("{reply}");
        // Exit only when the drain was actually accepted; a rejected
        // `shutdown now` leaves the server running, so keep the session.
        if trimmed == "shutdown" && !reply.contains("\"error\"") {
            return Ok(ExitCode::SUCCESS);
        }
    }
    if opts.shutdown {
        let reply = session
            .round_trip("shutdown")
            .map_err(|e| format!("shutdown: {e}"))?;
        println!("{reply}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Load-generator mode: `n` requests spread over `opts.conns` sockets.
fn bench(opts: &Options, n: u64) -> Result<ExitCode, String> {
    let conns = opts.conns.min(n as usize).max(1);
    let histogram = Arc::new(LatencyHistogram::default());
    let errors = Arc::new(AtomicU64::new(0));
    let algo_suffix = opts.algo.map(|a| format!(" {a}")).unwrap_or_default();

    // Connect every socket before starting the clock: the bench measures
    // serving, not connection setup, and a refused socket fails fast here.
    let mut sessions = Vec::with_capacity(conns);
    for _ in 0..conns {
        sessions.push(connect(&opts.connect)?);
    }
    // A pre-bench stats snapshot: against a router, the per-shard request
    // deltas across the bench window are what per-shard qps is computed
    // from. (One extra request on the first socket; not timed.)
    let pre_stats = sessions[0]
        .round_trip("stats")
        .map_err(|e| format!("stats: {e}"))?;

    let started = Instant::now();
    let threads: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(t, mut session)| {
            // Split the N requests over the sockets; the first few sockets
            // absorb the remainder so exactly N requests go out in total.
            let share = n / conns as u64 + u64::from((t as u64) < n % conns as u64);
            let histogram = Arc::clone(&histogram);
            let errors = Arc::clone(&errors);
            let sources = opts.sources;
            let topk = opts.topk;
            let algo_suffix = algo_suffix.clone();
            std::thread::spawn(move || {
                for i in 0..share {
                    let source = (t as u64 + i * conns as u64) % u64::from(sources);
                    let request = if topk > 0 {
                        format!("topk {source} {topk}{algo_suffix}")
                    } else {
                        format!("query {source}{algo_suffix}")
                    };
                    let sent = Instant::now();
                    match session.round_trip(&request) {
                        Ok(reply) if !reply.contains("\"error\"") => {
                            histogram.record(sent.elapsed());
                        }
                        Ok(reply) => {
                            eprintln!("simrank-client: request `{request}` failed: {reply}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("simrank-client: {request}: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                // Hand the still-open session back: the tail requests below
                // reuse it, so they cannot be load-shed the way a *fresh*
                // connection could while the server is at --max-conns
                // (handlers release their permits one read-poll tick after
                // the bench sockets close).
                Some(session)
            })
        })
        .collect();
    let mut survivors: Vec<LineClient> = Vec::new();
    for thread in threads {
        if let Ok(Some(session)) = thread.join() {
            survivors.push(session);
        }
    }
    let elapsed = started.elapsed();

    // Server-side view (and the shutdown) over a surviving bench session.
    let mut tail = survivors
        .into_iter()
        .next()
        .ok_or("every bench connection died; no session left for stats")?;
    let server_stats = tail
        .round_trip("stats")
        .map_err(|e| format!("stats: {e}"))?;
    if server_stats.contains("\"error\"") || !server_stats.contains("\"queries\"") {
        return Err(format!("unexpected stats reply: {server_stats}"));
    }
    // A final Prometheus scrape rides along in the bench artifact, so a CI
    // run's bench JSON carries the complete post-load series state. What the
    // scrape must contain depends on who answered: a single service counts
    // simrank_queries_total; a router counts its fan-out instead.
    let routed = server_stats.contains("\"per_shard\"");
    let metrics_scrape = tail
        .round_trip_multi("metrics", "# EOF")
        .map_err(|e| format!("metrics: {e}"))?;
    let expected_series = if routed {
        "simrank_router_fanout_total"
    } else {
        "simrank_queries_total"
    };
    if !metrics_scrape.contains(expected_series) {
        return Err(format!(
            "unexpected metrics reply (no {expected_series}): {}",
            metrics_scrape.lines().next().unwrap_or("")
        ));
    }
    let shutdown_reply = if opts.shutdown {
        Some(
            tail.round_trip("shutdown")
                .map_err(|e| format!("shutdown: {e}"))?,
        )
    } else {
        None
    };

    let completed = histogram.count();
    let errored = errors.load(Ordering::Relaxed);
    let qps = completed as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
    let us = |d: Option<Duration>| d.map_or("null".to_string(), |d| d.as_micros().to_string());
    // The router breakdown (satellite of the sharded serving tier): shard
    // count, topk fan-out, barrier p99, and per-shard qps over the bench
    // window from the pre/post request-counter deltas.
    let router_json = if routed {
        let before = per_shard_requests(&pre_stats);
        let after = per_shard_requests(&server_stats);
        let per_shard_qps: Vec<String> = after
            .iter()
            .enumerate()
            .map(|(i, &post)| {
                let delta = post.saturating_sub(before.get(i).copied().unwrap_or(0));
                format!(
                    "{:.1}",
                    delta as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
                )
            })
            .collect();
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
        format!(
            concat!(
                "{{\"shards\":{},\"fanout_topk\":{},\"mixed_epoch_retries\":{},",
                "\"barrier_wait_p99_us\":{},\"per_shard_qps\":[{}]}}"
            ),
            opt(u64_field(&server_stats, "shards")),
            opt(u64_field(&server_stats, "topk")),
            opt(u64_field(&server_stats, "mixed_epoch_retries")),
            opt(u64_field(&server_stats, "barrier_wait_p99_us")),
            per_shard_qps.join(","),
        )
    } else {
        "null".to_string()
    };
    let json = format!(
        concat!(
            "{{\"bench\":\"tcp_serving\",\"schema_version\":2,",
            "\"addr\":\"{}\",\"requests\":{},\"completed\":{},\"conns\":{},",
            "\"sources\":{},\"topk\":{},",
            "\"elapsed_ms\":{:.3},\"queries_per_sec\":{:.1},",
            "\"p50_us\":{},\"p99_us\":{},\"errors\":{},",
            "\"router\":{},",
            "\"server_stats\":{},\"metrics_scrape\":\"{}\"}}"
        ),
        escape_json(&opts.connect),
        n,
        completed,
        conns,
        opts.sources,
        opts.topk,
        elapsed.as_secs_f64() * 1e3,
        qps,
        us(histogram.quantile(0.50)),
        us(histogram.quantile(0.99)),
        errored,
        router_json,
        server_stats,
        escape_json(&metrics_scrape),
    );
    println!("{json}");
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("simrank-client: wrote {path}");
    }
    if let Some(reply) = shutdown_reply {
        eprintln!("simrank-client: server drain acknowledged: {reply}");
    }

    // The CI gate: every request answered, nonzero throughput.
    if errored > 0 || completed != n {
        eprintln!("simrank-client: {errored} errors, {completed}/{n} completed");
        return Ok(ExitCode::FAILURE);
    }
    if qps <= 0.0 {
        eprintln!("simrank-client: zero throughput");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Scenario mode: expand `spec` into its deterministic plan and drive it.
///
/// Reads round-robin over the scenario's connections; writes and commits
/// stay in plan order on the first connection, so a commit can never
/// overtake the writes it publishes. Open-loop plans additionally carry an
/// arrival timetable: each operation waits for its scheduled send time and
/// its latency is measured *from that schedule*, so a server that falls
/// behind shows the queueing delay instead of silently stretching the
/// request stream (coordinated omission).
fn run_scenario(opts: &Options, raw_spec: &str) -> Result<ExitCode, String> {
    let spec = parse_scenario(raw_spec)?;
    let plan = build_plan(&spec);
    let offsets = arrival_offsets(&spec, plan.len());
    let reads = plan.iter().filter(|op| op.is_read()).count() as u64;
    let writes = plan
        .iter()
        .filter(|op| matches!(op, Op::Write { .. }))
        .count() as u64;
    let commits = plan.iter().filter(|op| matches!(op, Op::Commit)).count() as u64;
    let conns = spec.conns.min(plan.len()).max(1);
    eprintln!(
        "simrank-client: scenario `{}`: {} ops ({reads} reads, {writes} writes, \
         {commits} commits) over {conns} conns{}",
        spec.name,
        plan.len(),
        match spec.rate {
            Some(rate) => format!(", open-loop at {rate}/s"),
            None => ", closed-loop".to_string(),
        }
    );

    // Partition: reads round-robin over all conns, writes/commits in plan
    // order on conn 0. Each item keeps its global plan index so open-loop
    // scheduling stays a single global timetable.
    let mut per_conn: Vec<Vec<(usize, String)>> = vec![Vec::new(); conns];
    let mut next_read_conn = 0usize;
    for (i, op) in plan.iter().enumerate() {
        let conn = if op.is_read() {
            next_read_conn = (next_read_conn + 1) % conns;
            next_read_conn
        } else {
            0
        };
        per_conn[conn].push((i, op.to_line(spec.topk)));
    }

    // Connect every socket before starting the clock, as in bench mode.
    let mut sessions = Vec::with_capacity(conns);
    for _ in 0..conns {
        sessions.push(connect(&opts.connect)?);
    }
    let pre_stats = sessions[0]
        .round_trip("stats")
        .map_err(|e| format!("stats: {e}"))?;

    let histogram = Arc::new(LatencyHistogram::default());
    let errors = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let offsets = offsets.map(Arc::new);
    let started = Instant::now();
    let threads: Vec<_> = sessions
        .into_iter()
        .zip(per_conn)
        .map(|(mut session, ops)| {
            let histogram = Arc::clone(&histogram);
            let errors = Arc::clone(&errors);
            let shed = Arc::clone(&shed);
            let offsets = offsets.clone();
            std::thread::spawn(move || {
                for (global, line) in ops {
                    // Open loop: wait for the scheduled arrival, then measure
                    // from the schedule. Closed loop: measure from the send.
                    let measure_from = match offsets.as_deref() {
                        Some(offsets) => {
                            let scheduled = offsets[global];
                            if let Some(wait) = scheduled.checked_sub(started.elapsed()) {
                                std::thread::sleep(wait);
                            }
                            scheduled
                        }
                        None => started.elapsed(),
                    };
                    match session.round_trip(&line) {
                        Ok(reply) if !reply.contains("\"error\"") => {
                            histogram.record(started.elapsed().saturating_sub(measure_from));
                        }
                        Ok(reply) if reply.contains("\"code\":\"capacity\"") => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(reply) => {
                            eprintln!("simrank-client: `{line}` failed: {reply}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("simrank-client: {line}: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                Some(session)
            })
        })
        .collect();
    let mut survivors: Vec<LineClient> = Vec::new();
    for thread in threads {
        if let Ok(Some(session)) = thread.join() {
            survivors.push(session);
        }
    }
    let elapsed = started.elapsed();

    let mut tail = survivors
        .into_iter()
        .next()
        .ok_or("every scenario connection died; no session left for stats")?;
    let server_stats = tail
        .round_trip("stats")
        .map_err(|e| format!("stats: {e}"))?;
    if server_stats.contains("\"error\"") {
        return Err(format!("unexpected stats reply: {server_stats}"));
    }
    let shutdown_reply = if opts.shutdown {
        Some(
            tail.round_trip("shutdown")
                .map_err(|e| format!("shutdown: {e}"))?,
        )
    } else {
        None
    };

    // Shed = capacity-coded replies on live sessions plus fresh connections
    // the server's accept loop turned away during the run.
    let rejected_delta = u64_field(&server_stats, "connections_rejected")
        .unwrap_or(0)
        .saturating_sub(u64_field(&pre_stats, "connections_rejected").unwrap_or(0));
    let shed = shed.load(Ordering::Relaxed) + rejected_delta;
    let completed = histogram.count();
    let errored = errors.load(Ordering::Relaxed);
    let qps = completed as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
    let shed_rate = shed as f64 / (completed + shed).max(1) as f64;
    let us = |d: Option<Duration>| d.map_or("null".to_string(), |d| d.as_micros().to_string());
    let opt_u64 = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());

    let routed = server_stats.contains("\"per_shard\"");
    // Commits under read load are what drive the router's mixed-epoch retry
    // path, so the scenario artifact reports the delta over the run.
    let retries_delta = routed.then(|| {
        u64_field(&server_stats, "mixed_epoch_retries")
            .unwrap_or(0)
            .saturating_sub(u64_field(&pre_stats, "mixed_epoch_retries").unwrap_or(0))
    });
    let router_json = if routed {
        let before = per_shard_requests(&pre_stats);
        let after = per_shard_requests(&server_stats);
        let per_shard_qps: Vec<String> = after
            .iter()
            .enumerate()
            .map(|(i, &post)| {
                let delta = post.saturating_sub(before.get(i).copied().unwrap_or(0));
                format!(
                    "{:.1}",
                    delta as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"shards\":{},\"fanout_topk\":{},\"mixed_epoch_retries\":{},",
                "\"per_shard_qps\":[{}]}}"
            ),
            opt_u64(u64_field(&server_stats, "shards")),
            opt_u64(u64_field(&server_stats, "topk")),
            opt_u64(u64_field(&server_stats, "mixed_epoch_retries")),
            per_shard_qps.join(","),
        )
    } else {
        "null".to_string()
    };

    let json = format!(
        concat!(
            "{{\"bench\":\"scenario\",\"schema_version\":1,",
            "\"scenario\":\"{}\",\"spec\":\"{}\",\"addr\":\"{}\",",
            "\"plan_ops\":{},\"reads\":{},\"writes\":{},\"commits\":{},",
            "\"completed\":{},\"errors\":{},\"shed\":{},\"shed_rate\":{:.4},",
            "\"conns\":{},\"sources\":{},\"topk\":{},",
            "\"zipf_exponent\":{},\"read_mix\":{},\"rate\":{},\"open_loop\":{},",
            "\"seed\":{},\"elapsed_ms\":{:.3},\"qps\":{:.1},",
            "\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},",
            "\"mixed_epoch_retries\":{},\"router\":{},\"server_stats\":{}}}"
        ),
        escape_json(&spec.name),
        escape_json(raw_spec),
        escape_json(&opts.connect),
        plan.len(),
        reads,
        writes,
        commits,
        completed,
        errored,
        shed,
        shed_rate,
        conns,
        spec.sources,
        spec.topk,
        spec.zipf_exponent,
        spec.read_mix,
        spec.rate
            .map_or("null".to_string(), |rate| format!("{rate}")),
        spec.rate.is_some(),
        spec.seed,
        elapsed.as_secs_f64() * 1e3,
        qps,
        us(histogram.quantile(0.50)),
        us(histogram.quantile(0.99)),
        us(histogram.quantile(0.999)),
        opt_u64(retries_delta),
        router_json,
        server_stats,
    );
    println!("{json}");
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("simrank-client: wrote {path}");
    }
    if let Some(reply) = shutdown_reply {
        eprintln!("simrank-client: server drain acknowledged: {reply}");
    }

    // The CI gate: no hard errors, every operation accounted for (answered
    // or explicitly shed), and qps within the baseline's noise floor.
    if errored > 0 || completed + shed != plan.len() as u64 {
        eprintln!(
            "simrank-client: {errored} errors, {completed}+{shed} of {} ops accounted for",
            plan.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    if qps <= 0.0 {
        eprintln!("simrank-client: zero throughput");
        return Ok(ExitCode::FAILURE);
    }
    if let Some(path) = &opts.baseline {
        let baseline =
            std::fs::read_to_string(path).map_err(|e| format!("baseline {path}: {e}"))?;
        let baseline_qps = f64_field(&baseline, "qps")
            .ok_or_else(|| format!("baseline {path}: no `qps` field"))?;
        let floor = baseline_qps / opts.max_regression;
        if qps < floor {
            eprintln!(
                "simrank-client: qps {qps:.1} below baseline floor {floor:.1} \
                 (baseline {baseline_qps:.1} / {})",
                opts.max_regression
            );
            return Ok(ExitCode::FAILURE);
        }
        eprintln!(
            "simrank-client: qps {qps:.1} within baseline floor {floor:.1} \
             (baseline {baseline_qps:.1})"
        );
    }
    Ok(ExitCode::SUCCESS)
}
