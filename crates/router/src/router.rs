//! The [`ShardRouter`]: one protocol endpoint scatter/gathering over N
//! [`ShardBackend`]s.
//!
//! ## Why replicas, and what the partition actually partitions
//!
//! SimRank single-source needs the whole graph — every node's similarity to
//! the source is a function of global structure — so each shard holds a
//! **full graph replica** and computes complete columns. What the
//! deterministic partition ([`exactsim_graph::partition`]) assigns is
//! *candidate ownership*: for a gathered top-k, shard `i` ranks only the
//! nodes it owns (`shardtopk <node> <k> <i> <N>`), and the router merges the
//! per-shard lists with [`exactsim::topk::merge_top_k`]. Because ownership
//! is disjoint and exhaustive and both sides use the same
//! score-descending / node-id-ascending comparator, the merged answer is
//! **bit-identical** to the unsharded `topk` — scores travel as shortest
//! round-trip `f64` strings, which parse back to the exact bits.
//!
//! Single-source `query` goes to the one shard that owns the source node
//! (any replica could answer; routing by owner spreads cache footprint), and
//! updates fan out to every replica.
//!
//! ## Epoch barrier
//!
//! Cross-shard answers must never mix epochs. Two mechanisms compose:
//!
//! 1. An `RwLock` barrier: queries and gathers hold it for read, the commit
//!    fan-out holds it for write — so no gather ever straddles a
//!    router-driven commit.
//! 2. Gathers verify that every shard replied at the same epoch anyway
//!    (guarding against out-of-band commits on a remote shard and divergent
//!    boot states) and retry once before answering `internal`.
//!
//! Commits are two-phase from the router's perspective: `addedge`/`deledge`
//! stage on every replica (compensated on partial failure), `commit` fans
//! out under the write barrier, and the router's published epoch advances
//! only when **every** shard reports the same new epoch. A partially-failed
//! commit leaves shards divergent but heals on retry: an already-committed
//! shard answers the retry with an empty commit (`advanced:false`, epoch
//! unchanged) while the lagging shard catches up.
//!
//! ## Failure handling: breakers, retries, degraded reads
//!
//! Every shard has a [`crate::health::Breaker`]. Requests consult it before
//! touching the backend, so a down shard costs a memory read, not a connect
//! timeout; a background prober ([`ShardRouter::start_health_probes`])
//! `ping`s each shard so breakers open within a probe interval of an outage
//! and close shortly after recovery, independent of client traffic.
//!
//! Retry policy is verb-shaped. **Reads** (`query`, `topk` slices,
//! `shardtopk`) are idempotent against a published epoch, and every backend
//! is a full replica whose `shardtopk` answer is a pure function of the
//! request line — so when a preferred shard is unavailable the router simply
//! re-asks a live replica and the answer is bit-identical to the healthy
//! path. Such replies (and gathers containing one) carry `"degraded":true`
//! and count into `simrank_router_degraded_total`. **Writes** (`addedge`,
//! `deledge`, `addnode`, `commit`, `save`) are attempted exactly once per
//! shard and never silently re-sent — a failed fan-out surfaces as a typed
//! `shard_unavailable` reply and staged work is compensated where possible,
//! so at-most-once semantics hold end to end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use exactsim::topk::merge_top_k;
use exactsim_graph::partition::PartitionMap;
use exactsim_obs::json::escape_json;
use exactsim_obs::log as oplog;
use exactsim_obs::metrics::{Counter, Histogram, Registry};
use exactsim_service::net::ProtocolHost;
use exactsim_service::protocol::{self, codes, Outcome, ProtoError, Request};
use exactsim_service::{AlgorithmKind, ServiceStats, ServingShape, TopKResponse};

use crate::backend::{ShardBackend, ShardError};
use crate::health::{Breaker, BreakerConfig};
use crate::wire;

/// Per-verb fan-out counters: how many shard requests each verb caused.
struct Fanout {
    query: Arc<Counter>,
    topk: Arc<Counter>,
    update: Arc<Counter>,
    commit: Arc<Counter>,
    epoch: Arc<Counter>,
    save: Arc<Counter>,
}

struct Counters {
    /// Query-shaped requests routed (query / topk / shardtopk).
    queries: Arc<Counter>,
    /// Requests the router itself failed (shard unreachable, mixed epochs,
    /// malformed shard replies) — shard-side protocol rejections passed
    /// through verbatim do not count.
    errors: Arc<Counter>,
    fanout: Fanout,
    shard_requests: Vec<Arc<Counter>>,
    shard_errors: Vec<Arc<Counter>>,
    shard_latency: Vec<Arc<Histogram>>,
    barrier_wait: Arc<Histogram>,
    mixed_epoch_retries: Arc<Counter>,
    /// Reads answered by a non-preferred replica because the preferred
    /// shard was unavailable (the reply carried `degraded:true`).
    degraded: Arc<Counter>,
    /// Requests failed fast by an open breaker, per shard (never sent).
    breaker_fastfail: Vec<Arc<Counter>>,
    /// Background health probes sent, per shard.
    probes: Vec<Arc<Counter>>,
}

struct Inner {
    shards: Vec<Box<dyn ShardBackend>>,
    partition: PartitionMap,
    epoch: Arc<AtomicU64>,
    barrier: RwLock<()>,
    net_stats: ServiceStats,
    metrics: Registry,
    counters: Counters,
    /// One circuit breaker per shard (indexes match `shards`). Shared with
    /// the metrics gauges, hence the `Arc`.
    health: Arc<Vec<Breaker>>,
    breaker_config: BreakerConfig,
}

/// The sharded serving tier: implements [`ProtocolHost`], so the same TCP
/// listener (and stdin REPL) that fronts a single [`exactsim_service::SimRankService`]
/// can front N shards instead. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct ShardRouter {
    inner: Arc<Inner>,
}

impl ShardRouter {
    /// Builds a router over `shards` backends. Probes every shard's epoch up
    /// front — a fail-fast connectivity check for remote backends — and
    /// publishes the highest observed epoch (divergence is logged, not
    /// fatal: a retried `commit` heals it).
    pub fn new(shards: Vec<Box<dyn ShardBackend>>) -> Result<ShardRouter, String> {
        if shards.is_empty() {
            return Err("a router needs at least one shard".to_string());
        }
        let mut epochs = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            let reply = shard.request("epoch").map_err(|e| {
                format!(
                    "cannot reach shard {i} ({}): {}",
                    shard.describe(),
                    e.message()
                )
            })?;
            let epoch = wire::u64_field(&reply, "epoch").ok_or_else(|| {
                format!(
                    "shard {i} ({}) answered a malformed epoch reply: {reply}",
                    shard.describe()
                )
            })?;
            epochs.push(epoch);
        }
        let max_epoch = epochs.iter().copied().max().unwrap_or(0);
        if epochs.iter().any(|&e| e != max_epoch) {
            oplog::warn(
                "simrank-router",
                "shard epochs diverge at boot; a commit will heal them",
                &[("epochs", format!("{epochs:?}").into())],
            );
        }

        let metrics = Registry::new();
        let epoch = Arc::new(AtomicU64::new(max_epoch));
        {
            let epoch = Arc::clone(&epoch);
            metrics.gauge_fn(
                "simrank_router_epoch",
                "Graph epoch the router currently publishes",
                &[],
                move || epoch.load(Ordering::Acquire) as f64,
            );
        }
        let fanout = |verb: &str| {
            metrics.counter(
                "simrank_router_fanout_total",
                "Shard requests issued, by originating verb",
                &[("verb", verb)],
            )
        };
        let breaker_config = BreakerConfig::from_env();
        let health: Arc<Vec<Breaker>> = Arc::new(
            (0..shards.len())
                .map(|i| Breaker::new(breaker_config, i as u64))
                .collect(),
        );
        let mut shard_requests = Vec::with_capacity(shards.len());
        let mut shard_errors = Vec::with_capacity(shards.len());
        let mut shard_latency = Vec::with_capacity(shards.len());
        let mut breaker_fastfail = Vec::with_capacity(shards.len());
        let mut probes = Vec::with_capacity(shards.len());
        for i in 0..shards.len() {
            let label = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", label.as_str())];
            shard_requests.push(metrics.counter(
                "simrank_router_shard_requests_total",
                "Requests the router sent to each shard",
                labels,
            ));
            shard_errors.push(metrics.counter(
                "simrank_router_shard_errors_total",
                "Shard requests that failed (unreachable or malformed)",
                labels,
            ));
            shard_latency.push(metrics.histogram(
                "simrank_router_shard_latency_us",
                "Per-shard request latency as observed by the router",
                labels,
            ));
            breaker_fastfail.push(metrics.counter(
                "simrank_router_breaker_fastfail_total",
                "Requests failed fast by an open circuit breaker (never sent)",
                labels,
            ));
            probes.push(metrics.counter(
                "simrank_router_probes_total",
                "Background health probes sent to each shard",
                labels,
            ));
            let gauge_health = Arc::clone(&health);
            metrics.gauge_fn(
                "simrank_router_breaker_state",
                "Circuit breaker state per shard (0 closed, 1 half-open, 2 open)",
                labels,
                move || gauge_health[i].state().gauge(),
            );
        }
        let counters = Counters {
            queries: metrics.counter(
                "simrank_router_requests_total",
                "Query-shaped requests routed (query/topk/shardtopk)",
                &[],
            ),
            errors: metrics.counter(
                "simrank_router_errors_total",
                "Requests the router failed (shard unreachable, mixed epochs)",
                &[],
            ),
            fanout: Fanout {
                query: fanout("query"),
                topk: fanout("topk"),
                update: fanout("update"),
                commit: fanout("commit"),
                epoch: fanout("epoch"),
                save: fanout("save"),
            },
            shard_requests,
            shard_errors,
            shard_latency,
            degraded: metrics.counter(
                "simrank_router_degraded_total",
                "Reads answered by a failover replica instead of the preferred shard",
                &[],
            ),
            breaker_fastfail,
            probes,
            barrier_wait: metrics.histogram(
                "simrank_router_barrier_wait_us",
                "Time spent acquiring the epoch barrier",
                &[],
            ),
            mixed_epoch_retries: metrics.counter(
                "simrank_router_mixed_epoch_retries_total",
                "Gathers re-scattered because shard epochs disagreed",
                &[],
            ),
        };
        let partition = PartitionMap::new(shards.len());
        Ok(ShardRouter {
            inner: Arc::new(Inner {
                shards,
                partition,
                epoch,
                barrier: RwLock::new(()),
                net_stats: ServiceStats::default(),
                metrics,
                counters,
                health,
                breaker_config,
            }),
        })
    }

    /// Starts the background health prober: one thread that `ping`s every
    /// shard each [`BreakerConfig::probe_interval`]. Probes flow through the
    /// same breakers as client traffic, so an outage opens a shard's breaker
    /// within a probe interval even when the router is idle, and an open
    /// breaker gets its half-open trial (and recloses) from here once the
    /// shard is back — recovery needs no client request to notice it. The
    /// thread holds only a weak reference and exits when the router drops.
    pub fn start_health_probes(&self) {
        let weak = Arc::downgrade(&self.inner);
        let interval = self.inner.breaker_config.probe_interval;
        std::thread::Builder::new()
            .name("shard-health-probe".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(inner) = weak.upgrade() else { return };
                ShardRouter { inner }.probe_once();
            })
            .expect("spawning the shard health prober");
    }

    /// One probe round: `ping` every shard whose breaker admits it. Public
    /// so tests (and operators via a debugger) can drive probing
    /// deterministically; the background thread just calls this in a loop.
    pub fn probe_once(&self) {
        for shard in 0..self.num_shards() {
            if !self.inner.health[shard].allow() {
                continue;
            }
            self.inner.counters.probes[shard].inc();
            match self.inner.shards[shard].request("ping") {
                Ok(_) => self.inner.health[shard].record_success(),
                Err(ShardError::Unavailable(_)) => self.inner.health[shard].record_failure(),
                // A malformed reply proves the process is up; health-wise
                // that is a success even though gathers would reject it.
                Err(ShardError::Malformed(_)) => self.inner.health[shard].record_success(),
            }
        }
    }

    /// The breaker state of one shard (for stats and tests).
    pub fn shard_health(&self, shard: usize) -> crate::health::BreakerState {
        self.inner.health[shard].state()
    }

    /// How many shards the router fans out over.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The epoch the router currently publishes (advanced only when every
    /// shard reported the same committed epoch).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Drains every shard (local shards flush their durable snapshot;
    /// remote shards are left to their own operator).
    pub fn drain(&self) {
        for shard in &self.inner.shards {
            shard.drain();
        }
    }

    /// The router's Prometheus exposition (the `metrics` verb payload).
    pub fn metrics_text(&self) -> String {
        self.inner.metrics.render()
    }

    /// The router's `stats` reply: its own epoch/shard topology, fan-out and
    /// barrier counters, the listener's connection counters, and a
    /// `per_shard` breakdown — one JSON line, like every `stats` reply.
    pub fn stats_json(&self) -> String {
        let c = &self.inner.counters;
        let net = self.inner.net_stats.snapshot(
            self.epoch(),
            0,
            0,
            0,
            None,
            [None; 3],
            ServingShape {
                workers: 0,
                kernel_threads: 0,
                shards: self.num_shards(),
            },
            // A router holds no pages itself; each shard reports its own
            // pool through its own `stats` verb.
            None,
        );
        let us = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
        let per_shard: Vec<String> = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                format!(
                    concat!(
                        "{{\"shard\":{},\"backend\":\"{}\",\"requests\":{},",
                        "\"errors\":{},\"health\":\"{}\",\"fastfail\":{},",
                        "\"probes\":{},\"p50_us\":{},\"p99_us\":{}}}"
                    ),
                    i,
                    escape_json(&shard.describe()),
                    c.shard_requests[i].get(),
                    c.shard_errors[i].get(),
                    self.inner.health[i].state().name(),
                    c.breaker_fastfail[i].get(),
                    c.probes[i].get(),
                    us(c.shard_latency[i].quantile_value(0.50)),
                    us(c.shard_latency[i].quantile_value(0.99)),
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"epoch\":{},\"shards\":{},\"queries\":{},\"errors\":{},",
                "\"degraded\":{},",
                "\"fanout\":{{\"query\":{},\"topk\":{},\"update\":{},",
                "\"commit\":{},\"epoch\":{},\"save\":{}}},",
                "\"mixed_epoch_retries\":{},",
                "\"barrier_wait_p50_us\":{},\"barrier_wait_p99_us\":{},",
                "\"net_requests\":{},\"connections_accepted\":{},",
                "\"connections_closed\":{},\"connections_rejected\":{},",
                "\"bytes_in\":{},\"bytes_out\":{},",
                "\"per_shard\":[{}]}}"
            ),
            self.epoch(),
            self.num_shards(),
            c.queries.get(),
            c.errors.get(),
            c.degraded.get(),
            c.fanout.query.get(),
            c.fanout.topk.get(),
            c.fanout.update.get(),
            c.fanout.commit.get(),
            c.fanout.epoch.get(),
            c.fanout.save.get(),
            c.mixed_epoch_retries.get(),
            us(c.barrier_wait.quantile_value(0.50)),
            us(c.barrier_wait.quantile_value(0.99)),
            net.net_requests,
            net.connections_accepted,
            net.connections_closed,
            net.connections_rejected,
            net.bytes_in,
            net.bytes_out,
            per_shard.join(","),
        )
    }

    /// Executes one parsed request. Mirrors
    /// [`exactsim_service::protocol::execute`] but over the shard fan-out;
    /// every failure is a typed `{"error","code"}` reply, never a panic and
    /// never a hang.
    pub fn execute(&self, default_algo: AlgorithmKind, request: &Request) -> Outcome {
        match request {
            Request::Help => Outcome::Help(protocol::PROTOCOL_HELP),
            Request::Quit => Outcome::Quit,
            Request::Shutdown => {
                Outcome::Shutdown("{\"op\":\"shutdown\",\"draining\":true}".into())
            }
            Request::Stats => Outcome::Reply(self.stats_json()),
            Request::Metrics => Outcome::Text(self.metrics_text()),
            // Shard-local diagnostics have no meaningful cross-shard merge;
            // a clean rejection beats a misleading partial answer.
            Request::SlowLog { .. } | Request::Trace { .. } => Outcome::Reply(
                ProtoError::bad_request(
                    "the router does not serve this verb; ask a shard directly",
                )
                .to_json(),
            ),
            Request::Query { node, algo } => self.route_query(*node, algo.unwrap_or(default_algo)),
            Request::ShardTopK {
                node,
                k,
                shard,
                num_shards,
                algo,
            } => {
                self.route_shard_topk(*node, *k, *shard, *num_shards, algo.unwrap_or(default_algo))
            }
            Request::TopK { node, k, algo } => {
                self.gathered_topk(*node, *k, algo.unwrap_or(default_algo))
            }
            Request::AddEdge { u, v } => self.fan_update(true, *u, *v),
            Request::DelEdge { u, v } => self.fan_update(false, *u, *v),
            Request::AddNode { count } => self.fan_add_nodes(*count),
            Request::Commit => self.commit(),
            // `ping` answers from the router's own published state — no
            // fan-out, no barrier — so it stays a pure liveness probe even
            // when every shard is down or a commit is in flight.
            Request::Ping => {
                Outcome::Reply(format!("{{\"op\":\"ping\",\"epoch\":{}}}", self.epoch()))
            }
            Request::Epoch => self.gather_epoch(),
            Request::Save => self.fan_save(),
        }
    }

    // ---- internals -------------------------------------------------------

    fn read_barrier(&self) -> RwLockReadGuard<'_, ()> {
        let started = Instant::now();
        let guard = self.inner.barrier.read().expect("epoch barrier poisoned");
        self.inner.counters.barrier_wait.record(started.elapsed());
        guard
    }

    fn write_barrier(&self) -> RwLockWriteGuard<'_, ()> {
        let started = Instant::now();
        let guard = self.inner.barrier.write().expect("epoch barrier poisoned");
        self.inner.counters.barrier_wait.record(started.elapsed());
        guard
    }

    fn timed_request(&self, shard: usize, line: &str) -> Result<String, ShardError> {
        let c = &self.inner.counters;
        let breaker = &self.inner.health[shard];
        if !breaker.allow() {
            c.breaker_fastfail[shard].inc();
            return Err(ShardError::Unavailable(format!(
                "shard {shard} ({}): circuit open",
                self.inner.shards[shard].describe()
            )));
        }
        c.shard_requests[shard].inc();
        let started = Instant::now();
        let result = self.inner.shards[shard].request(line);
        c.shard_latency[shard].record(started.elapsed());
        match &result {
            // Any reply — even a protocol error reply — proves the shard is
            // alive and serving.
            Ok(_) => breaker.record_success(),
            Err(ShardError::Unavailable(_)) => {
                c.shard_errors[shard].inc();
                breaker.record_failure();
            }
            // A malformed reply is a bug to surface, not an outage to trip
            // the breaker over.
            Err(ShardError::Malformed(_)) => c.shard_errors[shard].inc(),
        }
        result
    }

    /// Re-asks a read `line` of the replicas other than `failed` (every
    /// backend holds the full graph and read answers are pure functions of
    /// the line, so any live replica answers bit-identically). Only used
    /// for idempotent reads — writes are never re-sent.
    fn failover_read(&self, failed: usize, line: &str) -> Result<String, ShardError> {
        let width = self.num_shards();
        let mut last: Option<ShardError> = None;
        for offset in 1..width {
            let shard = (failed + offset) % width;
            match self.timed_request(shard, line) {
                Ok(reply) => return Ok(reply),
                Err(e @ ShardError::Unavailable(_)) => last = Some(e),
                // Don't mask a malformed-reply bug by trying elsewhere.
                Err(e) => return Err(e),
            }
        }
        Err(last
            .unwrap_or_else(|| ShardError::Unavailable("no replica available for failover".into())))
    }

    /// Appends `"degraded":true` to a flat JSON object reply, marking an
    /// answer that a failover replica produced.
    fn mark_degraded(reply: &str) -> String {
        match reply.trim_end().strip_suffix('}') {
            Some(body) => format!("{body},\"degraded\":true}}"),
            None => reply.to_string(),
        }
    }

    /// One request line to every shard, concurrently (scoped threads — the
    /// scatter width is the shard count, not a pool).
    fn scatter(&self, lines: &[String]) -> Vec<Result<String, ShardError>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .enumerate()
                .map(|(i, line)| scope.spawn(move || self.timed_request(i, line.as_str())))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ShardError::Malformed("scatter thread panicked".into()))
                    })
                })
                .collect()
        })
    }

    fn shard_error_reply(&self, e: &ShardError) -> Outcome {
        self.inner.counters.errors.inc();
        let proto = ProtoError {
            code: match e {
                ShardError::Unavailable(_) => codes::SHARD_UNAVAILABLE,
                ShardError::Malformed(_) => codes::INTERNAL,
            },
            message: e.message().to_string(),
        };
        Outcome::Reply(proto.to_json())
    }

    fn internal_reply(&self, message: String) -> Outcome {
        self.inner.counters.errors.inc();
        Outcome::Reply(
            ProtoError {
                code: codes::INTERNAL,
                message,
            }
            .to_json(),
        )
    }

    /// `query` goes to the one shard that owns the source node. Any replica
    /// could answer; routing by owner keeps each shard's result cache warm
    /// for a disjoint slice of the source space.
    fn route_query(&self, node: u32, algo: AlgorithmKind) -> Outcome {
        self.inner.counters.queries.inc();
        let owner = self.inner.partition.owner(node);
        let line = Request::Query {
            node,
            algo: Some(algo),
        }
        .to_line();
        let _epoch_stable = self.read_barrier();
        self.inner.counters.fanout.query.inc();
        match self.timed_request(owner, &line) {
            Ok(reply) => Outcome::Reply(reply),
            Err(ShardError::Unavailable(_)) => match self.failover_read(owner, &line) {
                Ok(reply) => {
                    self.inner.counters.degraded.inc();
                    Outcome::Reply(Self::mark_degraded(&reply))
                }
                Err(e) => self.shard_error_reply(&e),
            },
            Err(e) => self.shard_error_reply(&e),
        }
    }

    /// A `shardtopk` addressed to the router is answered by one replica
    /// (whichever backend `shard` hashes onto — every replica holds the full
    /// graph, and ownership is a pure function of the request's own
    /// `num_shards`, which need not match the router's width).
    fn route_shard_topk(
        &self,
        node: u32,
        k: usize,
        shard: usize,
        num_shards: usize,
        algo: AlgorithmKind,
    ) -> Outcome {
        self.inner.counters.queries.inc();
        let backend = shard % self.num_shards();
        let line = Request::ShardTopK {
            node,
            k,
            shard,
            num_shards,
            algo: Some(algo),
        }
        .to_line();
        let _epoch_stable = self.read_barrier();
        self.inner.counters.fanout.query.inc();
        match self.timed_request(backend, &line) {
            Ok(reply) => Outcome::Reply(reply),
            Err(ShardError::Unavailable(_)) => match self.failover_read(backend, &line) {
                Ok(reply) => {
                    self.inner.counters.degraded.inc();
                    Outcome::Reply(Self::mark_degraded(&reply))
                }
                Err(e) => self.shard_error_reply(&e),
            },
            Err(e) => self.shard_error_reply(&e),
        }
    }

    /// The gathered `topk`: scatter `shardtopk` to every shard, verify one
    /// epoch, merge. Retries the scatter once on an epoch mismatch (an
    /// out-of-band commit landed mid-gather) before failing typed.
    fn gathered_topk(&self, node: u32, k: usize, algo: AlgorithmKind) -> Outcome {
        self.inner.counters.queries.inc();
        let width = self.num_shards();
        let lines: Vec<String> = (0..width)
            .map(|shard| {
                Request::ShardTopK {
                    node,
                    k,
                    shard,
                    num_shards: width,
                    algo: Some(algo),
                }
                .to_line()
            })
            .collect();
        let started = Instant::now();
        let mut last_epochs: Vec<u64> = Vec::new();
        for attempt in 0..2 {
            if attempt > 0 {
                self.inner.counters.mixed_epoch_retries.inc();
            }
            let (replies, degraded) = {
                let _epoch_stable = self.read_barrier();
                self.inner.counters.fanout.topk.add(width as u64);
                let scattered = self.scatter(&lines);
                // Failover pass, still under the barrier: a dead shard's
                // slice is re-asked of a live replica — ownership is a pure
                // function of the line, so the answer is bit-identical to
                // what the dead shard would have said.
                let mut degraded = false;
                let mut replies = Vec::with_capacity(width);
                for (slice, reply) in scattered.into_iter().enumerate() {
                    match reply {
                        Err(ShardError::Unavailable(_)) => {
                            match self.failover_read(slice, &lines[slice]) {
                                Ok(recovered) => {
                                    degraded = true;
                                    self.inner.counters.degraded.inc();
                                    replies.push(Ok(recovered));
                                }
                                Err(e) => replies.push(Err(e)),
                            }
                        }
                        other => replies.push(other),
                    }
                }
                (replies, degraded)
            };
            let mut oks = Vec::with_capacity(width);
            for reply in replies {
                match reply {
                    Ok(reply) => {
                        // A shard-side rejection (out_of_range, ...) is
                        // deterministic across replicas; pass it through.
                        if wire::error_code(&reply).is_some() {
                            return Outcome::Reply(reply);
                        }
                        oks.push(reply);
                    }
                    Err(e) => return self.shard_error_reply(&e),
                }
            }
            let epochs: Option<Vec<u64>> =
                oks.iter().map(|r| wire::u64_field(r, "epoch")).collect();
            let Some(epochs) = epochs else {
                return self.internal_reply("a shard answered topk without an epoch".into());
            };
            if epochs.windows(2).all(|w| w[0] == w[1]) {
                let lists: Option<Vec<_>> = oks.iter().map(|r| wire::results(r)).collect();
                let Some(lists) = lists else {
                    return self
                        .internal_reply("a shard answered topk with unparsable results".into());
                };
                let response = TopKResponse {
                    algorithm: algo,
                    epoch: epochs[0],
                    source: node,
                    k,
                    entries: merge_top_k(lists, k),
                    query_time: started.elapsed(),
                };
                let json = response.to_json();
                return Outcome::Reply(if degraded {
                    Self::mark_degraded(&json)
                } else {
                    json
                });
            }
            last_epochs = epochs;
        }
        self.internal_reply(format!(
            "shard epochs still diverge after a retry ({last_epochs:?}); commit to heal"
        ))
    }

    /// `addedge`/`deledge` stage on every replica. On partial failure the
    /// successful `pending` stages are compensated with the opposite op
    /// (staging is cancellative), so no replica is left ahead of the others.
    fn fan_update(&self, insert: bool, u: u32, v: u32) -> Outcome {
        let request = if insert {
            Request::AddEdge { u, v }
        } else {
            Request::DelEdge { u, v }
        };
        let line = request.to_line();
        let lines: Vec<String> = (0..self.num_shards()).map(|_| line.clone()).collect();
        let _epoch_stable = self.read_barrier();
        self.inner
            .counters
            .fanout
            .update
            .add(self.num_shards() as u64);
        let replies = self.scatter(&lines);
        let failed = replies.iter().any(|r| match r {
            Ok(reply) => wire::error_code(reply).is_some(),
            Err(_) => true,
        });
        if !failed {
            // Replicas answer identically; the first reply speaks for all.
            return match replies.into_iter().next() {
                Some(Ok(reply)) => Outcome::Reply(reply),
                _ => self.internal_reply("update fan-out produced no reply".into()),
            };
        }
        // Compensation: undo only the stages that actually took (`pending`);
        // `noop`/`cancelled` stages changed nothing that needs undoing.
        let undo = if insert {
            Request::DelEdge { u, v }
        } else {
            Request::AddEdge { u, v }
        }
        .to_line();
        let mut first_unavailable: Option<ShardError> = None;
        let mut first_rejection: Option<String> = None;
        for (shard, reply) in replies.into_iter().enumerate() {
            match reply {
                Ok(reply) => {
                    if let Some(_code) = wire::error_code(&reply) {
                        first_rejection.get_or_insert(reply);
                    } else if wire::str_field(&reply, "staged") == Some("pending") {
                        let _ = self.timed_request(shard, &undo);
                    }
                }
                Err(e) => {
                    first_unavailable.get_or_insert(e);
                }
            }
        }
        match (first_unavailable, first_rejection) {
            (Some(e), _) => self.shard_error_reply(&e),
            // Every replica rejected the same way (e.g. out_of_range):
            // that is the answer, not a router failure.
            (None, Some(reply)) => Outcome::Reply(reply),
            (None, None) => self.internal_reply("update fan-out failed without a cause".into()),
        }
    }

    /// `addnode` fans out to every replica: like edge updates, node-id-space
    /// growth must land on all of them or the next commit publishes
    /// divergent graphs. Unlike `addedge` there is no inverse verb, so a
    /// partial stage cannot be compensated here; the error is surfaced and
    /// the divergence stays operator-visible in each shard's own `epoch`
    /// reply (`pending_nodes`) until the lagging replicas are reconciled
    /// directly (or roll back by restart).
    fn fan_add_nodes(&self, count: u64) -> Outcome {
        let line = Request::AddNode { count }.to_line();
        let lines: Vec<String> = (0..self.num_shards()).map(|_| line.clone()).collect();
        let _epoch_stable = self.read_barrier();
        self.inner
            .counters
            .fanout
            .update
            .add(self.num_shards() as u64);
        let replies = self.scatter(&lines);
        let mut first: Option<String> = None;
        for reply in replies {
            match reply {
                Ok(reply) => {
                    if wire::error_code(&reply).is_some() {
                        // Replicas share one id space; the same rejection
                        // (e.g. u32 overflow) comes back from each, and the
                        // first speaks for all.
                        self.inner.counters.errors.inc();
                        return Outcome::Reply(reply);
                    }
                    first.get_or_insert(reply);
                }
                Err(e) => return self.shard_error_reply(&e),
            }
        }
        match first {
            Some(reply) => Outcome::Reply(reply),
            None => self.internal_reply("addnode fan-out produced no reply".into()),
        }
    }

    /// The commit fan-out: write barrier (no gather straddles it), commit on
    /// every shard, publish the router epoch only on unanimous agreement.
    fn commit(&self) -> Outcome {
        let _epoch_frozen = self.write_barrier();
        let width = self.num_shards();
        self.inner.counters.fanout.commit.add(width as u64);
        let lines: Vec<String> = (0..width).map(|_| "commit".to_string()).collect();
        let replies = self.scatter(&lines);
        let mut oks = Vec::with_capacity(width);
        for reply in replies {
            match reply {
                Ok(reply) => {
                    if wire::error_code(&reply).is_some() {
                        // A shard refused the commit; shards that accepted it
                        // are now ahead, which the next commit heals (their
                        // empty commit does not advance further).
                        self.inner.counters.errors.inc();
                        return Outcome::Reply(reply);
                    }
                    oks.push(reply);
                }
                Err(e) => return self.shard_error_reply(&e),
            }
        }
        let epochs: Option<Vec<u64>> = oks.iter().map(|r| wire::u64_field(r, "epoch")).collect();
        let Some(epochs) = epochs else {
            return self.internal_reply("a shard answered commit without an epoch".into());
        };
        if !epochs.windows(2).all(|w| w[0] == w[1]) {
            return self.internal_reply(format!(
                "shard epochs diverge after commit ({epochs:?}); retry commit to heal"
            ));
        }
        self.inner.epoch.store(epochs[0], Ordering::Release);
        // Prefer a reply that actually advanced: after a heal, the lagging
        // shard's reply describes the edges applied, while an
        // already-committed replica reports an empty commit.
        let reply = oks
            .iter()
            .find(|r| r.contains("\"advanced\":true"))
            .or_else(|| oks.first())
            .cloned();
        match reply {
            Some(reply) => Outcome::Reply(reply),
            None => self.internal_reply("commit fan-out produced no reply".into()),
        }
    }

    /// `epoch` gathers every shard's view and verifies agreement — the
    /// operator-facing probe for the consistency the barrier maintains.
    fn gather_epoch(&self) -> Outcome {
        let width = self.num_shards();
        let lines: Vec<String> = (0..width).map(|_| "epoch".to_string()).collect();
        let _epoch_stable = self.read_barrier();
        self.inner.counters.fanout.epoch.add(width as u64);
        let replies = self.scatter(&lines);
        let mut oks = Vec::with_capacity(width);
        for reply in replies {
            match reply {
                Ok(reply) => {
                    if wire::error_code(&reply).is_some() {
                        self.inner.counters.errors.inc();
                        return Outcome::Reply(reply);
                    }
                    oks.push(reply);
                }
                Err(e) => return self.shard_error_reply(&e),
            }
        }
        let epochs: Option<Vec<u64>> = oks.iter().map(|r| wire::u64_field(r, "epoch")).collect();
        let Some(epochs) = epochs else {
            return self.internal_reply("a shard answered epoch unparsably".into());
        };
        if !epochs.windows(2).all(|w| w[0] == w[1]) {
            return self
                .internal_reply(format!("shard epochs diverge ({epochs:?}); commit to heal"));
        }
        match oks.into_iter().next() {
            Some(reply) => Outcome::Reply(reply),
            None => self.internal_reply("epoch fan-out produced no reply".into()),
        }
    }

    /// `save` fans out to every shard; in-memory shards answer `not_durable`
    /// (passed through — the deployment either is durable everywhere or the
    /// operator learns it is not).
    fn fan_save(&self) -> Outcome {
        let width = self.num_shards();
        let lines: Vec<String> = (0..width).map(|_| "save".to_string()).collect();
        let _epoch_stable = self.read_barrier();
        self.inner.counters.fanout.save.add(width as u64);
        let replies = self.scatter(&lines);
        let mut first: Option<String> = None;
        for reply in replies {
            match reply {
                Ok(reply) => {
                    if wire::error_code(&reply).is_some() {
                        self.inner.counters.errors.inc();
                        return Outcome::Reply(reply);
                    }
                    first.get_or_insert(reply);
                }
                Err(e) => return self.shard_error_reply(&e),
            }
        }
        match first {
            Some(reply) => Outcome::Reply(reply),
            None => self.internal_reply("save fan-out produced no reply".into()),
        }
    }
}

impl ProtocolHost for ShardRouter {
    fn serve_line(&self, default_algo: AlgorithmKind, line: &str) -> Option<Outcome> {
        match protocol::parse_line(line) {
            Ok(None) => None,
            Ok(Some(request)) => Some(self.execute(default_algo, &request)),
            Err(e) => Some(Outcome::Reply(e.to_json())),
        }
    }

    fn net_stats(&self) -> &ServiceStats {
        &self.inner.net_stats
    }

    fn on_drain(&self) {
        self.drain();
    }
}
