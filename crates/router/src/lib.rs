//! # exactsim-router
//!
//! The sharded serving tier: one protocol endpoint fronting N SimRank
//! shards, in-process or remote, behind the same [`ShardBackend`] trait.
//!
//! | module | role |
//! |---|---|
//! | [`backend`] | [`ShardBackend`]: one shard the router can ask — [`LocalShard`] wraps an in-process [`exactsim_service::SimRankService`], [`RemoteShard`] speaks the unmodified TCP line protocol to a `simrank-serve --listen` process with connect/read deadlines |
//! | [`health`] | per-shard closed → open → half-open circuit breakers (exponential backoff + jitter) behind every request and the background `ping` prober |
//! | [`router`] | [`ShardRouter`]: routes `query` to the owning shard, scatter/gathers `topk` via the `shardtopk` verb (bit-identical merge), fans out updates with compensation and commits under a write barrier, and answers `stats`/`metrics` with fan-out, barrier, and per-shard series |
//! | [`scenario`] | workload scenarios for `simrank-client --scenario`: Zipfian source popularity, read/write/algorithm mixes, open-loop Poisson arrivals with burst phases, expanded into deterministic operation plans |
//! | `wire` (private) | field scanners for the protocol's flat JSON reply lines |
//!
//! The router implements [`exactsim_service::net::ProtocolHost`], so the
//! same TCP listener (and stdin REPL) serves either a single service or a
//! shard fan-out — `simrank-serve --shards N` / `--shard-of a:1,b:2` is the
//! only difference an operator sees. Consistency story and the replica
//! model are documented on [`router`].
//!
//! ## Quickstart (in-process shards)
//!
//! ```
//! use std::sync::Arc;
//! use exactsim_graph::generators::barabasi_albert;
//! use exactsim_router::{LocalShard, ShardBackend, ShardRouter};
//! use exactsim_service::protocol::{parse_line, Outcome};
//! use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};
//!
//! let graph = Arc::new(barabasi_albert(120, 3, true, 7).unwrap());
//! let shards: Vec<Box<dyn ShardBackend>> = (0..4)
//!     .map(|_| {
//!         let service =
//!             SimRankService::new(Arc::clone(&graph), ServiceConfig::fast_demo()).unwrap();
//!         Box::new(LocalShard::new(service)) as Box<dyn ShardBackend>
//!     })
//!     .collect();
//! let router = ShardRouter::new(shards).unwrap();
//!
//! let request = parse_line("topk 7 5").unwrap().unwrap();
//! match router.execute(AlgorithmKind::ExactSim, &request) {
//!     Outcome::Reply(reply) => assert!(reply.contains("\"results\":[")),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod backend;
pub mod health;
pub mod router;
pub mod scenario;
pub(crate) mod wire;

pub use backend::{LocalShard, RemoteShard, ShardBackend, ShardError};
pub use health::{Breaker, BreakerConfig, BreakerState};
pub use router::ShardRouter;
