//! Minimal field scanners for the protocol's JSON reply lines.
//!
//! The router gathers replies produced by [`exactsim_service`]'s own
//! serializers, whose shapes are fixed and flat (one object per line, no
//! nested objects except the `results` array of `{"node","score"}` pairs).
//! Scanning for `"field":` is exact against that grammar, so a full JSON
//! parser — which the offline workspace does not have — is not needed. The
//! scanners are deliberately conservative: anything unexpected returns
//! `None`, which the gather paths surface as an `internal` protocol error
//! rather than a wrong answer.
//!
//! Bit-identity note: scores travel as Rust's shortest round-trip `f64`
//! representation ([`exactsim_service::response`]), so `parse::<f64>()` here
//! recovers the exact bits the shard computed — the gathered merge ranks the
//! same values the unsharded server would.

use exactsim::topk::TopKEntry;

/// Everything after `"field":` in `json`, or `None` when absent.
fn after_field<'a>(json: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":");
    let start = json.find(&needle)? + needle.len();
    Some(&json[start..])
}

/// The unsigned integer value of a top-level `"field":123`.
pub fn u64_field(json: &str, field: &str) -> Option<u64> {
    let rest = after_field(json, field)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The string value of a top-level `"field":"value"`. Only used for values
/// the protocol never escapes (error codes, staged states, op names).
pub fn str_field<'a>(json: &'a str, field: &str) -> Option<&'a str> {
    let rest = after_field(json, field)?.strip_prefix('"')?;
    rest.split('"').next()
}

/// The machine-readable code of an `{"error": ..., "code": ...}` reply, or
/// `None` when the reply is not an error.
pub fn error_code(json: &str) -> Option<&str> {
    if json.contains("\"error\"") {
        str_field(json, "code")
    } else {
        None
    }
}

/// The `results` array of a `topk`/`shardtopk` reply, decoded back into
/// entries the merge can rank.
pub fn results(json: &str) -> Option<Vec<TopKEntry>> {
    let rest = after_field(json, "results")?.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let mut entries = Vec::new();
    for obj in body.split('{').skip(1) {
        let node_rest = obj.strip_prefix("\"node\":")?;
        let comma = node_rest.find(',')?;
        let node: u32 = node_rest[..comma].parse().ok()?;
        let score_rest = node_rest[comma + 1..].strip_prefix("\"score\":")?;
        let end = score_rest.find(['}', ','])?;
        let score: f64 = score_rest[..end].parse().ok()?;
        entries.push(TopKEntry { node, score });
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_integer_and_string_fields() {
        let json = "{\"epoch\":42,\"op\":\"commit\",\"advanced\":true}";
        assert_eq!(u64_field(json, "epoch"), Some(42));
        assert_eq!(str_field(json, "op"), Some("commit"));
        assert_eq!(u64_field(json, "missing"), None);
        assert_eq!(str_field(json, "missing"), None);
    }

    #[test]
    fn error_code_only_fires_on_error_replies() {
        let err = "{\"error\":\"down\",\"code\":\"shard_unavailable\"}";
        assert_eq!(error_code(err), Some("shard_unavailable"));
        let ok = "{\"epoch\":3,\"code_like\":\"x\"}";
        assert_eq!(error_code(ok), None);
    }

    #[test]
    fn results_round_trip_exactly() {
        // The score string is what the service serializer emits (shortest
        // round-trip repr) — parsing must recover the identical bits.
        let score = 0.1f64 + 0.2f64;
        let json = format!(
            "{{\"epoch\":1,\"results\":[{{\"node\":7,\"score\":{score}}},{{\"node\":9,\"score\":0.5}}]}}"
        );
        let entries = results(&json).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].node, 7);
        assert_eq!(entries[0].score.to_bits(), score.to_bits());
        assert_eq!(entries[1].node, 9);
    }

    #[test]
    fn empty_results_and_garbage_are_handled() {
        assert_eq!(results("{\"results\":[]}"), Some(vec![]));
        assert_eq!(results("{\"results\":[{\"bogus\":1}]}"), None);
        assert_eq!(results("{\"nothing\":true}"), None);
    }
}
