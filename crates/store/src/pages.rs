//! The on-disk page file: fixed-size pages of CSR ranges plus a file
//! manager for page I/O.
//!
//! A page file is the paged backend's image of one published epoch. It is a
//! *rebuildable cache*: the durable truth stays the snapshot + WAL of
//! [`crate::persist`], and a page file can always be regenerated from them
//! (`write_page_file` over the materialized graph), so page I/O errors never
//! threaten durability.
//!
//! ## Layout (version 1, little-endian)
//!
//! ```text
//! magic          "ESPG"                        4 bytes
//! version        u32                           4 bytes
//! epoch          u64                           8 bytes
//! num_nodes      u64                           8 bytes
//! num_edges      u64                           8 bytes
//! page_bytes     u32   target capacity per regular page     4 bytes
//! num_pages      u32   out pages first, then in pages       4 bytes
//! num_out_pages  u32                           4 bytes
//! reserved       u32   (zero)                  4 bytes
//! out_offsets    u64 × (num_nodes + 1)         global out-CSR offsets
//! in_offsets     u64 × (num_nodes + 1)         global in-CSR offsets
//! directory      20 bytes × num_pages          {first_node u32, node_count u32,
//!                                               file_offset u64, byte_len u32}
//! header_crc     u32 over everything above     4 bytes
//! pages          ...                           at their directory offsets
//! ```
//!
//! The global offsets arrays stay RAM-resident in the [`FileManager`], which
//! is what makes degrees (`offsets[v+1] - offsets[v]`) and page-relative
//! slicing O(1) without touching adjacency storage — the per-page offset
//! table of a textbook layout is hoisted to the file header, once, instead
//! of repeated per page.
//!
//! ## Pages
//!
//! Each page covers a contiguous node range of one orientation and stores
//! exactly the concatenated neighbor lists of that range:
//!
//! ```text
//! first_node  u32
//! node_count  u32
//! edge_count  u32
//! targets     u32 × edge_count
//! crc32       u32 over everything above
//! ```
//!
//! Nodes are packed greedily until a page's targets would exceed
//! `page_bytes`; a single node whose neighbor list alone exceeds the
//! capacity gets a private jumbo page (pages are read whole, so jumbo pages
//! just cost one larger read).

use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use exactsim_graph::{DiGraph, NodeId};
use exactsim_obs::fault;

use crate::error::StoreError;
use crate::persist::crc32;

/// Page file magic.
pub const PAGE_MAGIC: &[u8; 4] = b"ESPG";

/// Page file format version this build writes and reads.
pub const PAGE_FORMAT_VERSION: u32 = 1;

/// Default target capacity of a regular page, in bytes (1024 neighbor ids).
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// Fixed-size part of the file header preceding the offsets arrays
/// (through the reserved word).
const FILE_HEADER_LEN: usize = 48;

/// Bytes per directory entry.
const DIR_ENTRY_LEN: usize = 20;

/// Fixed per-page overhead: header (12) + trailing crc (4).
const PAGE_OVERHEAD: usize = 16;

/// Distinguishes page files across epochs inside one shared
/// [`crate::BufferPool`]: every opened [`FileManager`] gets a unique id, so
/// pool keys `(file_id, page_no)` never collide between the old and new
/// epoch during a commit swap.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// The decoded, validated contents of one page, shared behind an `Arc` by
/// the buffer pool and its pin guards.
#[derive(Debug)]
pub struct PageData {
    /// First node of the range this page covers.
    pub first_node: NodeId,
    /// The concatenated, per-node-sorted neighbor lists of the range.
    pub targets: Vec<NodeId>,
}

impl PageData {
    /// Heap footprint of the decoded targets.
    pub fn resident_bytes(&self) -> usize {
        self.targets.len() * std::mem::size_of::<NodeId>()
    }
}

/// One directory entry: which node range a page covers and where its bytes
/// live in the file.
#[derive(Clone, Copy, Debug)]
pub struct PageMeta {
    /// First node of the page's range.
    pub first_node: NodeId,
    /// Number of consecutive nodes the page covers.
    pub node_count: u32,
    /// Absolute byte offset of the page in the file.
    pub file_offset: u64,
    /// Byte length of the page (header + targets + crc).
    pub byte_len: u32,
}

/// Greedily partitions nodes `0..n` into page ranges so each regular page
/// holds at most `cap_targets` neighbor ids. Returns `(first_node,
/// node_count)` pairs covering every node exactly once.
fn plan_pages(offsets: &[u64], cap_targets: usize) -> Vec<(NodeId, u32)> {
    let n = offsets.len() - 1;
    let mut pages = Vec::new();
    let mut first = 0usize;
    let mut edges_in_page = 0usize;
    for v in 0..n {
        let deg = (offsets[v + 1] - offsets[v]) as usize;
        if v > first && edges_in_page + deg > cap_targets {
            pages.push((first as NodeId, (v - first) as u32));
            first = v;
            edges_in_page = 0;
        }
        edges_in_page += deg;
    }
    if n > first {
        pages.push((first as NodeId, (n - first) as u32));
    }
    pages
}

/// Writes the page-file image of `graph` at `epoch` to `path` (atomically:
/// temp file + fsync + rename). `page_bytes` is the regular-page target
/// capacity in bytes; it is clamped to at least one neighbor id.
pub fn write_page_file(
    path: &Path,
    graph: &DiGraph,
    epoch: u64,
    page_bytes: usize,
) -> Result<(), StoreError> {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let cap_targets = (page_bytes / std::mem::size_of::<NodeId>()).max(1);

    let widen = |offsets: &[usize]| -> Vec<u64> { offsets.iter().map(|&o| o as u64).collect() };
    let out_offsets = widen(graph.out_csr().offsets());
    let in_offsets = widen(graph.in_csr().offsets());
    let out_plan = plan_pages(&out_offsets, cap_targets);
    let in_plan = plan_pages(&in_offsets, cap_targets);
    let num_out_pages = out_plan.len();
    let num_pages = num_out_pages + in_plan.len();

    let header_region_len = FILE_HEADER_LEN
        + 8 * (out_offsets.len() + in_offsets.len())
        + DIR_ENTRY_LEN * num_pages
        + 4;

    // Lay out the directory first so page offsets are known up front.
    let mut directory: Vec<PageMeta> = Vec::with_capacity(num_pages);
    let mut cursor = header_region_len as u64;
    for (plan, offsets) in [(&out_plan, &out_offsets), (&in_plan, &in_offsets)] {
        for &(first, count) in plan.iter() {
            let lo = offsets[first as usize];
            let hi = offsets[first as usize + count as usize];
            let byte_len = (PAGE_OVERHEAD + (hi - lo) as usize * 4) as u32;
            directory.push(PageMeta {
                first_node: first,
                node_count: count,
                file_offset: cursor,
                byte_len,
            });
            cursor += u64::from(byte_len);
        }
    }

    let mut bytes = Vec::with_capacity(cursor as usize);
    bytes.extend_from_slice(PAGE_MAGIC);
    bytes.extend_from_slice(&PAGE_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&(n as u64).to_le_bytes());
    bytes.extend_from_slice(&(m as u64).to_le_bytes());
    bytes.extend_from_slice(&(page_bytes as u32).to_le_bytes());
    bytes.extend_from_slice(&(num_pages as u32).to_le_bytes());
    bytes.extend_from_slice(&(num_out_pages as u32).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    for &o in out_offsets.iter().chain(in_offsets.iter()) {
        bytes.extend_from_slice(&o.to_le_bytes());
    }
    for meta in &directory {
        bytes.extend_from_slice(&meta.first_node.to_le_bytes());
        bytes.extend_from_slice(&meta.node_count.to_le_bytes());
        bytes.extend_from_slice(&meta.file_offset.to_le_bytes());
        bytes.extend_from_slice(&meta.byte_len.to_le_bytes());
    }
    let header_crc = crc32(&bytes);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    debug_assert_eq!(bytes.len(), header_region_len);

    for (page_no, meta) in directory.iter().enumerate() {
        let (csr, offsets) = if page_no < num_out_pages {
            (graph.out_csr(), &out_offsets)
        } else {
            (graph.in_csr(), &in_offsets)
        };
        let lo = offsets[meta.first_node as usize] as usize;
        let hi = offsets[meta.first_node as usize + meta.node_count as usize] as usize;
        let page_start = bytes.len();
        bytes.extend_from_slice(&meta.first_node.to_le_bytes());
        bytes.extend_from_slice(&meta.node_count.to_le_bytes());
        bytes.extend_from_slice(&((hi - lo) as u32).to_le_bytes());
        for &t in &csr.targets()[lo..hi] {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
        let page_crc = crc32(&bytes[page_start..]);
        bytes.extend_from_slice(&page_crc.to_le_bytes());
        debug_assert_eq!(bytes.len() - page_start, meta.byte_len as usize);
    }

    let tmp = path.with_extension("pages.tmp");
    let mut file = File::create(&tmp).map_err(|e| StoreError::io(&tmp, "create", e))?;
    std::io::Write::write_all(&mut file, &bytes).map_err(|e| StoreError::io(&tmp, "write", e))?;
    file.sync_all()
        .map_err(|e| StoreError::io(&tmp, "sync", e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io(path, "rename", e))?;
    Ok(())
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
    StoreError::PageCorrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// Open page file: validated header, RAM-resident offsets + directory, and
/// positioned page reads (`pread`) for the buffer pool.
#[derive(Debug)]
pub struct FileManager {
    file: File,
    path: PathBuf,
    id: u64,
    epoch: u64,
    num_nodes: usize,
    num_edges: usize,
    page_bytes: u32,
    num_out_pages: u32,
    out_offsets: Vec<u64>,
    in_offsets: Vec<u64>,
    directory: Vec<PageMeta>,
    /// `first_node` of each out page, for `partition_point` node→page lookup.
    out_first_nodes: Vec<NodeId>,
    /// `first_node` of each in page.
    in_first_nodes: Vec<NodeId>,
}

impl FileManager {
    /// Opens and fully validates a page file's header region (magic,
    /// version, lengths, checksum, directory consistency). Page payloads are
    /// validated lazily, per read.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path).map_err(|e| StoreError::io(path, "open", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| StoreError::io(path, "metadata", e))?
            .len();
        let mut fixed = [0u8; FILE_HEADER_LEN];
        if file_len < FILE_HEADER_LEN as u64 {
            return Err(corrupt(path, "file too short for a page-file header"));
        }
        file.read_exact_at(&mut fixed, 0)
            .map_err(|e| StoreError::io(path, "read", e))?;
        if &fixed[0..4] != PAGE_MAGIC {
            return Err(corrupt(path, "bad magic (not a page file)"));
        }
        let version = u32::from_le_bytes(fixed[4..8].try_into().expect("4 bytes"));
        if version != PAGE_FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: version,
                supported: PAGE_FORMAT_VERSION,
            });
        }
        let epoch = u64::from_le_bytes(fixed[8..16].try_into().expect("8 bytes"));
        let num_nodes = u64::from_le_bytes(fixed[16..24].try_into().expect("8 bytes"));
        let num_edges = u64::from_le_bytes(fixed[24..32].try_into().expect("8 bytes"));
        let page_bytes = u32::from_le_bytes(fixed[32..36].try_into().expect("4 bytes"));
        let num_pages = u32::from_le_bytes(fixed[36..40].try_into().expect("4 bytes")) as usize;
        let num_out_pages = u32::from_le_bytes(fixed[40..44].try_into().expect("4 bytes"));
        let n = usize::try_from(num_nodes)
            .map_err(|_| corrupt(path, format!("num_nodes {num_nodes} exceeds usize")))?;
        let m = usize::try_from(num_edges)
            .map_err(|_| corrupt(path, format!("num_edges {num_edges} exceeds usize")))?;
        if num_out_pages as usize > num_pages {
            return Err(corrupt(path, "out-page count exceeds total page count"));
        }

        let header_region_len = FILE_HEADER_LEN + 8 * 2 * (n + 1) + DIR_ENTRY_LEN * num_pages + 4;
        if file_len < header_region_len as u64 {
            return Err(corrupt(
                path,
                format!("file too short ({file_len} bytes) for its declared header region"),
            ));
        }
        let mut header = vec![0u8; header_region_len];
        file.read_exact_at(&mut header, 0)
            .map_err(|e| StoreError::io(path, "read", e))?;
        let body_end = header_region_len - 4;
        let stored = u32::from_le_bytes(header[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&header[..body_end]);
        if stored != computed {
            return Err(corrupt(
                path,
                format!(
                    "header checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                ),
            ));
        }

        let read_offsets = |at: usize| -> Result<Vec<u64>, StoreError> {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut prev = 0u64;
            for i in 0..=n {
                let lo = at + 8 * i;
                let o = u64::from_le_bytes(header[lo..lo + 8].try_into().expect("8 bytes"));
                if (i == 0 && o != 0) || o < prev {
                    return Err(corrupt(path, format!("offsets not monotonic at index {i}")));
                }
                prev = o;
                offsets.push(o);
            }
            if prev != num_edges {
                return Err(corrupt(
                    path,
                    format!("final offset {prev} does not match num_edges {num_edges}"),
                ));
            }
            Ok(offsets)
        };
        let out_offsets = read_offsets(FILE_HEADER_LEN)?;
        let in_offsets = read_offsets(FILE_HEADER_LEN + 8 * (n + 1))?;

        let dir_start = FILE_HEADER_LEN + 8 * 2 * (n + 1);
        let mut directory = Vec::with_capacity(num_pages);
        for p in 0..num_pages {
            let at = dir_start + DIR_ENTRY_LEN * p;
            let meta = PageMeta {
                first_node: u32::from_le_bytes(header[at..at + 4].try_into().expect("4 bytes")),
                node_count: u32::from_le_bytes(header[at + 4..at + 8].try_into().expect("4 bytes")),
                file_offset: u64::from_le_bytes(
                    header[at + 8..at + 16].try_into().expect("8 bytes"),
                ),
                byte_len: u32::from_le_bytes(header[at + 16..at + 20].try_into().expect("4 bytes")),
            };
            if meta.file_offset + u64::from(meta.byte_len) > file_len {
                return Err(corrupt(path, format!("page {p} overruns the file")));
            }
            directory.push(meta);
        }
        let coverage = |plan: &[PageMeta]| -> Result<Vec<NodeId>, StoreError> {
            let mut firsts = Vec::with_capacity(plan.len());
            let mut next = 0u64;
            for meta in plan {
                if u64::from(meta.first_node) != next || meta.node_count == 0 {
                    return Err(corrupt(path, "page directory does not tile the node space"));
                }
                firsts.push(meta.first_node);
                next += u64::from(meta.node_count);
            }
            if next != num_nodes {
                return Err(corrupt(path, "page directory does not cover every node"));
            }
            Ok(firsts)
        };
        let out_first_nodes = coverage(&directory[..num_out_pages as usize])?;
        let in_first_nodes = coverage(&directory[num_out_pages as usize..])?;

        Ok(FileManager {
            file,
            path: path.to_path_buf(),
            id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            epoch,
            num_nodes: n,
            num_edges: m,
            page_bytes,
            num_out_pages,
            out_offsets,
            in_offsets,
            directory,
            out_first_nodes,
            in_first_nodes,
        })
    }

    /// Unique id of this open file (pool key component).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The epoch the file images.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Node count of the imaged graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Edge count of the imaged graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total number of pages (both orientations).
    pub fn num_pages(&self) -> usize {
        self.directory.len()
    }

    /// Number of out-orientation pages (pages `0..num_out_pages` are out
    /// pages; the rest are in pages).
    pub fn num_out_pages(&self) -> usize {
        self.num_out_pages as usize
    }

    /// Regular-page target capacity in bytes, as written.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes as usize
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Global out-CSR offsets (length `n + 1`).
    pub fn out_offsets(&self) -> &[u64] {
        &self.out_offsets
    }

    /// Global in-CSR offsets (length `n + 1`).
    pub fn in_offsets(&self) -> &[u64] {
        &self.in_offsets
    }

    /// RAM held by the manager itself: offsets arrays + directory (the pool
    /// accounts for cached page payloads separately).
    pub fn resident_bytes(&self) -> usize {
        8 * (self.out_offsets.len() + self.in_offsets.len())
            + self.directory.len() * std::mem::size_of::<PageMeta>()
            + (self.out_first_nodes.len() + self.in_first_nodes.len())
                * std::mem::size_of::<NodeId>()
    }

    fn locate(
        &self,
        v: NodeId,
        firsts: &[NodeId],
        page_base: usize,
        offsets: &[u64],
    ) -> (u32, std::ops::Range<usize>) {
        let p = firsts.partition_point(|&f| f <= v) - 1;
        let page_no = (page_base + p) as u32;
        let first = firsts[p];
        let base = offsets[first as usize];
        let lo = (offsets[v as usize] - base) as usize;
        let hi = (offsets[v as usize + 1] - base) as usize;
        (page_no, lo..hi)
    }

    /// The page and page-relative target range holding `v`'s out-neighbors.
    pub fn locate_out(&self, v: NodeId) -> (u32, std::ops::Range<usize>) {
        self.locate(v, &self.out_first_nodes, 0, &self.out_offsets)
    }

    /// The page and page-relative target range holding `v`'s in-neighbors.
    pub fn locate_in(&self, v: NodeId) -> (u32, std::ops::Range<usize>) {
        self.locate(
            v,
            &self.in_first_nodes,
            self.num_out_pages as usize,
            &self.in_offsets,
        )
    }

    /// Reads and validates one page (positioned read; no shared cursor, so
    /// concurrent reads never race).
    pub fn read_page(&self, page_no: u32) -> Result<PageData, StoreError> {
        let meta = self
            .directory
            .get(page_no as usize)
            .copied()
            .ok_or_else(|| corrupt(&self.path, format!("page {page_no} out of range")))?;
        if fault::check(fault::sites::PAGE_READ).is_some() {
            return Err(StoreError::io(
                &self.path,
                "read",
                fault::injected_io_error(fault::sites::PAGE_READ),
            ));
        }
        let mut buf = vec![0u8; meta.byte_len as usize];
        self.file
            .read_exact_at(&mut buf, meta.file_offset)
            .map_err(|e| StoreError::io(&self.path, "read", e))?;
        if buf.len() < PAGE_OVERHEAD {
            return Err(corrupt(&self.path, format!("page {page_no} too short")));
        }
        let body_end = buf.len() - 4;
        let stored = u32::from_le_bytes(buf[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&buf[..body_end]);
        if fault::check(fault::sites::PAGE_CRC).is_some() {
            return Err(corrupt(
                &self.path,
                format!("page {page_no} checksum mismatch (injected bit-rot)"),
            ));
        }
        if stored != computed {
            return Err(corrupt(
                &self.path,
                format!(
                    "page {page_no} checksum mismatch (stored {stored:#010x}, \
                     computed {computed:#010x})"
                ),
            ));
        }
        let first_node = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        let node_count = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        let edge_count = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
        if first_node != meta.first_node
            || node_count != meta.node_count
            || PAGE_OVERHEAD + 4 * edge_count != meta.byte_len as usize
        {
            return Err(corrupt(
                &self.path,
                format!("page {page_no} header disagrees with the directory"),
            ));
        }
        let mut targets = Vec::with_capacity(edge_count);
        for i in 0..edge_count {
            let at = 12 + 4 * i;
            targets.push(u32::from_le_bytes(
                buf[at..at + 4].try_into().expect("4 bytes"),
            ));
        }
        Ok(PageData {
            first_node,
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::barabasi_albert;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exactsim-pages-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_packs_greedily_and_covers_every_node() {
        // Degrees: 3, 1, 0, 2, 5 with a 4-target page capacity. Nodes 0, 1
        // fill the first page and the degree-0 node 2 rides along free.
        let offsets = [0u64, 3, 4, 4, 6, 11];
        let plan = plan_pages(&offsets, 4);
        assert_eq!(plan, vec![(0, 3), (3, 1), (4, 1)]);
        let covered: u64 = plan.iter().map(|&(_, c)| u64::from(c)).sum();
        assert_eq!(covered, 5);
        // A jumbo node (degree > cap) gets its own page.
        let offsets = [0u64, 10];
        assert_eq!(plan_pages(&offsets, 4), vec![(0, 1)]);
        // Empty graph: no pages.
        assert!(plan_pages(&[0u64], 4).is_empty());
    }

    #[test]
    fn page_file_round_trips_and_serves_neighbor_ranges() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("epoch-0.pages");
        let graph = barabasi_albert(300, 4, true, 11).unwrap();
        write_page_file(&path, &graph, 7, 64).unwrap();
        let fm = FileManager::open(&path).unwrap();
        assert_eq!(fm.epoch(), 7);
        assert_eq!(fm.num_nodes(), graph.num_nodes());
        assert_eq!(fm.num_edges(), graph.num_edges());
        assert!(fm.num_pages() > 2, "64-byte pages must split this graph");
        for v in 0..graph.num_nodes() as NodeId {
            for (locate, expect) in [
                (fm.locate_out(v), graph.out_neighbors(v)),
                (fm.locate_in(v), graph.in_neighbors(v)),
            ] {
                let (page_no, range) = locate;
                let page = fm.read_page(page_no).unwrap();
                assert_eq!(&page.targets[range], expect, "node {v}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("epoch-0.pages");
        let graph = barabasi_albert(100, 3, true, 3).unwrap();
        write_page_file(&path, &graph, 0, 64).unwrap();

        // Flip a byte in the header region.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileManager::open(&path),
            Err(StoreError::PageCorrupt { .. })
        ));

        // Flip a byte inside a page payload: the header validates, the page
        // read fails.
        write_page_file(&path, &graph, 0, 64).unwrap();
        let fm = FileManager::open(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 6;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let fm2 = FileManager::open(&path).unwrap();
        let last_page = (fm.num_pages() - 1) as u32;
        assert!(matches!(
            fm2.read_page(last_page),
            Err(StoreError::PageCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_graph_pages_cleanly() {
        let dir = tmp_dir("empty");
        let path = dir.join("epoch-0.pages");
        let graph = DiGraph::from_edges(0, &[]);
        write_page_file(&path, &graph, 0, DEFAULT_PAGE_BYTES).unwrap();
        let fm = FileManager::open(&path).unwrap();
        assert_eq!(fm.num_nodes(), 0);
        assert_eq!(fm.num_pages(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
