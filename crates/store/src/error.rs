//! Error type of the dynamic graph store.

use std::fmt;

/// Errors produced while staging edge updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An update named a node id outside the store's fixed node-id space.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The store's node count (ids are `0..num_nodes`).
        num_nodes: u64,
    },
    /// An update named a self-loop `v → v`, which the store rejects to match
    /// the preprocessing applied to the paper's datasets (see
    /// `exactsim_graph::builder::SelfLoopPolicy::Drop`).
    SelfLoop(
        /// The node the rejected loop was on.
        u64,
    ),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "node id {node} out of range for store with {num_nodes} nodes"
            ),
            StoreError::SelfLoop(v) => write!(f, "self-loop {v} -> {v} rejected"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offender() {
        let e = StoreError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        assert!(StoreError::SelfLoop(3).to_string().contains("3 -> 3"));
    }
}
