//! Error type of the dynamic graph store.

use std::fmt;
use std::path::PathBuf;

/// Errors produced while staging edge updates or operating the persistence
/// layer (snapshots + WAL; see [`crate::persist`]).
///
/// Every persistence failure is a typed variant — corrupt inputs (truncated
/// snapshots, bit-flipped checksums, wrong version headers, torn WAL
/// records) are *always* surfaced as errors, never as panics or silently
/// partial loads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An update named a node id outside the store's fixed node-id space.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The store's node count (ids are `0..num_nodes`).
        num_nodes: u64,
    },
    /// An update named a self-loop `v → v`, which the store rejects to match
    /// the preprocessing applied to the paper's datasets (see
    /// `exactsim_graph::builder::SelfLoopPolicy::Drop`).
    SelfLoop(
        /// The node the rejected loop was on.
        u64,
    ),
    /// An underlying filesystem operation failed. Carries the path and the
    /// rendered `io::Error` (the raw error is not `Clone`/`Eq`).
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The failed operation (`"open"`, `"write"`, `"sync"`, …).
        op: &'static str,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// A snapshot file failed validation: bad magic, a length that does not
    /// match its header, a checksum mismatch, or an undecodable graph
    /// payload.
    SnapshotCorrupt {
        /// The offending snapshot file.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// A snapshot or WAL file declared an on-disk format version this build
    /// does not speak.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version the file declared.
        found: u32,
        /// The version this build writes and reads.
        supported: u32,
    },
    /// A WAL record that is fully present in the file failed validation
    /// (checksum mismatch, malformed payload, or a non-consecutive epoch).
    /// Distinct from a *torn tail* — an incomplete final record, which
    /// recovery silently truncates as the expected residue of a crash
    /// mid-append.
    WalCorrupt {
        /// The WAL file.
        path: PathBuf,
        /// Byte offset of the offending record header.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A page file (the paged backend's on-disk CSR cache) failed
    /// validation: bad magic, a directory that disagrees with its header, or
    /// a page whose checksum or node range does not match.
    PageCorrupt {
        /// The offending page file.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// Every frame of the buffer pool is pinned, so a page fetch found no
    /// evictable victim after two full clock sweeps. The pool is sized too
    /// small for the number of concurrently live neighbor guards (the
    /// contract is a few guards per thread — size the pool to at least
    /// `threads + 1` pages).
    PoolExhausted {
        /// The pool's frame capacity.
        capacity: usize,
    },
    /// Growing the node-id space would push the node count past `NodeId`
    /// range (`u32`).
    NodeSpaceExhausted {
        /// Nodes requested by the staged growth.
        requested: u64,
        /// The current node count the growth was staged against.
        num_nodes: u64,
    },
    /// [`crate::GraphStore::open`] found no snapshot file in the directory.
    NoSnapshot {
        /// The directory that was searched.
        dir: PathBuf,
    },
    /// [`crate::GraphStore::create`] refused to initialize into a directory
    /// that already holds a store (snapshots or a WAL).
    StoreExists {
        /// The occupied directory.
        dir: PathBuf,
    },
    /// The data directory is already open in another live process (the
    /// WAL's advisory file lock is held). Two writers appending to one WAL
    /// would interleave epochs and corrupt it, so `create`/`open` refuse.
    Locked {
        /// The locked directory.
        dir: PathBuf,
    },
    /// A persistence operation ([`crate::GraphStore::save`], …) was invoked
    /// on an in-memory store that has no data directory.
    NotDurable,
    /// The `init` callback of [`crate::GraphStore::open_or_create`] failed
    /// to produce the initial graph (carries the caller's own message).
    InitFailed(
        /// Why the initial graph could not be built.
        String,
    ),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "node id {node} out of range for store with {num_nodes} nodes"
            ),
            StoreError::SelfLoop(v) => write!(f, "self-loop {v} -> {v} rejected"),
            StoreError::Io { path, op, message } => {
                write!(f, "io error ({op} {}): {message}", path.display())
            }
            StoreError::SnapshotCorrupt { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            StoreError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "unsupported on-disk format version {found} in {} (this build speaks {supported})",
                path.display()
            ),
            StoreError::WalCorrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt WAL record at byte {offset} of {}: {detail}",
                path.display()
            ),
            StoreError::PageCorrupt { path, detail } => {
                write!(f, "corrupt page file {}: {detail}", path.display())
            }
            StoreError::PoolExhausted { capacity } => write!(
                f,
                "buffer pool exhausted: all {capacity} frames pinned (pool too small \
                 for the number of live neighbor guards)"
            ),
            StoreError::NodeSpaceExhausted {
                requested,
                num_nodes,
            } => write!(
                f,
                "adding {requested} nodes to a store with {num_nodes} would overflow \
                 the u32 node-id space"
            ),
            StoreError::NoSnapshot { dir } => {
                write!(f, "no snapshot file found in {}", dir.display())
            }
            StoreError::StoreExists { dir } => write!(
                f,
                "directory {} already holds a store (refusing to overwrite)",
                dir.display()
            ),
            StoreError::Locked { dir } => write!(
                f,
                "data directory {} is locked by another live process",
                dir.display()
            ),
            StoreError::NotDurable => {
                write!(f, "store has no data directory (created in-memory)")
            }
            StoreError::InitFailed(msg) => {
                write!(f, "store initialization failed: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an `io::Error` with the path and operation it occurred on.
    pub(crate) fn io(path: &std::path::Path, op: &'static str, e: std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            op,
            message: e.to_string(),
        }
    }

    /// `true` iff this `GraphStore::open` failure means `dir` simply holds
    /// no store yet (an empty or not-yet-created directory) — the case
    /// where initializing a fresh store is appropriate. Corruption of an
    /// existing store is never in this class: initializing over it would
    /// destroy recoverable data. The one boot-path predicate shared by
    /// [`crate::GraphStore::open_or_create`] and server front-ends.
    pub fn means_no_store_yet(&self, dir: &std::path::Path) -> bool {
        match self {
            StoreError::NoSnapshot { .. } => true,
            StoreError::Io { .. } => !dir.exists(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offender() {
        let e = StoreError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        assert!(StoreError::SelfLoop(3).to_string().contains("3 -> 3"));
    }

    #[test]
    fn persistence_errors_carry_paths_and_details() {
        let e = StoreError::SnapshotCorrupt {
            path: PathBuf::from("/data/snapshot-3.snap"),
            detail: "checksum mismatch".to_string(),
        };
        assert!(e.to_string().contains("snapshot-3.snap"));
        assert!(e.to_string().contains("checksum mismatch"));

        let e = StoreError::UnsupportedVersion {
            path: PathBuf::from("/data/wal.log"),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("speaks 1"));

        let e = StoreError::WalCorrupt {
            path: PathBuf::from("/data/wal.log"),
            offset: 128,
            detail: "checksum mismatch".to_string(),
        };
        assert!(e.to_string().contains("byte 128"));

        assert!(StoreError::NotDurable.to_string().contains("in-memory"));
        let e = StoreError::NoSnapshot {
            dir: PathBuf::from("/data"),
        };
        assert!(e.to_string().contains("/data"));
    }
}
