//! A pinning buffer pool over page files.
//!
//! Classic disk-engine structure, read-only edition: a fixed number of
//! frames, a hash map from page keys to frames, pin counts, and a clock
//! (second-chance) replacer. Because the store never mutates published
//! pages, every frame is clean — eviction is a drop, never a write-back.
//!
//! One pool is shared across epochs of a paged [`crate::GraphStore`]: keys
//! are `(file_id, page_no)`, where each opened page file gets a unique id,
//! so after a commit the old epoch's pages simply age out under the clock
//! while the counters (hits/misses/evictions) stay monotonic — which is what
//! the `simrank_pool_*` Prometheus series require.
//!
//! ## Pinning
//!
//! [`BufferPool::fetch`] returns a [`PinnedPage`] that holds the frame's pin
//! count up until drop; pinned frames are never chosen by the replacer. The
//! page payload itself is additionally behind an `Arc`, so even a pool bug
//! could not invalidate a live reader — the pin's job is purely to keep the
//! *pool* honest about its working set. If every frame is pinned, `fetch`
//! fails with [`StoreError::PoolExhausted`] after two full sweeps instead of
//! deadlocking; callers hold at most a few guards per thread, so any pool of
//! at least `threads + 1` pages cannot hit this.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::StoreError;
use crate::pages::{FileManager, PageData};

use std::sync::Arc;

/// Identifies one page across every file the pool has seen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PageKey {
    file: u64,
    page: u32,
}

/// Multiply-xor hasher for [`PageKey`]. The pool lookup sits on every
/// neighbor access of every paged query, and the default SipHash is the
/// single largest cost on that path; page keys are tiny, fixed-shape and
/// not attacker-controlled, so a two-instruction mix is enough.
#[derive(Default)]
struct PageKeyHasher(u64);

impl std::hash::Hasher for PageKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PageKey hashes through the integer write methods")
    }

    fn write_u64(&mut self, v: u64) {
        // Fibonacci multiply + shift-xor: mixes the file id (high entropy in
        // low bits) and page number into all table-index bits.
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

struct Frame {
    key: Option<PageKey>,
    data: Option<Arc<PageData>>,
    ref_bit: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<PageKey, usize, BuildHasherDefault<PageKeyHasher>>,
    hand: usize,
}

/// A point-in-time view of the pool, for `stats` JSON and Prometheus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Frame capacity of the pool.
    pub capacity: u64,
    /// Frames currently holding a page.
    pub resident: u64,
    /// Frames currently pinned by live neighbor guards.
    pub pinned: u64,
    /// Fetches served from a resident frame (monotonic).
    pub hits: u64,
    /// Fetches that had to read the page file (monotonic).
    pub misses: u64,
    /// Resident pages dropped to make room (monotonic).
    pub evictions: u64,
}

impl PoolStats {
    /// Hit fraction of all fetches so far (`0.0` before any fetch).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The pinning, read-only buffer pool. See the module docs.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    /// Per-frame pin counts, outside the lock: a pin is taken under the
    /// lock (so the replacer's `pins == 0` check cannot race a new pin),
    /// but releasing one is a single atomic decrement — guard drop sits on
    /// every neighbor access and must not take the pool lock again. The
    /// only cross-thread race this allows is an unpin landing mid-sweep,
    /// which merely postpones that frame's eviction by one lap.
    pins: Box<[AtomicU32]>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("capacity", &stats.capacity)
            .field("resident", &stats.resident)
            .field("pinned", &stats.pinned)
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// A pool of `capacity` frames (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            capacity,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::default(),
                hand: 0,
            }),
            pins: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetches `page_no` of `fm`, pinning its frame until the returned guard
    /// drops. A miss reads the page under the pool lock (reads are short and
    /// page-sized; serializing them keeps the pool free of in-flight-read
    /// bookkeeping) and may evict one unpinned, unreferenced page.
    pub fn fetch(&self, fm: &FileManager, page_no: u32) -> Result<PinnedPage<'_>, StoreError> {
        let key = PageKey {
            file: fm.id(),
            page: page_no,
        };
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        if let Some(&idx) = inner.map.get(&key) {
            let frame = &mut inner.frames[idx];
            frame.ref_bit = true;
            let data = Arc::clone(frame.data.as_ref().expect("mapped frame holds data"));
            self.pins[idx].fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PinnedPage {
                pool: self,
                frame: idx,
                data,
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                key: None,
                data: None,
                ref_bit: false,
            });
            inner.frames.len() - 1
        } else {
            // Clock sweep: skip pinned frames, clear one reference bit per
            // visit, give up (typed error, no deadlock) after two laps.
            let mut chosen = None;
            for _ in 0..2 * self.capacity {
                let i = inner.hand;
                inner.hand = (inner.hand + 1) % self.capacity;
                if self.pins[i].load(Ordering::Acquire) > 0 {
                    continue;
                }
                let frame = &mut inner.frames[i];
                if frame.ref_bit {
                    frame.ref_bit = false;
                    continue;
                }
                chosen = Some(i);
                break;
            }
            chosen.ok_or(StoreError::PoolExhausted {
                capacity: self.capacity,
            })?
        };
        let data = Arc::new(fm.read_page(page_no)?);
        let evicted = {
            let frame = &mut inner.frames[idx];
            let old = frame.key.take();
            frame.key = Some(key);
            frame.data = Some(Arc::clone(&data));
            self.pins[idx].fetch_add(1, Ordering::Relaxed);
            frame.ref_bit = true;
            old
        };
        if let Some(old) = evicted {
            inner.map.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.map.insert(key, idx);
        Ok(PinnedPage {
            pool: self,
            frame: idx,
            data,
        })
    }

    fn unpin(&self, frame: usize) {
        let prev = self.pins[frame].fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "unpin without a pin");
    }

    /// Current pool statistics.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("buffer pool poisoned");
        PoolStats {
            capacity: self.capacity as u64,
            resident: inner.frames.iter().filter(|f| f.data.is_some()).count() as u64,
            pinned: self.pins[..inner.frames.len()]
                .iter()
                .filter(|p| p.load(Ordering::Relaxed) > 0)
                .count() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes of decoded page payloads currently resident.
    pub fn resident_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("buffer pool poisoned");
        inner
            .frames
            .iter()
            .filter_map(|f| f.data.as_ref())
            .map(|d| d.resident_bytes())
            .sum()
    }
}

/// A pinned page: keeps its frame un-evictable until dropped and hands out
/// the decoded payload.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    frame: usize,
    data: Arc<PageData>,
}

impl PinnedPage<'_> {
    /// The decoded page payload.
    pub fn data(&self) -> &Arc<PageData> {
        &self.data
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::write_page_file;
    use exactsim_graph::generators::barabasi_albert;
    use std::path::PathBuf;

    fn page_file(tag: &str) -> (PathBuf, FileManager) {
        let dir =
            std::env::temp_dir().join(format!("exactsim-buffer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch-0.pages");
        let graph = barabasi_albert(200, 3, true, 5).unwrap();
        write_page_file(&path, &graph, 0, 64).unwrap();
        let fm = FileManager::open(&path).unwrap();
        (dir, fm)
    }

    #[test]
    fn hits_misses_and_evictions_are_counted() {
        let (dir, fm) = page_file("counts");
        let pages = fm.num_pages() as u32;
        assert!(pages >= 4, "need several pages, got {pages}");
        let pool = BufferPool::new(2);
        // Cold fetches of two pages: misses.
        drop(pool.fetch(&fm, 0).unwrap());
        drop(pool.fetch(&fm, 1).unwrap());
        // Refetch: hit.
        drop(pool.fetch(&fm, 0).unwrap());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        // Touch every page with a 2-frame pool: evictions must happen.
        for p in 0..pages {
            drop(pool.fetch(&fm, p).unwrap());
        }
        let s = pool.stats();
        assert!(s.evictions > 0);
        assert_eq!(s.resident, 2);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (dir, fm) = page_file("pins");
        let pool = BufferPool::new(2);
        let guard0 = pool.fetch(&fm, 0).unwrap();
        let first_targets: Vec<_> = guard0.data().targets.clone();
        // Cycle many other pages through the remaining frame.
        for p in 1..fm.num_pages() as u32 {
            drop(pool.fetch(&fm, p).unwrap());
        }
        // Page 0 must still be resident and intact.
        assert_eq!(guard0.data().targets, first_targets);
        let s = pool.stats();
        assert_eq!(s.pinned, 1);
        let refetch = pool.fetch(&fm, 0).unwrap();
        assert_eq!(refetch.data().targets, first_targets);
        drop(refetch);
        drop(guard0);
        assert_eq!(pool.stats().pinned, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_pool_errors_instead_of_deadlocking() {
        let (dir, fm) = page_file("exhaust");
        let pool = BufferPool::new(2);
        let _g0 = pool.fetch(&fm, 0).unwrap();
        let _g1 = pool.fetch(&fm, 1).unwrap();
        assert!(matches!(
            pool.fetch(&fm, 2),
            Err(StoreError::PoolExhausted { capacity: 2 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
