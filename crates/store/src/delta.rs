//! The staged edge-delta buffer.
//!
//! A [`DeltaBuffer`] accumulates edge insertions and deletions *relative to a
//! base graph* between commits. It maintains set semantics: an insertion of
//! an edge already present in the base is a no-op, a deletion cancels a
//! pending insertion of the same edge (and vice versa), and duplicates
//! collapse. Both sides are kept in `BTreeSet`s so the commit path can hand
//! sorted, duplicate-free slices straight to
//! [`exactsim_graph::DiGraph::apply_delta`].

use std::collections::BTreeSet;

use exactsim_graph::{NeighborAccess, NodeId};

#[cfg(test)]
use exactsim_graph::DiGraph;

/// A sorted, duplicate-free edge list, as produced by [`DeltaBuffer::drain`]
/// and consumed by [`exactsim_graph::DiGraph::apply_delta`].
pub type EdgeList = Vec<(NodeId, NodeId)>;

/// What staging one edge update did to the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Staged {
    /// The update changed the pending delta (it will take effect on commit).
    Pending,
    /// The update cancelled the opposite pending update for the same edge,
    /// restoring the base graph's state for it.
    Cancelled,
    /// The update was a no-op: the base graph (plus the pending delta)
    /// already has the requested state for this edge.
    NoOp,
}

impl Staged {
    /// `true` unless the update was a [`Staged::NoOp`].
    pub fn changed(self) -> bool {
        !matches!(self, Staged::NoOp)
    }
}

/// Pending, deduplicated edge updates against a base graph, plus pending
/// node-id-space growth (`addnode`).
#[derive(Clone, Debug, Default)]
pub struct DeltaBuffer {
    insertions: BTreeSet<(NodeId, NodeId)>,
    deletions: BTreeSet<(NodeId, NodeId)>,
    /// Nodes to append at the top of the id space on the next commit. New
    /// nodes are born isolated; staged insertions may reference them (their
    /// ids are `base_n .. base_n + added_nodes`).
    added_nodes: u64,
}

impl DeltaBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` iff `base` has the edge `u → v`. Endpoints beyond `base`'s
    /// node space (legal when they point at staged-but-uncommitted new
    /// nodes) are never present.
    fn base_has_edge<G: NeighborAccess>(base: &G, u: NodeId, v: NodeId) -> bool {
        let n = base.num_nodes() as u64;
        u64::from(u) < n && u64::from(v) < n && base.has_edge(u, v)
    }

    /// Stages the insertion of `u → v` against `base`.
    pub fn stage_insert<G: NeighborAccess>(&mut self, base: &G, u: NodeId, v: NodeId) -> Staged {
        if self.deletions.remove(&(u, v)) {
            return Staged::Cancelled;
        }
        if Self::base_has_edge(base, u, v) || !self.insertions.insert((u, v)) {
            return Staged::NoOp;
        }
        Staged::Pending
    }

    /// Stages the deletion of `u → v` against `base`.
    pub fn stage_delete<G: NeighborAccess>(&mut self, base: &G, u: NodeId, v: NodeId) -> Staged {
        if self.insertions.remove(&(u, v)) {
            return Staged::Cancelled;
        }
        if !Self::base_has_edge(base, u, v) || !self.deletions.insert((u, v)) {
            return Staged::NoOp;
        }
        Staged::Pending
    }

    /// Stages the growth of the node-id space by `count` nodes, returning
    /// the total pending growth. Range validation against `NodeId` happens
    /// in the store, which knows the base node count.
    pub fn stage_add_nodes(&mut self, count: u64) -> u64 {
        self.added_nodes += count;
        self.added_nodes
    }

    /// Total nodes pending addition.
    pub fn added_nodes(&self) -> u64 {
        self.added_nodes
    }

    /// Number of pending insertions.
    pub fn num_insertions(&self) -> usize {
        self.insertions.len()
    }

    /// Number of pending deletions.
    pub fn num_deletions(&self) -> usize {
        self.deletions.len()
    }

    /// `true` if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty() && self.added_nodes == 0
    }

    /// Drops every staged update (including pending node growth).
    pub fn clear(&mut self) {
        self.insertions.clear();
        self.deletions.clear();
        self.added_nodes = 0;
    }

    /// Drains the buffer into sorted, duplicate-free `(insertions, deletions)`
    /// edge lists ready for [`exactsim_graph::DiGraph::apply_delta`]. Pending node growth is
    /// reset too (read it first with [`DeltaBuffer::added_nodes`]).
    pub fn drain(&mut self) -> (EdgeList, EdgeList) {
        self.added_nodes = 0;
        (
            std::mem::take(&mut self.insertions).into_iter().collect(),
            std::mem::take(&mut self.deletions).into_iter().collect(),
        )
    }

    /// Copies the buffer into sorted, duplicate-free `(insertions, deletions)`
    /// edge lists *without* draining it. The durable commit path uses this to
    /// write the WAL record first and clear the buffer only once the record
    /// is safely on disk — a failed append leaves the staged delta intact.
    pub fn lists(&self) -> (EdgeList, EdgeList) {
        (
            self.insertions.iter().copied().collect(),
            self.deletions.iter().copied().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn insert_then_delete_cancels_out() {
        let g = base();
        let mut d = DeltaBuffer::new();
        assert_eq!(d.stage_insert(&g, 0, 1), Staged::Pending);
        assert_eq!(d.stage_delete(&g, 0, 1), Staged::Cancelled);
        assert!(d.is_empty());
    }

    #[test]
    fn delete_then_insert_cancels_out() {
        let g = base();
        let mut d = DeltaBuffer::new();
        assert_eq!(d.stage_delete(&g, 0, 2), Staged::Pending);
        assert_eq!(d.stage_insert(&g, 0, 2), Staged::Cancelled);
        assert!(d.is_empty());
    }

    #[test]
    fn duplicates_and_existing_state_are_noops() {
        let g = base();
        let mut d = DeltaBuffer::new();
        assert_eq!(
            d.stage_insert(&g, 0, 2),
            Staged::NoOp,
            "edge already in base"
        );
        assert_eq!(
            d.stage_delete(&g, 0, 1),
            Staged::NoOp,
            "edge absent from base"
        );
        assert_eq!(d.stage_insert(&g, 0, 1), Staged::Pending);
        assert_eq!(d.stage_insert(&g, 0, 1), Staged::NoOp, "duplicate insert");
        assert_eq!(d.stage_delete(&g, 3, 0), Staged::Pending);
        assert_eq!(d.stage_delete(&g, 3, 0), Staged::NoOp, "duplicate delete");
        assert_eq!(d.num_insertions(), 1);
        assert_eq!(d.num_deletions(), 1);
        assert!(Staged::Pending.changed());
        assert!(Staged::Cancelled.changed());
        assert!(!Staged::NoOp.changed());
    }

    #[test]
    fn drain_yields_sorted_unique_lists_and_empties_the_buffer() {
        let g = base();
        let mut d = DeltaBuffer::new();
        d.stage_insert(&g, 2, 0);
        d.stage_insert(&g, 0, 1);
        d.stage_delete(&g, 3, 0);
        d.stage_delete(&g, 1, 2);
        let (ins, del) = d.drain();
        assert_eq!(ins, vec![(0, 1), (2, 0)]);
        assert_eq!(del, vec![(1, 2), (3, 0)]);
        assert!(d.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let g = base();
        let mut d = DeltaBuffer::new();
        d.stage_insert(&g, 0, 1);
        d.stage_delete(&g, 0, 2);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.num_insertions() + d.num_deletions(), 0);
    }
}
