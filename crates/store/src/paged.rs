//! [`PagedGraph`]: a [`NeighborAccess`] backend that streams adjacency from
//! a page file through a pinning [`BufferPool`].
//!
//! Only the global offsets arrays, the page directory, and up to
//! `pool_pages` decoded pages are resident; everything else stays on disk.
//! A solver generic over `G: NeighborAccess` runs against this backend
//! unchanged and — because pages store exactly the same sorted neighbor
//! lists as the in-memory CSR — produces bit-identical score vectors, which
//! the in-memory-vs-paged equivalence tests pin across all five solvers.
//!
//! ## Panics
//!
//! `NeighborAccess` has no error channel (the in-memory fast path must stay
//! a plain slice return), so I/O failures and pool exhaustion inside
//! `out_neighbors`/`in_neighbors` panic with the underlying [`StoreError`].
//! Both are deployment faults, not data states: a page file is a rebuildable
//! cache of a durably-stored epoch, and pool exhaustion means the pool was
//! sized below `threads + 1` pages.

use std::ops::{Deref, Range};
use std::path::Path;
use std::sync::Arc;

use exactsim_graph::{CsrAdjacency, DiGraph, NeighborAccess, NodeId};

use crate::buffer::{BufferPool, PinnedPage, PoolStats};
use crate::error::StoreError;
use crate::pages::{write_page_file, FileManager, PageData};

/// A graph served from a page file through a shared buffer pool.
#[derive(Debug)]
pub struct PagedGraph {
    fm: FileManager,
    pool: Arc<BufferPool>,
}

impl PagedGraph {
    /// Writes the page-file image of `graph` at `epoch` to `path`. See
    /// [`crate::pages::write_page_file`].
    pub fn build(
        path: &Path,
        graph: &DiGraph,
        epoch: u64,
        page_bytes: usize,
    ) -> Result<(), StoreError> {
        write_page_file(path, graph, epoch, page_bytes)
    }

    /// Opens a page file and serves it through `pool`. The pool may be
    /// shared with other epochs' paged graphs; page keys never collide.
    pub fn open(path: &Path, pool: Arc<BufferPool>) -> Result<Self, StoreError> {
        Ok(PagedGraph {
            fm: FileManager::open(path)?,
            pool,
        })
    }

    /// The epoch this page file images.
    pub fn epoch(&self) -> u64 {
        self.fm.epoch()
    }

    /// Total pages across both orientations.
    pub fn num_pages(&self) -> usize {
        self.fm.num_pages()
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Current buffer-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The underlying page file's path.
    pub fn path(&self) -> &Path {
        self.fm.path()
    }

    /// Rebuilds the full in-memory [`DiGraph`] by streaming every page once,
    /// bypassing the pool (a sequential scan must not wipe the working set).
    /// This is the commit path's transient materialization — it costs
    /// `O(graph)` memory for its duration.
    pub fn materialize(&self) -> Result<DiGraph, StoreError> {
        let m = self.fm.num_edges();
        let narrow =
            |offsets: &[u64]| -> Vec<usize> { offsets.iter().map(|&o| o as usize).collect() };
        let mut out_targets: Vec<NodeId> = Vec::with_capacity(m);
        let mut in_targets: Vec<NodeId> = Vec::with_capacity(m);
        for page_no in 0..self.fm.num_pages() as u32 {
            let page = self.fm.read_page(page_no)?;
            // Pages are laid out in node order, out orientation first, so
            // straight concatenation reproduces both target arrays.
            if (page_no as usize) < self.fm.num_out_pages() {
                out_targets.extend_from_slice(&page.targets);
            } else {
                in_targets.extend_from_slice(&page.targets);
            }
        }
        let out = CsrAdjacency::from_raw_parts(narrow(self.fm.out_offsets()), out_targets);
        let in_ = CsrAdjacency::from_raw_parts(narrow(self.fm.in_offsets()), in_targets);
        Ok(DiGraph::from_csr(out, in_))
    }

    fn neighbors(&self, page_no: u32, range: Range<usize>) -> PagedNeighbors<'_> {
        if range.is_empty() {
            return PagedNeighbors { page: None, range };
        }
        let file = self.fm.id();
        // Fast path: the thread's last page. Adjacency reads have strong run
        // locality — consecutive nodes share a page — and a memo hit is a
        // TLS compare plus an `Arc` bump instead of a pool round-trip. The
        // memoized payload is held alive by its own `Arc`, so a concurrent
        // eviction of the underlying frame cannot invalidate it; the pool's
        // hit/miss counters only see the accesses that actually reach it.
        let memo = LAST_PAGE.with(|m| {
            m.borrow()
                .as_ref()
                .and_then(|(f, p, data)| ((*f, *p) == (file, page_no)).then(|| Arc::clone(data)))
        });
        if let Some(data) = memo {
            return PagedNeighbors {
                page: Some(PageRef::Memo(data)),
                range,
            };
        }
        let guard = self
            .pool
            .fetch(&self.fm, page_no)
            .unwrap_or_else(|e| panic!("paged graph adjacency read failed: {e}"));
        LAST_PAGE.with(|m| {
            *m.borrow_mut() = Some((file, page_no, Arc::clone(guard.data())));
        });
        PagedNeighbors {
            page: Some(PageRef::Pinned(guard)),
            range,
        }
    }
}

thread_local! {
    /// The thread's most recently fetched page: `(file id, page no,
    /// payload)`. One entry is deliberate — it serves the same-page runs of
    /// sequential adjacency scans, and any reuse beyond that is the buffer
    /// pool's job.
    static LAST_PAGE: std::cell::RefCell<Option<(u64, u32, Arc<PageData>)>> =
        const { std::cell::RefCell::new(None) };
}

/// How a [`PagedNeighbors`] guard holds its page.
enum PageRef<'a> {
    /// Fetched from the pool this access; pins the frame until drop.
    Pinned(PinnedPage<'a>),
    /// Served from the thread's last-page memo; the payload outlives any
    /// eviction because the memo shares ownership of it.
    Memo(Arc<PageData>),
}

/// The guard returned by [`PagedGraph`]'s neighbor accessors: keeps its page
/// alive (pinning the pool frame when it came from the pool) for the guard's
/// lifetime and derefs to the node's slice of the page. Empty neighbor lists
/// skip the pool entirely.
pub struct PagedNeighbors<'a> {
    page: Option<PageRef<'a>>,
    range: Range<usize>,
}

impl Deref for PagedNeighbors<'_> {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        match &self.page {
            Some(PageRef::Pinned(guard)) => &guard.data().targets[self.range.clone()],
            Some(PageRef::Memo(data)) => &data.targets[self.range.clone()],
            None => &[],
        }
    }
}

impl NeighborAccess for PagedGraph {
    type Neighbors<'a> = PagedNeighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        self.fm.num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.fm.num_edges()
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        let offsets = self.fm.out_offsets();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        let offsets = self.fm.in_offsets();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }

    fn out_neighbors(&self, v: NodeId) -> PagedNeighbors<'_> {
        let (page_no, range) = self.fm.locate_out(v);
        self.neighbors(page_no, range)
    }

    fn in_neighbors(&self, v: NodeId) -> PagedNeighbors<'_> {
        let (page_no, range) = self.fm.locate_in(v);
        self.neighbors(page_no, range)
    }

    fn resident_bytes(&self) -> usize {
        self.fm.resident_bytes() + self.pool.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::barabasi_albert;
    use std::path::PathBuf;

    fn paged(tag: &str, pool_pages: usize) -> (PathBuf, DiGraph, PagedGraph) {
        let dir = std::env::temp_dir().join(format!("exactsim-paged-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch-0.pages");
        let graph = barabasi_albert(400, 4, true, 23).unwrap();
        PagedGraph::build(&path, &graph, 0, 64).unwrap();
        let paged = PagedGraph::open(&path, Arc::new(BufferPool::new(pool_pages))).unwrap();
        (dir, graph, paged)
    }

    #[test]
    fn adjacency_matches_the_in_memory_graph_exactly() {
        let (dir, graph, paged) = paged("match", 8);
        assert_eq!(NeighborAccess::num_nodes(&paged), graph.num_nodes());
        assert_eq!(NeighborAccess::num_edges(&paged), graph.num_edges());
        for v in 0..graph.num_nodes() as NodeId {
            assert_eq!(paged.out_degree(v), graph.out_degree(v));
            assert_eq!(paged.in_degree(v), graph.in_degree(v));
            assert_eq!(&*paged.out_neighbors(v), graph.out_neighbors(v));
            assert_eq!(&*paged.in_neighbors(v), graph.in_neighbors(v));
            assert_eq!(
                NeighborAccess::has_edge(&paged, v, (v + 1) % graph.num_nodes() as NodeId),
                graph.has_edge(v, (v + 1) % graph.num_nodes() as NodeId)
            );
        }
        // A pool far smaller than the page count must have evicted.
        assert!(paged.num_pages() > 8);
        assert!(paged.pool_stats().evictions > 0);
        assert!(paged.resident_bytes() < graph.memory_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn materialize_round_trips_bit_identically() {
        let (dir, graph, paged) = paged("mat", 4);
        let rebuilt = paged.materialize().unwrap();
        assert_eq!(rebuilt.out_csr(), graph.out_csr());
        assert_eq!(rebuilt.in_csr(), graph.in_csr());
        assert!(rebuilt.validate());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
