//! [`GraphHandle`]: the store's published graph, behind either backend.
//!
//! A [`crate::GraphStore`] publishes each epoch as a `GraphHandle` — a cheap
//! clonable handle that is either the in-memory CSR (`Mem`, the zero-overhead
//! fast path) or a buffer-pool-backed page file (`Paged`, for graphs whose
//! working set exceeds RAM). The handle implements [`NeighborAccess`], so
//! every solver takes it directly; the enum dispatch sits outside the
//! per-neighbor hot loop for `Mem` (the returned guard *is* the slice).

use std::ops::Deref;
use std::sync::Arc;

use exactsim_graph::{DiGraph, NeighborAccess, NodeId};

use crate::error::StoreError;
use crate::paged::{PagedGraph, PagedNeighbors};

/// A published graph: in-memory CSR or paged. Cloning clones an `Arc`.
#[derive(Clone, Debug)]
pub enum GraphHandle {
    /// The whole graph resident in RAM (the default, zero-overhead backend).
    Mem(Arc<DiGraph>),
    /// Adjacency streamed from a page file through a pinning buffer pool.
    Paged(Arc<PagedGraph>),
}

impl GraphHandle {
    /// `Some` iff this handle is the in-memory backend.
    pub fn as_mem(&self) -> Option<&Arc<DiGraph>> {
        match self {
            GraphHandle::Mem(g) => Some(g),
            GraphHandle::Paged(_) => None,
        }
    }

    /// `Some` iff this handle is the paged backend.
    pub fn as_paged(&self) -> Option<&Arc<PagedGraph>> {
        match self {
            GraphHandle::Paged(g) => Some(g),
            GraphHandle::Mem(_) => None,
        }
    }

    /// The full in-memory graph: the existing `Arc` for `Mem`, a transient
    /// `O(graph)`-memory rebuild for `Paged` (the commit/compaction path).
    pub fn materialize(&self) -> Result<Arc<DiGraph>, StoreError> {
        match self {
            GraphHandle::Mem(g) => Ok(Arc::clone(g)),
            GraphHandle::Paged(p) => Ok(Arc::new(p.materialize()?)),
        }
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        NeighborAccess::num_nodes(self)
    }

    /// Edge count.
    pub fn num_edges(&self) -> usize {
        NeighborAccess::num_edges(self)
    }

    /// `true` iff the edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        NeighborAccess::has_edge(self, u, v)
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        NeighborAccess::in_degree(self, v)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        NeighborAccess::out_degree(self, v)
    }

    /// Structural self-check (both orientations agree). `O(m log m)`, for
    /// tests; the paged backend materializes transiently.
    pub fn validate(&self) -> bool {
        match self {
            GraphHandle::Mem(g) => g.validate(),
            GraphHandle::Paged(p) => p.materialize().map(|g| g.validate()).unwrap_or(false),
        }
    }
}

/// The neighbor guard of a [`GraphHandle`]: a plain slice for `Mem`, a
/// buffer-pool pin guard for `Paged`.
pub enum HandleNeighbors<'a> {
    /// Borrowed straight from the in-memory CSR.
    Mem(&'a [NodeId]),
    /// Pinned page range.
    Paged(PagedNeighbors<'a>),
}

impl Deref for HandleNeighbors<'_> {
    type Target = [NodeId];

    #[inline]
    fn deref(&self) -> &[NodeId] {
        match self {
            HandleNeighbors::Mem(s) => s,
            HandleNeighbors::Paged(g) => g,
        }
    }
}

impl NeighborAccess for GraphHandle {
    type Neighbors<'a> = HandleNeighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        match self {
            GraphHandle::Mem(g) => g.num_nodes(),
            GraphHandle::Paged(p) => NeighborAccess::num_nodes(&**p),
        }
    }

    #[inline]
    fn num_edges(&self) -> usize {
        match self {
            GraphHandle::Mem(g) => g.num_edges(),
            GraphHandle::Paged(p) => NeighborAccess::num_edges(&**p),
        }
    }

    #[inline]
    fn out_degree(&self, v: NodeId) -> usize {
        match self {
            GraphHandle::Mem(g) => g.out_degree(v),
            GraphHandle::Paged(p) => NeighborAccess::out_degree(&**p, v),
        }
    }

    #[inline]
    fn in_degree(&self, v: NodeId) -> usize {
        match self {
            GraphHandle::Mem(g) => g.in_degree(v),
            GraphHandle::Paged(p) => NeighborAccess::in_degree(&**p, v),
        }
    }

    #[inline]
    fn out_neighbors(&self, v: NodeId) -> HandleNeighbors<'_> {
        match self {
            GraphHandle::Mem(g) => HandleNeighbors::Mem(g.out_neighbors(v)),
            GraphHandle::Paged(p) => HandleNeighbors::Paged(p.out_neighbors(v)),
        }
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> HandleNeighbors<'_> {
        match self {
            GraphHandle::Mem(g) => HandleNeighbors::Mem(g.in_neighbors(v)),
            GraphHandle::Paged(p) => HandleNeighbors::Paged(p.in_neighbors(v)),
        }
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self {
            GraphHandle::Mem(g) => g.has_edge(u, v),
            GraphHandle::Paged(p) => NeighborAccess::has_edge(&**p, u, v),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            GraphHandle::Mem(g) => g.memory_bytes(),
            GraphHandle::Paged(p) => NeighborAccess::resident_bytes(&**p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;

    #[test]
    fn mem_and_paged_handles_agree_through_the_trait() {
        let dir = std::env::temp_dir().join(format!("exactsim-handle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch-0.pages");
        let graph = Arc::new(DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)]));
        PagedGraph::build(&path, &graph, 0, 8).unwrap();
        let paged = PagedGraph::open(&path, Arc::new(BufferPool::new(2))).unwrap();
        let mem = GraphHandle::Mem(Arc::clone(&graph));
        let paged = GraphHandle::Paged(Arc::new(paged));
        for h in [&mem, &paged] {
            assert_eq!(h.num_nodes(), 4);
            assert_eq!(h.num_edges(), 4);
            assert!(h.has_edge(0, 2));
            assert!(!h.has_edge(2, 0));
            assert_eq!(h.in_degree(2), 2);
            assert!(h.validate());
            let ins: Vec<NodeId> = h.in_neighbors(2).iter().copied().collect();
            assert_eq!(ins, vec![0, 1]);
        }
        assert_eq!(
            mem.materialize().unwrap().out_csr(),
            paged.materialize().unwrap().out_csr()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
