//! # exactsim-store
//!
//! An epoch-based dynamic graph store for the ExactSim serving stack, with
//! optional crash-recoverable on-disk persistence.
//!
//! Everything behind `Arc<DiGraph>` in the algorithm and serving layers is
//! immutable — the right call for query speed, but a serving system must
//! also absorb a continuous stream of edge arrivals and removals. The store
//! resolves that tension with the classic snapshot/epoch scheme used by
//! systems that answer queries under updates: updates are cheap against a
//! mutable *delta buffer*, while queries run against an immutable published
//! *snapshot*; a `commit` folds the delta into a new snapshot and atomically
//! republishes it under the next epoch.
//!
//! | type | role |
//! |---|---|
//! | [`GraphStore`] | owns the published [`GraphHandle`] + epoch, stages updates, commits |
//! | [`GraphHandle`] | the published graph behind either backend: in-memory CSR or paged |
//! | [`DeltaBuffer`] | sorted, deduplicated pending insert/delete sets + staged node growth |
//! | [`GraphSnapshot`] | a consistent `(graph, epoch)` pair readers pin |
//! | [`CommitReport`] | what a commit materialized (epoch, counts, build time) |
//! | [`CommitTimings`] | per-stage commit breakdown (staging, CSR merge, WAL append, fsync, publish) |
//! | [`persist`] | snapshot files + delta WAL: formats, recovery, compaction |
//! | [`pages`] | the paged backend's on-disk page-file format |
//! | [`BufferPool`] | pinning clock-replacement page cache shared across epochs |
//! | [`PagedGraph`] | `NeighborAccess` backend streaming adjacency through the pool |
//! | [`DurabilityInfo`] | operator-visible durable state (data dir, WAL length, snapshot epoch) |
//!
//! ## Guarantees
//!
//! * **Readers never block.** A snapshot is two pointer-sized reads under a
//!   briefly-held read lock; commits materialize the new CSR *outside* the
//!   publication lock and swap with a single pointer assignment.
//! * **Snapshots are immutable.** In-flight queries finish on the graph they
//!   started on; the epoch they captured identifies it exactly.
//! * **Epochs are monotonic.** Every effective commit bumps the epoch by
//!   one; an empty commit publishes nothing. Cache layers can therefore use
//!   the epoch as an invalidation generation.
//! * **Deltas have set semantics.** Inserting a present edge or deleting an
//!   absent one is a no-op; opposite updates to the same edge cancel;
//!   endpoints are validated against the node-id space (including staged
//!   [`GraphStore::stage_add_nodes`] growth) and self-loops are rejected
//!   (matching the dataset preprocessing used throughout the reproduction).
//! * **Durable commits survive restarts.** On a store with a data directory
//!   ([`GraphStore::create`] / [`GraphStore::open`]), a commit appends its
//!   delta to an fsynced write-ahead log *before* publishing, and recovery
//!   replays the newest valid snapshot plus the WAL to the last
//!   fully-committed epoch — torn tails are truncated, corrupt records and
//!   snapshots are rejected with typed [`StoreError`]s, never a panic or a
//!   silent partial load. See [`persist`] for the on-disk formats and the
//!   recovery protocol.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use exactsim_graph::DiGraph;
//! use exactsim_store::GraphStore;
//!
//! let store = GraphStore::new(Arc::new(DiGraph::from_edges(
//!     4,
//!     &[(0, 2), (1, 2), (2, 3), (3, 0)],
//! )));
//! let before = store.snapshot(); // epoch 0
//!
//! store.stage_insert(0, 1).unwrap();
//! store.stage_delete(2, 3).unwrap();
//! let report = store.commit().unwrap();
//! assert_eq!(report.epoch, 1);
//!
//! // New readers see the new graph; the old snapshot is untouched.
//! assert!(store.graph().has_edge(0, 1));
//! assert!(!before.graph.has_edge(0, 1));
//! ```
//!
//! ## Storage backends
//!
//! The store publishes each epoch behind a [`GraphHandle`]: either the
//! in-memory CSR (`Mem`, the default zero-overhead path) or a *paged*
//! backend ([`GraphStore::with_paging`]) that images the epoch as a page
//! file and streams adjacency through a pinning [`BufferPool`] — serving
//! graphs whose CSR exceeds RAM. Pages hold exactly the same sorted
//! neighbor lists as the in-memory CSR, so solver output is bit-identical
//! across backends. Page files are rebuildable caches; durability rests
//! solely on the snapshot + WAL.
//!
//! ## Durable example
//!
//! ```
//! use std::sync::Arc;
//! use exactsim_graph::DiGraph;
//! use exactsim_store::GraphStore;
//!
//! let dir = std::env::temp_dir().join(format!("exactsim-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let graph = Arc::new(DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)]));
//! let store = GraphStore::create(&dir, graph).unwrap();
//! store.stage_insert(0, 1).unwrap();
//! store.commit().unwrap(); // fsynced to the WAL before publication
//! drop(store); // "crash"
//!
//! let recovered = GraphStore::open(&dir).unwrap();
//! assert_eq!(recovered.epoch(), 1);
//! assert!(recovered.graph().has_edge(0, 1));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod buffer;
pub mod delta;
pub mod error;
pub mod handle;
pub mod paged;
pub mod pages;
pub mod persist;
pub mod store;

pub use buffer::{BufferPool, PinnedPage, PoolStats};
pub use delta::{DeltaBuffer, Staged};
pub use error::StoreError;
pub use handle::{GraphHandle, HandleNeighbors};
pub use paged::{PagedGraph, PagedNeighbors};
pub use pages::DEFAULT_PAGE_BYTES;
pub use persist::DurabilityInfo;
pub use store::{
    CommitReport, CommitTimings, GraphSnapshot, GraphStore, Opened, PagedOptions,
    DEFAULT_COMPACT_EVERY,
};
