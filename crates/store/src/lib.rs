//! # exactsim-store
//!
//! An epoch-based dynamic graph store for the ExactSim serving stack.
//!
//! Everything behind `Arc<DiGraph>` in the algorithm and serving layers is
//! immutable — the right call for query speed, but a serving system must
//! also absorb a continuous stream of edge arrivals and removals. The store
//! resolves that tension with the classic snapshot/epoch scheme used by
//! systems that answer queries under updates: updates are cheap against a
//! mutable *delta buffer*, while queries run against an immutable published
//! *snapshot*; a `commit` folds the delta into a new snapshot and atomically
//! republishes it under the next epoch.
//!
//! | type | role |
//! |---|---|
//! | [`GraphStore`] | owns the published `Arc<DiGraph>` + epoch, stages updates, commits |
//! | [`DeltaBuffer`] | sorted, deduplicated pending insert/delete sets |
//! | [`GraphSnapshot`] | a consistent `(graph, epoch)` pair readers pin |
//! | [`CommitReport`] | what a commit materialized (epoch, counts, build time) |
//!
//! ## Guarantees
//!
//! * **Readers never block.** A snapshot is two pointer-sized reads under a
//!   briefly-held read lock; commits materialize the new CSR *outside* the
//!   publication lock and swap with a single pointer assignment.
//! * **Snapshots are immutable.** In-flight queries finish on the graph they
//!   started on; the epoch they captured identifies it exactly.
//! * **Epochs are monotonic.** Every effective commit bumps the epoch by
//!   one; an empty commit publishes nothing. Cache layers can therefore use
//!   the epoch as an invalidation generation.
//! * **Deltas have set semantics.** Inserting a present edge or deleting an
//!   absent one is a no-op; opposite updates to the same edge cancel;
//!   endpoints are validated against the fixed node-id space and self-loops
//!   are rejected (matching the dataset preprocessing used throughout the
//!   reproduction).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use exactsim_graph::DiGraph;
//! use exactsim_store::GraphStore;
//!
//! let store = GraphStore::new(Arc::new(DiGraph::from_edges(
//!     4,
//!     &[(0, 2), (1, 2), (2, 3), (3, 0)],
//! )));
//! let before = store.snapshot(); // epoch 0
//!
//! store.stage_insert(0, 1).unwrap();
//! store.stage_delete(2, 3).unwrap();
//! let report = store.commit();
//! assert_eq!(report.epoch, 1);
//!
//! // New readers see the new graph; the old snapshot is untouched.
//! assert!(store.graph().has_edge(0, 1));
//! assert!(!before.graph.has_edge(0, 1));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod delta;
pub mod error;
pub mod store;

pub use delta::{DeltaBuffer, Staged};
pub use error::StoreError;
pub use store::{CommitReport, GraphSnapshot, GraphStore};
