//! Durable snapshots and the delta write-ahead log (WAL).
//!
//! A durable [`crate::GraphStore`] keeps its state in one data directory:
//!
//! ```text
//! <data-dir>/
//!   snapshot-<epoch>.snap   full graph image at <epoch> (the newest wins)
//!   wal.log                 edge deltas committed after that snapshot
//! ```
//!
//! ## Snapshot file format (version 2, little-endian)
//!
//! ```text
//! magic        "ESSN"                       4 bytes
//! version      u32                          4 bytes
//! epoch        u64                          8 bytes
//! payload_len  u64                          8 bytes
//! payload      exactsim_graph::binfmt bytes payload_len bytes
//! crc32        u32 over everything above    4 bytes
//! ```
//!
//! Snapshots are written to a `*.tmp` file, fsynced, then atomically renamed
//! into place (and the directory fsynced), so a crash mid-write never leaves
//! a half-visible snapshot — only an ignored temp file.
//!
//! ## WAL format (version 2, little-endian)
//!
//! An 8-byte file header (`"ESWL"` + `u32` version) followed by
//! length-prefixed, checksummed records:
//!
//! ```text
//! payload_len  u32
//! crc32        u32 over the payload
//! payload:
//!   epoch      u64      the epoch this commit published
//!   added      u64      nodes appended to the id space by this commit
//!   n_ins      u32
//!   n_del      u32
//!   insertions (u32, u32) × n_ins   sorted by (source, target)
//!   deletions  (u32, u32) × n_del   sorted by (source, target)
//! ```
//!
//! (Version 2 added the `added` field for `addnode` id-space growth; replay
//! grows the graph *before* applying the edge delta, so insertions may
//! reference the new ids.)
//!
//! A commit appends its record and fsyncs *before* the new epoch is
//! published — the WAL is the durability point.
//!
//! ## Recovery protocol
//!
//! 1. Load the newest snapshot that validates (magic, version, length,
//!    checksum, payload decode). No snapshot at all is [`StoreError::NoSnapshot`];
//!    a directory whose every snapshot is corrupt reports the newest one's error.
//! 2. Scan the WAL. An *incomplete* final record (fewer bytes than its
//!    header declares, or a half-written header) is a **torn tail** — the
//!    expected residue of a crash mid-append; it is truncated away and
//!    recovery proceeds. A record that is fully present but fails its
//!    checksum or is structurally invalid is **corruption** and recovery
//!    refuses with a typed [`StoreError::WalCorrupt`] — never a silent
//!    partial load.
//! 3. Replay records newer than the snapshot epoch in order; each must
//!    publish exactly `epoch + 1`. Records at or below the snapshot epoch
//!    are skipped (they are the residue of a crash between writing a
//!    compaction snapshot and truncating the WAL).
//!
//! ## Compaction
//!
//! [`crate::GraphStore::save`] folds the WAL into a fresh snapshot: write
//! `snapshot-<current-epoch>.snap`, truncate the WAL to its header, delete
//! older snapshot files (best-effort). Crash windows are safe: a snapshot
//! without the truncate merely leaves stale records that replay as no-ops
//! (step 3 above).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use exactsim_graph::binfmt::{decode_digraph, encode_digraph, encoded_len};
use exactsim_graph::{DiGraph, NodeId};
use exactsim_obs::fault;

use crate::error::StoreError;

/// The on-disk format version this build writes and reads. Version 2 added
/// the `added_nodes` field to WAL records (`addnode` growth); version-1
/// files are refused with a typed [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 2;

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"ESSN";

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 4] = b"ESWL";

/// WAL file header length: magic + version.
const WAL_HEADER_LEN: u64 = 8;

/// Snapshot header length: magic + version + epoch + payload_len.
const SNAPSHOT_HEADER_LEN: usize = 24;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial) — implemented locally; the offline build has
// no checksum crate.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

/// The file name of the snapshot holding `epoch`.
pub fn snapshot_file_name(epoch: u64) -> String {
    format!("snapshot-{epoch}.snap")
}

fn parse_snapshot_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Lists the `(epoch, path)` of every snapshot file in `dir`, newest epoch
/// first. Files that do not match the naming scheme are ignored.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, "read_dir", e))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, "read_dir", e))?;
        if let Some(epoch) = entry.file_name().to_str().and_then(parse_snapshot_epoch) {
            found.push((epoch, entry.path()));
        }
    }
    found.sort_unstable_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    Ok(found)
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    // Persist the rename itself. Directory fsync is POSIX-specific; opening
    // a directory read-only and syncing works on the platforms we target.
    if let Ok(handle) = File::open(dir) {
        handle
            .sync_all()
            .map_err(|e| StoreError::io(dir, "sync", e))?;
    }
    Ok(())
}

/// Atomically writes `graph` as the snapshot of `epoch` into `dir` and
/// returns the final path.
pub fn write_snapshot(dir: &Path, graph: &DiGraph, epoch: u64) -> Result<PathBuf, StoreError> {
    let final_path = dir.join(snapshot_file_name(epoch));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(epoch)));
    let mut bytes = Vec::with_capacity(SNAPSHOT_HEADER_LEN + encoded_len(graph) + 4);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&(encoded_len(graph) as u64).to_le_bytes());
    encode_digraph(graph, &mut bytes);
    let checksum = crc32(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());

    if fault::check(fault::sites::SNAPSHOT_WRITE).is_some() {
        return Err(StoreError::io(
            &tmp_path,
            "create",
            fault::injected_io_error(fault::sites::SNAPSHOT_WRITE),
        ));
    }
    let mut file = File::create(&tmp_path).map_err(|e| StoreError::io(&tmp_path, "create", e))?;
    file.write_all(&bytes)
        .map_err(|e| StoreError::io(&tmp_path, "write", e))?;
    file.sync_all()
        .map_err(|e| StoreError::io(&tmp_path, "sync", e))?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| StoreError::io(&final_path, "rename", e))?;
    sync_dir(dir)?;
    Ok(final_path)
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
    StoreError::SnapshotCorrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// Reads and fully validates one snapshot file, returning its graph and
/// epoch. Every validation failure is a typed error (see [`StoreError`]).
pub fn read_snapshot(path: &Path) -> Result<(DiGraph, u64), StoreError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io(path, "read", e))?;
    if bytes.len() < SNAPSHOT_HEADER_LEN + 4 {
        return Err(corrupt(
            path,
            format!(
                "file too short ({} bytes) to hold a snapshot header",
                bytes.len()
            ),
        ));
    }
    if &bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(corrupt(path, "bad magic (not a snapshot file)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let expected_total = (SNAPSHOT_HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|t| t.checked_add(4));
    if expected_total != Some(bytes.len() as u64) {
        return Err(corrupt(
            path,
            format!(
                "declared payload of {payload_len} bytes does not match file size {}",
                bytes.len()
            ),
        ));
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..body_end]);
    if stored != computed {
        return Err(corrupt(
            path,
            format!("checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"),
        ));
    }
    let graph = decode_digraph(&bytes[SNAPSHOT_HEADER_LEN..body_end])
        .map_err(|e| corrupt(path, format!("payload decode failed: {e}")))?;
    Ok((graph, epoch))
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

/// One committed edge delta, as stored in the WAL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The epoch this commit published.
    pub epoch: u64,
    /// Nodes appended to the id space by this commit (applied before the
    /// edge delta on replay).
    pub added_nodes: u64,
    /// Sorted, duplicate-free edge insertions.
    pub insertions: Vec<(NodeId, NodeId)>,
    /// Sorted, duplicate-free edge deletions.
    pub deletions: Vec<(NodeId, NodeId)>,
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + 8 * (self.insertions.len() + self.deletions.len()));
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.added_nodes.to_le_bytes());
        out.extend_from_slice(&(self.insertions.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.deletions.len() as u32).to_le_bytes());
        for &(u, v) in self.insertions.iter().chain(&self.deletions) {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
        if payload.len() < 24 {
            return Err(format!("payload of {} bytes is too short", payload.len()));
        }
        let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let added_nodes = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let n_ins = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize;
        let n_del = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes")) as usize;
        let expected = 24 + 8 * (n_ins + n_del);
        if payload.len() != expected {
            return Err(format!(
                "payload length {} does not match declared {n_ins} insertions + {n_del} deletions",
                payload.len()
            ));
        }
        let read_pairs = |lo: usize, count: usize| -> Vec<(NodeId, NodeId)> {
            (0..count)
                .map(|i| {
                    let at = lo + 8 * i;
                    (
                        u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes")),
                        u32::from_le_bytes(payload[at + 4..at + 8].try_into().expect("4 bytes")),
                    )
                })
                .collect()
        };
        let insertions = read_pairs(24, n_ins);
        let deletions = read_pairs(24 + 8 * n_ins, n_del);
        for (name, list) in [("insertions", &insertions), ("deletions", &deletions)] {
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("{name} are not strictly sorted"));
            }
        }
        Ok(WalRecord {
            epoch,
            added_nodes,
            insertions,
            deletions,
        })
    }
}

/// `true` iff a complete record frame (length + matching CRC + decodable
/// payload) starts at any byte offset `>= from`. Used to tell a torn tail
/// (nothing valid follows) from a corrupted length field (durable records
/// follow). A false positive needs random bytes to pass both a CRC32 and
/// structural decode — ~2⁻³² per offset; WALs here are small (compaction
/// bounds them), so the quadratic worst case is irrelevant.
fn contains_valid_frame_after(bytes: &[u8], from: usize) -> bool {
    let end = bytes.len();
    for start in from..end.saturating_sub(7) {
        let len = u32::from_le_bytes(bytes[start..start + 4].try_into().expect("4 bytes")) as usize;
        let Some(payload_end) = start.checked_add(8).and_then(|s| s.checked_add(len)) else {
            continue;
        };
        if payload_end > end {
            continue;
        }
        let stored = u32::from_le_bytes(bytes[start + 4..start + 8].try_into().expect("4 bytes"));
        let payload = &bytes[start + 8..payload_end];
        if crc32(payload) == stored && WalRecord::decode_payload(payload).is_ok() {
            return true;
        }
    }
    false
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every fully-valid record, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix. Shorter than the file iff a torn
    /// tail was found; recovery truncates the file to this length.
    pub valid_len: u64,
    /// `true` iff a torn (incomplete) final record was skipped.
    pub torn_tail: bool,
}

/// Scans a WAL file: validates the header, decodes every record, detects
/// torn tails (returned for truncation, not an error) and rejects corrupt
/// records (a typed [`StoreError::WalCorrupt`]).
pub fn scan_wal(path: &Path) -> Result<WalScan, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io(path, "read", e))?;
    if bytes.len() < WAL_HEADER_LEN as usize {
        // A WAL so short it lacks even the header can only be the residue of
        // a crash during creation; treat the whole file as a torn tail.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: !bytes.is_empty(),
        });
    }
    if &bytes[0..4] != WAL_MAGIC {
        return Err(StoreError::WalCorrupt {
            path: path.to_path_buf(),
            offset: 0,
            detail: "bad magic (not a WAL file)".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        if pos == bytes.len() {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn_tail: false,
            });
        }
        if bytes.len() - pos < 8 {
            // Half-written record header.
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn_tail: true,
            });
        }
        let payload_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < payload_len {
            // The declared payload overruns the file. Two ways that happens:
            // a crash mid-append (torn tail: these are the last bytes ever
            // written, nothing but this partial record follows) — or a
            // corrupted length field on a record that is NOT last, in which
            // case the durably-written records after it are still in the
            // file. Truncating the latter would silently destroy committed
            // epochs, so resync: if any complete checksum-valid record
            // frame exists later in the file, this is corruption.
            if contains_valid_frame_after(&bytes, pos + 1) {
                return Err(StoreError::WalCorrupt {
                    path: path.to_path_buf(),
                    offset: pos as u64,
                    detail: format!(
                        "declared payload of {payload_len} bytes overruns the file, but \
                         valid records follow (corrupted length field, not a torn tail)"
                    ),
                });
            }
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn_tail: true,
            });
        }
        let payload = &bytes[pos + 8..pos + 8 + payload_len];
        let computed = crc32(payload);
        if stored_crc != computed {
            return Err(StoreError::WalCorrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!(
                    "checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
                ),
            });
        }
        let record =
            WalRecord::decode_payload(payload).map_err(|detail| StoreError::WalCorrupt {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail,
            })?;
        if let Some(prev) = records.last() {
            let prev: &WalRecord = prev;
            if record.epoch <= prev.epoch {
                return Err(StoreError::WalCorrupt {
                    path: path.to_path_buf(),
                    offset: pos as u64,
                    detail: format!(
                        "epochs not increasing: {} after {}",
                        record.epoch, prev.epoch
                    ),
                });
            }
        }
        records.push(record);
        pos += 8 + payload_len;
    }
}

// ---------------------------------------------------------------------------
// The durable log handle owned by a GraphStore
// ---------------------------------------------------------------------------

/// A point-in-time description of a store's durable state, surfaced through
/// service stats so operators can see durability without shelling into the
/// box.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityInfo {
    /// The store's data directory.
    pub data_dir: PathBuf,
    /// Number of delta records currently in the WAL.
    pub wal_records: u64,
    /// Epoch of the newest on-disk snapshot file.
    pub last_snapshot_epoch: u64,
}

/// The open WAL + snapshot bookkeeping of a durable store. Owned behind the
/// store's commit lock, so appends and compactions are serialized.
pub(crate) struct DurableLog {
    dir: PathBuf,
    wal_path: PathBuf,
    wal: File,
    wal_records: u64,
    last_snapshot_epoch: u64,
    /// Fold the WAL into a fresh snapshot once it holds this many records
    /// (`0` disables auto-compaction).
    compact_every: u64,
}

impl DurableLog {
    /// Initializes a fresh data directory: snapshot of `graph` at `epoch`,
    /// empty WAL. Refuses directories that already hold a store.
    pub(crate) fn create(dir: &Path, graph: &DiGraph, epoch: u64) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, "create_dir", e))?;
        let wal_path = dir.join("wal.log");
        if wal_path.exists() || !list_snapshots(dir)?.is_empty() {
            return Err(StoreError::StoreExists {
                dir: dir.to_path_buf(),
            });
        }
        write_snapshot(dir, graph, epoch)?;
        let wal = create_wal(&wal_path)?;
        lock_exclusive(&wal, dir, &wal_path)?;
        sync_dir(dir)?;
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            wal_path,
            wal,
            wal_records: 0,
            last_snapshot_epoch: epoch,
            compact_every: crate::store::DEFAULT_COMPACT_EVERY,
        })
    }

    /// Recovers a data directory: newest valid snapshot + WAL replay.
    /// Returns the recovered graph and epoch alongside the open log.
    pub(crate) fn open(dir: &Path) -> Result<(DiGraph, u64, Self), StoreError> {
        let snapshots = list_snapshots(dir)?;
        if snapshots.is_empty() {
            return Err(StoreError::NoSnapshot {
                dir: dir.to_path_buf(),
            });
        }
        // Newest-first: fall back across corrupt snapshot files. The
        // fallback is provisional — the newest snapshot's *filename* epoch
        // proves that epoch was durably committed, so recovery from an older
        // snapshot is only accepted if WAL replay re-reaches it (the
        // compaction crash window, where the WAL still holds everything).
        // Anything less would silently roll back committed epochs; in that
        // case the newest snapshot's own error is the honest answer.
        let newest_named_epoch = snapshots[0].0;
        let mut first_error: Option<StoreError> = None;
        let mut loaded = None;
        for (_, path) in &snapshots {
            match read_snapshot(path) {
                Ok(ok) => {
                    loaded = Some(ok);
                    break;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        let (mut graph, snapshot_epoch) = match loaded {
            Some(ok) => ok,
            None => return Err(first_error.expect("at least one snapshot failed")),
        };

        let wal_path = dir.join("wal.log");
        if !wal_path.exists() {
            drop(create_wal(&wal_path)?);
        }
        // Take the single-writer lock *before* scanning or repairing: two
        // processes appending to one WAL would interleave epochs and make
        // it unrecoverable.
        let mut wal = OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .map_err(|e| StoreError::io(&wal_path, "open", e))?;
        lock_exclusive(&wal, dir, &wal_path)?;
        let scan = scan_wal(&wal_path)?;
        if scan.torn_tail || scan.valid_len < WAL_HEADER_LEN {
            wal.set_len(scan.valid_len)
                .map_err(|e| StoreError::io(&wal_path, "truncate", e))?;
            if scan.valid_len < WAL_HEADER_LEN {
                // The torn tail swallowed even the header: rewrite it.
                wal.set_len(0)
                    .map_err(|e| StoreError::io(&wal_path, "truncate", e))?;
                wal.write_all(WAL_MAGIC)
                    .map_err(|e| StoreError::io(&wal_path, "write", e))?;
                wal.write_all(&FORMAT_VERSION.to_le_bytes())
                    .map_err(|e| StoreError::io(&wal_path, "write", e))?;
            }
            wal.sync_all()
                .map_err(|e| StoreError::io(&wal_path, "sync", e))?;
        }
        let wal_records = scan.records.len() as u64;
        let records = scan.records;

        let mut epoch = snapshot_epoch;
        for record in &records {
            if record.epoch <= snapshot_epoch {
                // Residue of a crash between compaction's snapshot write and
                // its WAL truncate: already folded into the snapshot.
                continue;
            }
            if record.epoch != epoch + 1 {
                // With a snapshot fallback in play the gap's root cause is
                // the unreadable newer snapshot, not the WAL — report that.
                if let Some(e) = &first_error {
                    return Err(e.clone());
                }
                return Err(StoreError::WalCorrupt {
                    path: wal_path.clone(),
                    offset: 0,
                    detail: format!(
                        "epoch gap: record publishes {} but recovery is at {epoch}",
                        record.epoch
                    ),
                });
            }
            // Id-space growth applies before the edge delta, so insertions
            // in the same record may reference the new ids.
            if record.added_nodes > 0 {
                graph = graph.grow(record.added_nodes as usize);
            }
            // Endpoints must fit this graph's node space: apply_delta only
            // debug-asserts ranges, and in release an out-of-range id (a
            // WAL from a different store, or damage that survived CRC32)
            // would silently desync the two CSR orientations.
            let n = graph.num_nodes() as u64;
            if let Some(&(u, v)) = record
                .insertions
                .iter()
                .chain(&record.deletions)
                .find(|&&(u, v)| u64::from(u) >= n || u64::from(v) >= n)
            {
                return Err(StoreError::WalCorrupt {
                    path: wal_path.clone(),
                    offset: 0,
                    detail: format!(
                        "record for epoch {} names edge {u} -> {v}, out of range for \
                         {n} nodes (WAL from a different store?)",
                        record.epoch
                    ),
                });
            }
            graph = graph.apply_delta(&record.insertions, &record.deletions);
            epoch = record.epoch;
        }
        if epoch < newest_named_epoch {
            // We recovered from an older snapshot and the WAL could not
            // re-reach the newest snapshot's (provenly committed) epoch:
            // refusing with the newest snapshot's error beats silently
            // publishing a rolled-back past.
            return Err(first_error.expect("fallback implies a snapshot error"));
        }

        Ok((
            graph,
            epoch,
            DurableLog {
                dir: dir.to_path_buf(),
                wal_path,
                wal,
                wal_records,
                last_snapshot_epoch: snapshot_epoch,
                compact_every: crate::store::DEFAULT_COMPACT_EVERY,
            },
        ))
    }

    /// Appends one commit record and fsyncs — the durability point of a
    /// commit. On error nothing is considered written (the caller keeps its
    /// staged delta). Returns how long the buffered write and the fsync each
    /// took, for the commit-stage timings in [`crate::store::CommitTimings`].
    pub(crate) fn append(
        &mut self,
        record: &WalRecord,
    ) -> Result<(std::time::Duration, std::time::Duration), StoreError> {
        let payload = record.encode_payload();
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let base_len = self
            .wal
            .metadata()
            .map_err(|e| StoreError::io(&self.wal_path, "stat", e))?
            .len();
        if let Some(failure) = fault::check(fault::sites::WAL_FSYNC) {
            if failure == fault::Failure::Torn {
                // Power loss mid-append: a strict prefix of the frame reaches
                // disk and the process is presumed dead. Deliberately NOT
                // rolled back — reopening the store must go through the
                // torn-tail truncation in `DurableLog::open`.
                let _ = self.wal.write_all(&framed[..framed.len() / 2]);
                let _ = self.wal.sync_data();
            } else {
                // Fsync failure: the frame made it into the page cache but
                // never became durable. Roll the buffered write back so an
                // in-process retry starts from a clean frame boundary.
                let _ = self.wal.write_all(&framed);
                self.rollback_append(base_len);
            }
            return Err(StoreError::io(
                &self.wal_path,
                "sync",
                fault::injected_io_error(fault::sites::WAL_FSYNC),
            ));
        }
        let write_start = std::time::Instant::now();
        if let Err(e) = self.wal.write_all(&framed) {
            self.rollback_append(base_len);
            return Err(StoreError::io(&self.wal_path, "write", e));
        }
        let write_time = write_start.elapsed();
        let sync_start = std::time::Instant::now();
        if let Err(e) = self.wal.sync_data() {
            self.rollback_append(base_len);
            return Err(StoreError::io(&self.wal_path, "sync", e));
        }
        let fsync_time = sync_start.elapsed();
        self.wal_records += 1;
        Ok((write_time, fsync_time))
    }

    /// Best-effort undo of a failed append: truncate back to the pre-append
    /// length and restore the end-of-file cursor, so a retried commit cannot
    /// stack a duplicate-epoch frame on top of a half-written one (the scan
    /// would reject that whole tail as corrupt). If the rollback itself
    /// fails, the torn tail is truncated by the next `DurableLog::open`.
    fn rollback_append(&mut self, base_len: u64) {
        let _ = self.wal.set_len(base_len);
        let _ = self.wal.seek(SeekFrom::End(0));
        let _ = self.wal.sync_data();
    }

    /// Folds the WAL into a fresh snapshot of `graph` at `epoch`: write the
    /// snapshot, truncate the WAL to its header, delete older snapshots
    /// (best-effort). Safe against crashes at any point (see module docs).
    pub(crate) fn compact(&mut self, graph: &DiGraph, epoch: u64) -> Result<(), StoreError> {
        write_snapshot(&self.dir, graph, epoch)?;
        self.last_snapshot_epoch = epoch;
        self.wal
            .set_len(WAL_HEADER_LEN)
            .map_err(|e| StoreError::io(&self.wal_path, "truncate", e))?;
        self.wal
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(&self.wal_path, "seek", e))?;
        self.wal
            .sync_all()
            .map_err(|e| StoreError::io(&self.wal_path, "sync", e))?;
        self.wal_records = 0;
        for (old_epoch, path) in list_snapshots(&self.dir)? {
            if old_epoch != epoch {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(())
    }

    pub(crate) fn should_compact(&self) -> bool {
        self.compact_every > 0 && self.wal_records >= self.compact_every
    }

    pub(crate) fn set_compact_every(&mut self, every: u64) {
        self.compact_every = every;
    }

    pub(crate) fn info(&self) -> DurabilityInfo {
        DurabilityInfo {
            data_dir: self.dir.clone(),
            wal_records: self.wal_records,
            last_snapshot_epoch: self.last_snapshot_epoch,
        }
    }
}

/// Takes the store's single-writer advisory lock on the WAL handle (held
/// for the store's lifetime, released automatically when the handle drops —
/// including on a crash, so there are no stale locks to clean up).
fn lock_exclusive(wal: &File, dir: &Path, wal_path: &Path) -> Result<(), StoreError> {
    match wal.try_lock() {
        Ok(()) => Ok(()),
        Err(std::fs::TryLockError::WouldBlock) => Err(StoreError::Locked {
            dir: dir.to_path_buf(),
        }),
        Err(std::fs::TryLockError::Error(e)) => Err(StoreError::io(wal_path, "lock", e)),
    }
}

fn create_wal(path: &Path) -> Result<File, StoreError> {
    let mut wal = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
        .map_err(|e| StoreError::io(path, "create", e))?;
    wal.write_all(WAL_MAGIC)
        .map_err(|e| StoreError::io(path, "write", e))?;
    wal.write_all(&FORMAT_VERSION.to_le_bytes())
        .map_err(|e| StoreError::io(path, "write", e))?;
    wal.sync_all()
        .map_err(|e| StoreError::io(path, "sync", e))?;
    Ok(wal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_record_payload_round_trips() {
        let record = WalRecord {
            epoch: 7,
            added_nodes: 2,
            insertions: vec![(0, 1), (2, 3)],
            deletions: vec![(1, 0)],
        };
        let payload = record.encode_payload();
        assert_eq!(WalRecord::decode_payload(&payload).unwrap(), record);
    }

    #[test]
    fn wal_record_rejects_malformed_payloads() {
        let record = WalRecord {
            epoch: 1,
            added_nodes: 0,
            insertions: vec![(0, 1)],
            deletions: vec![],
        };
        let payload = record.encode_payload();
        assert!(WalRecord::decode_payload(&payload[..payload.len() - 1]).is_err());
        assert!(WalRecord::decode_payload(&[0u8; 3]).is_err());
        // Unsorted insertions are structural corruption.
        let bad = WalRecord {
            epoch: 1,
            added_nodes: 0,
            insertions: vec![(2, 3), (0, 1)],
            deletions: vec![],
        };
        assert!(WalRecord::decode_payload(&bad.encode_payload())
            .unwrap_err()
            .contains("not strictly sorted"));
    }

    #[test]
    fn snapshot_names_parse_round_trip() {
        assert_eq!(parse_snapshot_epoch(&snapshot_file_name(42)), Some(42));
        assert_eq!(parse_snapshot_epoch("snapshot-.snap"), None);
        assert_eq!(parse_snapshot_epoch("wal.log"), None);
        assert_eq!(parse_snapshot_epoch("snapshot-3.snap.tmp"), None);
    }
}
